//! Train/test splitting.
//!
//! The paper partitions every dataset 1/3 : 2/3, training the model on the
//! first part and explaining predictions on the second (§4.1).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;

/// The result of a train/test split.
#[derive(Clone, Debug)]
pub struct Split {
    /// Training rows.
    pub train: Dataset,
    /// Training labels.
    pub train_labels: Vec<u8>,
    /// Held-out rows (the batch to explain).
    pub test: Dataset,
    /// Held-out labels.
    pub test_labels: Vec<u8>,
}

/// Splits `(data, labels)` into a training fraction `train_frac` and a test
/// remainder, after a seeded shuffle.
pub fn train_test_split(
    data: &Dataset,
    labels: &[u8],
    train_frac: f64,
    rng: &mut impl Rng,
) -> Split {
    assert_eq!(data.n_rows(), labels.len(), "label count mismatch");
    assert!(
        (0.0..1.0).contains(&train_frac) && train_frac > 0.0,
        "train_frac must be in (0, 1)"
    );
    let mut idx: Vec<usize> = (0..data.n_rows()).collect();
    idx.shuffle(rng);
    let n_train = ((data.n_rows() as f64) * train_frac).round() as usize;
    let n_train = n_train.clamp(1, data.n_rows().saturating_sub(1).max(1));
    let (train_idx, test_idx) = idx.split_at(n_train);
    Split {
        train: data.select(train_idx),
        train_labels: train_idx.iter().map(|&i| labels[i]).collect(),
        test: data.select(test_idx),
        test_labels: test_idx.iter().map(|&i| labels[i]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Column;
    use crate::schema::{Attribute, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn data(n: usize) -> (Dataset, Vec<u8>) {
        let schema = Arc::new(Schema::new(vec![Attribute::numeric("x")]));
        let d = Dataset::new(
            schema,
            vec![Column::Num((0..n).map(|i| i as f64).collect())],
        );
        let labels = (0..n).map(|i| (i % 2) as u8).collect();
        (d, labels)
    }

    #[test]
    fn sizes_add_up() {
        let (d, l) = data(99);
        let mut rng = StdRng::seed_from_u64(0);
        let s = train_test_split(&d, &l, 1.0 / 3.0, &mut rng);
        assert_eq!(s.train.n_rows() + s.test.n_rows(), 99);
        assert_eq!(s.train.n_rows(), 33);
        assert_eq!(s.train_labels.len(), 33);
        assert_eq!(s.test_labels.len(), 66);
    }

    #[test]
    fn rows_keep_their_labels() {
        let (d, l) = data(50);
        let mut rng = StdRng::seed_from_u64(4);
        let s = train_test_split(&d, &l, 0.5, &mut rng);
        for r in 0..s.train.n_rows() {
            let x = s.train.feature(r, 0).num() as usize;
            assert_eq!(s.train_labels[r], (x % 2) as u8);
        }
        for r in 0..s.test.n_rows() {
            let x = s.test.feature(r, 0).num() as usize;
            assert_eq!(s.test_labels[r], (x % 2) as u8);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (d, l) = data(40);
        let a = train_test_split(&d, &l, 0.25, &mut StdRng::seed_from_u64(11));
        let b = train_test_split(&d, &l, 0.25, &mut StdRng::seed_from_u64(11));
        assert_eq!(a.train_labels, b.train_labels);
        for r in 0..a.train.n_rows() {
            assert_eq!(a.train.instance(r), b.train.instance(r));
        }
    }

    #[test]
    fn split_is_a_partition() {
        let (d, l) = data(30);
        let mut rng = StdRng::seed_from_u64(2);
        let s = train_test_split(&d, &l, 0.4, &mut rng);
        let mut seen: Vec<f64> = (0..s.train.n_rows())
            .map(|r| s.train.feature(r, 0).num())
            .chain((0..s.test.n_rows()).map(|r| s.test.feature(r, 0).num()))
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..30).map(|i| i as f64).collect();
        assert_eq!(seen, expect);
    }
}
