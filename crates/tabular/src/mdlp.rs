//! Entropy-based (MDLP) discretization cut-point search.
//!
//! LIME and Anchor default to quartile discretization, which is what
//! [`crate::Discretizer`] implements and what Shahin mines over. An
//! alternative used by interpretability toolkits is Fayyad & Irani's MDLP:
//! recursively choose the cut that minimizes class-label entropy, accepting
//! it only if the information gain clears the minimum-description-length
//! threshold. Fewer, *label-aware* bins mean coarser codes — which
//! increases value co-occurrence and therefore Shahin's reuse
//! opportunities (the trade-off is explored in the ablation benches).
//!
//! This module computes the supervised cut points; plug them into the
//! standard pipeline by discretizing the column up front and declaring it
//! categorical.

/// Recursively computes MDLP cut points for one numeric column against
/// binary labels. Returns sorted cut values (possibly empty when no cut
/// clears the MDL criterion). `max_bins` bounds the recursion.
pub fn mdlp_cut_points(values: &[f64], labels: &[u8], max_bins: usize) -> Vec<f64> {
    assert_eq!(values.len(), labels.len(), "label count mismatch");
    assert!(max_bins >= 1, "need at least one bin");
    if values.is_empty() {
        return Vec::new();
    }
    let mut pairs: Vec<(f64, u8)> = values.iter().copied().zip(labels.iter().copied()).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in numeric column"));
    let mut cuts = Vec::new();
    // Recursion depth d yields at most 2^d − 1 cuts; bound it so the bin
    // count never exceeds max_bins.
    let max_depth = (usize::BITS - max_bins.leading_zeros()) as usize;
    split(&pairs, max_depth, max_bins.saturating_sub(1), &mut cuts);
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite cuts"));
    cuts.dedup();
    cuts.truncate(max_bins.saturating_sub(1));
    cuts
}

/// Binary entropy of a label slice.
fn entropy(pairs: &[(f64, u8)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let pos = pairs.iter().filter(|p| p.1 == 1).count() as f64;
    let mut h = 0.0;
    for p in [pos / n, (n - pos) / n] {
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    h
}

/// Number of distinct classes present.
fn k_classes(pairs: &[(f64, u8)]) -> f64 {
    let has0 = pairs.iter().any(|p| p.1 == 0);
    let has1 = pairs.iter().any(|p| p.1 == 1);
    (usize::from(has0) + usize::from(has1)) as f64
}

fn split(pairs: &[(f64, u8)], depth: usize, budget: usize, cuts: &mut Vec<f64>) {
    if depth == 0 || budget == 0 || cuts.len() >= budget || pairs.len() < 4 {
        return;
    }
    let n = pairs.len() as f64;
    let h_all = entropy(pairs);
    // Candidate cuts: boundaries between distinct values.
    let mut best: Option<(f64, usize, f64)> = None; // (weighted entropy, idx, cut)
    for i in 0..pairs.len() - 1 {
        if pairs[i].0 == pairs[i + 1].0 {
            continue;
        }
        let (l, r) = pairs.split_at(i + 1);
        let w = (l.len() as f64 / n) * entropy(l) + (r.len() as f64 / n) * entropy(r);
        if best.as_ref().is_none_or(|(b, _, _)| w < *b) {
            best = Some((w, i, 0.5 * (pairs[i].0 + pairs[i + 1].0)));
        }
    }
    let Some((w_best, idx, cut)) = best else {
        return;
    };
    let gain = h_all - w_best;
    // Fayyad–Irani MDL acceptance criterion.
    let (l, r) = pairs.split_at(idx + 1);
    let (k, k1, k2) = (k_classes(pairs), k_classes(l), k_classes(r));
    let delta = (3f64.powf(k) - 2.0).log2() - (k * h_all - k1 * entropy(l) - k2 * entropy(r));
    let threshold = ((n - 1.0).log2() + delta) / n;
    if gain <= threshold {
        return;
    }
    cuts.push(cut);
    split(l, depth - 1, budget, cuts);
    split(r, depth - 1, budget, cuts);
}

/// Applies cut points: the bin index of `v` (0..=cuts.len()).
pub fn apply_cuts(cuts: &[f64], v: f64) -> u32 {
    cuts.iter().take_while(|&&c| v > c).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_threshold_found() {
        // Labels flip exactly at 5.0.
        let values: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let labels: Vec<u8> = values.iter().map(|&v| u8::from(v >= 5.0)).collect();
        let cuts = mdlp_cut_points(&values, &labels, 8);
        assert_eq!(cuts.len(), 1, "cuts {cuts:?}");
        assert!((cuts[0] - 4.95).abs() < 0.1, "cut at {}", cuts[0]);
        assert_eq!(apply_cuts(&cuts, 3.0), 0);
        assert_eq!(apply_cuts(&cuts, 7.0), 1);
    }

    #[test]
    fn random_labels_yield_no_cuts() {
        // Labels independent of the value: MDL should refuse to cut.
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..200).map(|i| ((i * 7 + 3) % 2) as u8).collect();
        let cuts = mdlp_cut_points(&values, &labels, 8);
        assert!(cuts.len() <= 1, "spurious cuts {cuts:?}");
    }

    #[test]
    fn two_thresholds_recovered() {
        // Positive in the middle band only.
        let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let labels: Vec<u8> = values
            .iter()
            .map(|&v| u8::from((100.0..200.0).contains(&v)))
            .collect();
        let cuts = mdlp_cut_points(&values, &labels, 8);
        assert_eq!(cuts.len(), 2, "cuts {cuts:?}");
        assert!((cuts[0] - 99.5).abs() < 2.0, "{cuts:?}");
        assert!((cuts[1] - 199.5).abs() < 2.0, "{cuts:?}");
    }

    #[test]
    fn constant_column_no_cuts() {
        let values = vec![3.3; 50];
        let labels: Vec<u8> = (0..50).map(|i| (i % 2) as u8).collect();
        assert!(mdlp_cut_points(&values, &labels, 4).is_empty());
    }

    #[test]
    fn empty_input() {
        assert!(mdlp_cut_points(&[], &[], 4).is_empty());
    }

    #[test]
    fn apply_cuts_boundaries() {
        let cuts = vec![1.0, 2.0];
        assert_eq!(apply_cuts(&cuts, 0.5), 0);
        assert_eq!(apply_cuts(&cuts, 1.0), 0); // boundary goes left
        assert_eq!(apply_cuts(&cuts, 1.5), 1);
        assert_eq!(apply_cuts(&cuts, 9.0), 2);
    }
}
