//! Training-set frequency statistics: the perturbation distribution.
//!
//! LIME, Anchor, and KernelSHAP all replace an unfrozen attribute by
//! sampling a value *according to its frequency distribution in the training
//! data* (paper §3). [`TrainingStats`] captures those per-attribute
//! distributions over the discretized code space and provides O(log k)
//! sampling via cumulative sums.

use rand::Rng;

use crate::dataset::DiscreteTable;

/// Per-attribute code-frequency tables fitted on training data.
#[derive(Clone, Debug)]
pub struct TrainingStats {
    /// `counts[attr][code]` = occurrences of `code` in the training column.
    counts: Vec<Vec<u64>>,
    /// `cumulative[attr]` = exclusive prefix sums of `counts[attr]`,
    /// normalized to `[0, 1)`, with an appended 1.0 sentinel.
    cumulative: Vec<Vec<f64>>,
    n_rows: u64,
}

impl TrainingStats {
    /// Fits frequency tables over a discretized training table.
    ///
    /// `n_codes[attr]` bounds the code domain; codes never observed in
    /// training get zero frequency (they will never be sampled, exactly like
    /// the reference implementations).
    pub fn fit(table: &DiscreteTable, n_codes: &[u32]) -> TrainingStats {
        assert_eq!(table.n_attrs(), n_codes.len(), "arity mismatch");
        assert!(table.n_rows() > 0, "cannot fit stats on an empty table");
        let mut counts = Vec::with_capacity(n_codes.len());
        for (attr, &domain) in n_codes.iter().enumerate() {
            let mut c = vec![0u64; domain as usize];
            for &code in table.column(attr) {
                c[code as usize] += 1;
            }
            counts.push(c);
        }
        let n_rows = table.n_rows() as u64;
        let cumulative = counts
            .iter()
            .map(|c| {
                let total = n_rows as f64;
                let mut acc = 0.0;
                let mut cum: Vec<f64> = c
                    .iter()
                    .map(|&x| {
                        let v = acc;
                        acc += x as f64 / total;
                        v
                    })
                    .collect();
                cum.push(1.0);
                cum
            })
            .collect();
        TrainingStats {
            counts,
            cumulative,
            n_rows,
        }
    }

    /// Number of attributes.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.counts.len()
    }

    /// Number of training rows the stats were fitted on.
    #[inline]
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// Relative frequency of `code` for attribute `attr` in training data.
    #[inline]
    pub fn frequency(&self, attr: usize, code: u32) -> f64 {
        self.counts[attr][code as usize] as f64 / self.n_rows as f64
    }

    /// Raw occurrence count of `code` for attribute `attr`.
    #[inline]
    pub fn count(&self, attr: usize, code: u32) -> u64 {
        self.counts[attr][code as usize]
    }

    /// Samples a code for `attr` proportionally to its training frequency.
    ///
    /// Binary search over the cumulative table: O(log |domain|).
    pub fn sample_code(&self, attr: usize, rng: &mut impl Rng) -> u32 {
        let cum = &self.cumulative[attr];
        let u: f64 = rng.gen();
        // partition_point returns the first index with cum[i] > u; the code
        // is that index minus one. The appended sentinel guarantees a hit.
        let idx = cum.partition_point(|&c| c <= u);
        (idx - 1).min(self.counts[attr].len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> DiscreteTable {
        // attr 0: 50% code 0, 30% code 1, 20% code 2 (over 10 rows)
        // attr 1: all code 1 of domain {0,1,2}
        DiscreteTable::new(vec![vec![0, 0, 0, 0, 0, 1, 1, 1, 2, 2], vec![1; 10]])
    }

    #[test]
    fn frequencies() {
        let s = TrainingStats::fit(&table(), &[3, 3]);
        assert_eq!(s.frequency(0, 0), 0.5);
        assert_eq!(s.frequency(0, 1), 0.3);
        assert_eq!(s.frequency(0, 2), 0.2);
        assert_eq!(s.frequency(1, 0), 0.0);
        assert_eq!(s.frequency(1, 1), 1.0);
        assert_eq!(s.count(0, 0), 5);
    }

    #[test]
    fn sampling_matches_distribution() {
        let s = TrainingStats::fit(&table(), &[3, 3]);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mut hist = [0u32; 3];
        for _ in 0..n {
            hist[s.sample_code(0, &mut rng) as usize] += 1;
        }
        let p0 = hist[0] as f64 / n as f64;
        let p1 = hist[1] as f64 / n as f64;
        let p2 = hist[2] as f64 / n as f64;
        assert!((p0 - 0.5).abs() < 0.02, "p0={p0}");
        assert!((p1 - 0.3).abs() < 0.02, "p1={p1}");
        assert!((p2 - 0.2).abs() < 0.02, "p2={p2}");
    }

    #[test]
    fn zero_frequency_codes_never_sampled() {
        let s = TrainingStats::fit(&table(), &[3, 3]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert_eq!(s.sample_code(1, &mut rng), 1);
        }
    }

    #[test]
    fn single_row_table() {
        let t = DiscreteTable::new(vec![vec![2]]);
        let s = TrainingStats::fit(&t, &[4]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(s.sample_code(0, &mut rng), 2);
        assert_eq!(s.frequency(0, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn empty_table_rejected() {
        let t = DiscreteTable::new(vec![vec![]]);
        TrainingStats::fit(&t, &[1]);
    }
}
