//! Tabular data substrate for the Shahin reproduction.
//!
//! Shahin ([SIGMOD'21]) operates over *tabular* data: tuples with a mix of
//! categorical and numeric attributes. This crate provides everything the
//! explainers and the batch optimizer need from the data layer:
//!
//! * a column-oriented [`Dataset`] with code-compressed categorical columns,
//! * quartile [`Discretizer`] turning numeric attributes into categorical
//!   bins (the representation LIME and Anchor perturb in) together with the
//!   inverse "undiscretize" sampling step,
//! * per-attribute training-set frequency statistics ([`TrainingStats`])
//!   used as the perturbation distribution,
//! * deterministic synthetic generators ([`synth`]) reproducing the shape of
//!   the five evaluation datasets of the paper (attribute counts, domain
//!   cardinalities, value skew), and
//! * train/test splitting utilities.
//!
//! [SIGMOD'21]: https://doi.org/10.1145/3448016.3457332

pub mod dataset;
pub mod discretize;
pub mod io;
pub mod mdlp;
pub mod schema;
pub mod split;
pub mod stats;
pub mod synth;
pub mod value;

pub use dataset::{Column, Dataset, DiscreteTable};
pub use discretize::{BinSpec, Discretizer};
pub use io::{read_csv, write_csv, CsvDataset, CsvError};
pub use mdlp::{apply_cuts, mdlp_cut_points};
pub use schema::{AttrKind, Attribute, Schema};
pub use split::{train_test_split, Split};
pub use stats::TrainingStats;
pub use synth::{DatasetPreset, SynthSpec};
pub use value::{Feature, Instance};
