//! Quartile discretization of numeric attributes.
//!
//! LIME and Anchor both discretize numeric attributes (by default into
//! quartiles) before perturbing, and Shahin mines frequent itemsets over the
//! discretized representation (paper §3.6). The [`Discretizer`] maps every
//! attribute into a dense code space: categorical attributes keep their
//! domain codes, numeric attributes map to bin indices. The inverse
//! operation — *undiscretization* — samples a concrete numeric value from a
//! truncated normal fitted to the bin, matching LIME's behaviour.

use rand::Rng;

use crate::dataset::{Column, Dataset, DiscreteTable};
use crate::schema::AttrKind;
use crate::value::{Feature, Instance};

/// Per-bin statistics for undiscretization.
#[derive(Clone, Debug, PartialEq)]
struct BinStat {
    mean: f64,
    std: f64,
    lo: f64,
    hi: f64,
}

/// Discretization spec for one numeric attribute: sorted bin edges and
/// per-bin statistics. `edges.len() + 1 == n_bins`.
#[derive(Clone, Debug, PartialEq)]
pub struct BinSpec {
    edges: Vec<f64>,
    stats: Vec<BinStat>,
}

impl BinSpec {
    /// Fits quartile bins to a numeric column. Duplicate quartile edges
    /// (heavily skewed or constant columns) are deduplicated, so the number
    /// of bins can be anywhere in `1..=4`.
    fn fit(values: &[f64]) -> BinSpec {
        assert!(!values.is_empty(), "cannot discretize an empty column");
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in numeric column"));
        let q = |p: f64| -> f64 {
            let idx = (p * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx]
        };
        let mut edges = vec![q(0.25), q(0.50), q(0.75)];
        edges.dedup();
        // An edge equal to the global max would create an empty last bin.
        let max = *sorted.last().expect("non-empty");
        edges.retain(|&e| e < max);
        let n_bins = edges.len() + 1;
        let mut sums = vec![0.0; n_bins];
        let mut sqs = vec![0.0; n_bins];
        let mut counts = vec![0usize; n_bins];
        let mut los = vec![f64::INFINITY; n_bins];
        let mut his = vec![f64::NEG_INFINITY; n_bins];
        for &v in values {
            let b = bin_of(&edges, v);
            sums[b] += v;
            sqs[b] += v * v;
            counts[b] += 1;
            los[b] = los[b].min(v);
            his[b] = his[b].max(v);
        }
        let stats = (0..n_bins)
            .map(|b| {
                if counts[b] == 0 {
                    // Empty interior bin (possible with pathological data):
                    // degenerate stat at the lower edge.
                    let anchor = if b == 0 { sorted[0] } else { edges[b - 1] };
                    BinStat {
                        mean: anchor,
                        std: 0.0,
                        lo: anchor,
                        hi: anchor,
                    }
                } else {
                    let n = counts[b] as f64;
                    let mean = sums[b] / n;
                    let var = (sqs[b] / n - mean * mean).max(0.0);
                    BinStat {
                        mean,
                        std: var.sqrt(),
                        lo: los[b],
                        hi: his[b],
                    }
                }
            })
            .collect();
        BinSpec { edges, stats }
    }

    /// Number of bins.
    #[inline]
    pub fn n_bins(&self) -> u32 {
        self.stats.len() as u32
    }

    /// The bin index of a value.
    #[inline]
    pub fn bin(&self, value: f64) -> u32 {
        bin_of(&self.edges, value) as u32
    }

    /// Samples a concrete value from the given bin: a normal draw with the
    /// bin's mean/std, rejected until it falls inside `[lo, hi]` (with a
    /// bounded retry count and clamping fallback). This mirrors LIME's
    /// `QuartileDiscretizer.undiscretize`.
    pub fn sample(&self, bin: u32, rng: &mut impl Rng) -> f64 {
        let s = &self.stats[bin as usize];
        if s.std <= f64::EPSILON || s.hi <= s.lo {
            return s.mean;
        }
        for _ in 0..16 {
            let v = s.mean + s.std * standard_normal(rng);
            if v >= s.lo && v <= s.hi {
                return v;
            }
        }
        (s.mean + s.std * standard_normal(rng)).clamp(s.lo, s.hi)
    }
}

/// Index of the bin containing `v` given sorted `edges`: bin `b` covers
/// `(edges[b-1], edges[b]]` with open ends.
#[inline]
fn bin_of(edges: &[f64], v: f64) -> usize {
    edges.iter().take_while(|&&e| v > e).count()
}

/// A standard-normal draw via Box–Muller (we avoid extra dependencies).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Maps every attribute of a schema into a dense discretized code space.
#[derive(Clone, Debug)]
pub struct Discretizer {
    /// `Some(spec)` for numeric attributes, `None` for categorical ones.
    bins: Vec<Option<BinSpec>>,
    n_codes: Vec<u32>,
}

impl Discretizer {
    /// Fits quartile bins on every numeric column of `train`.
    pub fn fit(train: &Dataset) -> Discretizer {
        let mut bins = Vec::with_capacity(train.n_attrs());
        let mut n_codes = Vec::with_capacity(train.n_attrs());
        for attr in 0..train.n_attrs() {
            match (&train.schema().attr(attr).kind, train.column(attr)) {
                (AttrKind::Categorical { cardinality }, _) => {
                    bins.push(None);
                    n_codes.push(*cardinality);
                }
                (AttrKind::Numeric, Column::Num(values)) => {
                    let spec = BinSpec::fit(values);
                    n_codes.push(spec.n_bins());
                    bins.push(Some(spec));
                }
                _ => unreachable!("dataset validated against schema"),
            }
        }
        Discretizer { bins, n_codes }
    }

    /// Number of attributes covered.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.bins.len()
    }

    /// Number of discrete codes for attribute `attr`.
    #[inline]
    pub fn n_codes(&self, attr: usize) -> u32 {
        self.n_codes[attr]
    }

    /// The bin spec of a numeric attribute, if any.
    #[inline]
    pub fn bin_spec(&self, attr: usize) -> Option<&BinSpec> {
        self.bins[attr].as_ref()
    }

    /// Discretized code of a single feature.
    #[inline]
    pub fn code(&self, attr: usize, feature: Feature) -> u32 {
        match (&self.bins[attr], feature) {
            (None, Feature::Cat(c)) => c,
            (Some(spec), Feature::Num(v)) => spec.bin(v),
            _ => panic!("feature kind does not match discretizer for attr {attr}"),
        }
    }

    /// Discretizes a whole instance.
    pub fn encode_instance(&self, instance: &[Feature]) -> Vec<u32> {
        assert_eq!(instance.len(), self.bins.len(), "arity mismatch");
        instance
            .iter()
            .enumerate()
            .map(|(a, &f)| self.code(a, f))
            .collect()
    }

    /// Discretizes a whole dataset into a [`DiscreteTable`].
    pub fn encode_dataset(&self, data: &Dataset) -> DiscreteTable {
        assert_eq!(data.n_attrs(), self.bins.len(), "arity mismatch");
        let cols = (0..data.n_attrs())
            .map(|attr| match (self.bins[attr].as_ref(), data.column(attr)) {
                (None, Column::Cat(codes)) => codes.clone(),
                (Some(spec), Column::Num(values)) => values.iter().map(|&v| spec.bin(v)).collect(),
                _ => unreachable!("dataset validated against schema"),
            })
            .collect();
        DiscreteTable::new(cols)
    }

    /// Reconstructs a concrete [`Feature`] for attribute `attr` from a
    /// discretized code: identity for categorical attributes, a truncated
    /// normal sample within the bin for numeric ones.
    #[inline]
    pub fn undiscretize(&self, attr: usize, code: u32, rng: &mut impl Rng) -> Feature {
        match &self.bins[attr] {
            None => Feature::Cat(code),
            Some(spec) => Feature::Num(spec.sample(code, rng)),
        }
    }

    /// Reconstructs a full instance from discretized codes.
    pub fn undiscretize_instance(&self, codes: &[u32], rng: &mut impl Rng) -> Instance {
        assert_eq!(codes.len(), self.bins.len(), "arity mismatch");
        codes
            .iter()
            .enumerate()
            .map(|(a, &c)| self.undiscretize(a, c, rng))
            .collect()
    }

    /// Appends the reconstructed features for `codes` onto `out`: the same
    /// draws, consuming the RNG in the same per-attribute order, as
    /// [`Self::undiscretize_instance`] — but into a caller-owned flat
    /// buffer, so batch producers pack many rows without a `Vec` per row.
    pub fn undiscretize_into(&self, codes: &[u32], rng: &mut impl Rng, out: &mut Vec<Feature>) {
        assert_eq!(codes.len(), self.bins.len(), "arity mismatch");
        out.extend(
            codes
                .iter()
                .enumerate()
                .map(|(a, &c)| self.undiscretize(a, c, rng)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn numeric_dataset(values: Vec<f64>) -> Dataset {
        let schema = Arc::new(Schema::new(vec![Attribute::numeric("x")]));
        Dataset::new(schema, vec![Column::Num(values)])
    }

    #[test]
    fn quartiles_of_uniform_ramp() {
        let d = numeric_dataset((0..100).map(f64::from).collect());
        let disc = Discretizer::fit(&d);
        assert_eq!(disc.n_codes(0), 4);
        assert_eq!(disc.code(0, Feature::Num(0.0)), 0);
        assert_eq!(disc.code(0, Feature::Num(30.0)), 1);
        assert_eq!(disc.code(0, Feature::Num(60.0)), 2);
        assert_eq!(disc.code(0, Feature::Num(99.0)), 3);
    }

    #[test]
    fn constant_column_single_bin() {
        let d = numeric_dataset(vec![5.0; 50]);
        let disc = Discretizer::fit(&d);
        assert_eq!(disc.n_codes(0), 1);
        assert_eq!(disc.code(0, Feature::Num(5.0)), 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(disc.undiscretize(0, 0, &mut rng), Feature::Num(5.0));
    }

    #[test]
    fn undiscretize_stays_within_bin() {
        let d = numeric_dataset((0..1000).map(|i| i as f64 / 10.0).collect());
        let disc = Discretizer::fit(&d);
        let mut rng = StdRng::seed_from_u64(7);
        for bin in 0..disc.n_codes(0) {
            for _ in 0..200 {
                let f = disc.undiscretize(0, bin, &mut rng);
                let v = f.num();
                assert_eq!(
                    disc.code(0, Feature::Num(v)),
                    bin,
                    "value {v} left bin {bin}"
                );
            }
        }
    }

    #[test]
    fn categorical_attr_passthrough() {
        let schema = Arc::new(Schema::new(vec![Attribute::categorical("c", 5)]));
        let d = Dataset::new(schema, vec![Column::Cat(vec![0, 1, 4, 2])]);
        let disc = Discretizer::fit(&d);
        assert_eq!(disc.n_codes(0), 5);
        assert_eq!(disc.code(0, Feature::Cat(4)), 4);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(disc.undiscretize(0, 3, &mut rng), Feature::Cat(3));
    }

    #[test]
    fn encode_dataset_matches_per_feature_encoding() {
        let schema = Arc::new(Schema::new(vec![
            Attribute::categorical("c", 3),
            Attribute::numeric("x"),
        ]));
        let d = Dataset::new(
            schema,
            vec![
                Column::Cat(vec![0, 2, 1, 0]),
                Column::Num(vec![1.0, 10.0, 5.0, 7.0]),
            ],
        );
        let disc = Discretizer::fit(&d);
        let table = disc.encode_dataset(&d);
        for r in 0..d.n_rows() {
            assert_eq!(table.row(r), disc.encode_instance(&d.instance(r)));
        }
    }

    #[test]
    fn skewed_column_dedupes_edges() {
        // 90% zeros: q25 = q50 = q75 = 0, so a single edge survives at most.
        let mut values = vec![0.0; 90];
        values.extend((1..=10).map(f64::from));
        let d = numeric_dataset(values);
        let disc = Discretizer::fit(&d);
        assert!(disc.n_codes(0) <= 2, "got {} bins", disc.n_codes(0));
        // All values are still encodable.
        assert_eq!(disc.code(0, Feature::Num(0.0)), 0);
        assert!(disc.code(0, Feature::Num(10.0)) < disc.n_codes(0));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
