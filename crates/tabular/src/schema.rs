//! Dataset schemas: attribute names and kinds.

use std::fmt;

/// The kind of an attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttrKind {
    /// Categorical attribute with a dense code domain `0..cardinality`.
    Categorical {
        /// Number of distinct values in the domain.
        cardinality: u32,
    },
    /// Real-valued attribute.
    Numeric,
}

impl AttrKind {
    /// True if the attribute is categorical.
    #[inline]
    pub fn is_categorical(&self) -> bool {
        matches!(self, AttrKind::Categorical { .. })
    }
}

/// A named, typed attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Human-readable attribute name.
    pub name: String,
    /// Attribute kind.
    pub kind: AttrKind,
}

impl Attribute {
    /// Creates a categorical attribute with the given domain cardinality.
    pub fn categorical(name: impl Into<String>, cardinality: u32) -> Self {
        assert!(cardinality >= 1, "categorical domain must be non-empty");
        Attribute {
            name: name.into(),
            kind: AttrKind::Categorical { cardinality },
        }
    }

    /// Creates a numeric attribute.
    pub fn numeric(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Numeric,
        }
    }
}

/// An ordered collection of attributes describing every tuple of a dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from an attribute list.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        assert!(!attrs.is_empty(), "schema must have at least one attribute");
        Schema { attrs }
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute at position `idx`.
    #[inline]
    pub fn attr(&self, idx: usize) -> &Attribute {
        &self.attrs[idx]
    }

    /// Iterator over all attributes in schema order.
    pub fn iter(&self) -> impl Iterator<Item = &Attribute> {
        self.attrs.iter()
    }

    /// Indices of all categorical attributes.
    pub fn categorical_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.attrs[i].kind.is_categorical())
            .collect()
    }

    /// Indices of all numeric attributes.
    pub fn numeric_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| !self.attrs[i].kind.is_categorical())
            .collect()
    }

    /// Domain cardinality of categorical attribute `idx`; `None` if numeric.
    pub fn cardinality(&self, idx: usize) -> Option<u32> {
        match self.attrs[idx].kind {
            AttrKind::Categorical { cardinality } => Some(cardinality),
            AttrKind::Numeric => None,
        }
    }

    /// Largest categorical domain cardinality (`#MaxDC` in Table 1 of the
    /// paper); 0 if the schema has no categorical attributes.
    pub fn max_domain_cardinality(&self) -> u32 {
        self.attrs
            .iter()
            .filter_map(|a| match a.kind {
                AttrKind::Categorical { cardinality } => Some(cardinality),
                AttrKind::Numeric => None,
            })
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n_cat = self.categorical_indices().len();
        let n_num = self.len() - n_cat;
        write!(
            f,
            "Schema({} attrs: {n_cat} categorical, {n_num} numeric, maxDC={})",
            self.len(),
            self.max_domain_cardinality()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical("workclass", 8),
            Attribute::numeric("age"),
            Attribute::categorical("education", 16),
            Attribute::numeric("hours"),
        ])
    }

    #[test]
    fn index_partitions() {
        let s = sample_schema();
        assert_eq!(s.len(), 4);
        assert_eq!(s.categorical_indices(), vec![0, 2]);
        assert_eq!(s.numeric_indices(), vec![1, 3]);
    }

    #[test]
    fn cardinalities() {
        let s = sample_schema();
        assert_eq!(s.cardinality(0), Some(8));
        assert_eq!(s.cardinality(1), None);
        assert_eq!(s.max_domain_cardinality(), 16);
    }

    #[test]
    fn display_summarizes() {
        let s = sample_schema();
        let d = s.to_string();
        assert!(d.contains("2 categorical"), "{d}");
        assert!(d.contains("maxDC=16"), "{d}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_cardinality_rejected() {
        Attribute::categorical("x", 0);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_schema_rejected() {
        Schema::new(vec![]);
    }
}
