//! CSV ingestion with schema inference.
//!
//! Real deployments load UCI-style CSV files rather than synthetic data.
//! [`read_csv`] parses a header + rows, infers each column's kind (numeric
//! if every non-empty value parses as `f64`, categorical otherwise, with
//! domain codes assigned in order of first appearance), and can split a
//! label column off. A small hand-rolled parser handles quoted fields,
//! escaped quotes, and CRLF line endings — no external dependency.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read};
use std::sync::Arc;

use crate::dataset::{Column, Dataset};
use crate::schema::{Attribute, Schema};

/// Errors surfaced while reading a CSV.
#[derive(Debug, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    Empty,
    /// A row had a different number of fields than the header.
    RaggedRow {
        /// 1-based data-row number.
        row: usize,
        /// Fields found.
        found: usize,
        /// Fields expected (header width).
        expected: usize,
    },
    /// The configured label column is missing from the header.
    NoLabelColumn(String),
    /// A label value was neither of the two seen classes.
    TooManyClasses {
        /// The offending third class label.
        value: String,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Empty => write!(f, "empty CSV: no header row"),
            CsvError::RaggedRow {
                row,
                found,
                expected,
            } => write!(f, "row {row} has {found} fields, expected {expected}"),
            CsvError::NoLabelColumn(name) => write!(f, "label column '{name}' not found"),
            CsvError::TooManyClasses { value } => {
                write!(f, "binary label column has a third class '{value}'")
            }
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// A parsed CSV: the dataset, per-column raw value dictionaries
/// (categorical code → original string), and optional labels.
#[derive(Debug)]
pub struct CsvDataset {
    /// The column-oriented dataset.
    pub data: Dataset,
    /// For each categorical attribute (by schema index): the code → string
    /// dictionary. Numeric attributes map to an empty vec.
    pub dictionaries: Vec<Vec<String>>,
    /// Binary labels, if a label column was requested.
    pub labels: Option<Vec<u8>>,
    /// The two label class names (`[class0, class1]`), if labeled.
    pub label_classes: Option<[String; 2]>,
}

/// Splits one CSV record into fields, honoring double quotes and `""`
/// escapes.
fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Reads a CSV with a header row from any reader, inferring the schema.
/// `label_column`, when given, is removed from the feature set and parsed
/// as a binary label (first class seen = 0, second = 1).
pub fn read_csv(reader: impl Read, label_column: Option<&str>) -> Result<CsvDataset, CsvError> {
    let mut lines = BufReader::new(reader).lines();
    let header = match lines.next() {
        Some(Ok(h)) => h,
        Some(Err(e)) => return Err(CsvError::Io(e.to_string())),
        None => return Err(CsvError::Empty),
    };
    let names: Vec<String> = split_record(header.trim_end_matches('\r'))
        .into_iter()
        .map(|s| s.trim().to_string())
        .collect();
    let width = names.len();
    let label_idx = match label_column {
        Some(name) => Some(
            names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| CsvError::NoLabelColumn(name.to_string()))?,
        ),
        None => None,
    };

    // Collect raw string fields column-wise.
    let mut raw: Vec<Vec<String>> = vec![Vec::new(); width];
    for (i, line) in lines.enumerate() {
        let line = line.map_err(|e| CsvError::Io(e.to_string()))?;
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        let fields = split_record(line);
        if fields.len() != width {
            return Err(CsvError::RaggedRow {
                row: i + 1,
                found: fields.len(),
                expected: width,
            });
        }
        for (col, field) in raw.iter_mut().zip(fields) {
            col.push(field.trim().to_string());
        }
    }

    // Labels.
    let (labels, label_classes) = match label_idx {
        Some(idx) => {
            let mut classes: Vec<String> = Vec::new();
            let mut labels = Vec::with_capacity(raw[idx].len());
            for v in &raw[idx] {
                let code = match classes.iter().position(|c| c == v) {
                    Some(p) => p,
                    None => {
                        if classes.len() == 2 {
                            return Err(CsvError::TooManyClasses { value: v.clone() });
                        }
                        classes.push(v.clone());
                        classes.len() - 1
                    }
                };
                labels.push(code as u8);
            }
            while classes.len() < 2 {
                classes.push(String::new());
            }
            (Some(labels), Some([classes[0].clone(), classes[1].clone()]))
        }
        None => (None, None),
    };

    // Infer column kinds and build the dataset.
    let mut attrs = Vec::new();
    let mut columns = Vec::new();
    let mut dictionaries = Vec::new();
    for (i, (name, col)) in names.iter().zip(&raw).enumerate() {
        if Some(i) == label_idx {
            continue;
        }
        // Parse once: the column is numeric iff every value parses, and the
        // parsed values are reused directly rather than re-parsed under an
        // "already checked" assumption.
        let parsed: Option<Vec<f64>> = if col.is_empty() {
            None
        } else {
            col.iter().map(|v| v.parse::<f64>().ok()).collect()
        };
        if let Some(nums) = parsed {
            attrs.push(Attribute::numeric(name.clone()));
            columns.push(Column::Num(nums));
            dictionaries.push(Vec::new());
        } else {
            let mut dict: Vec<String> = Vec::new();
            let mut index: HashMap<String, u32> = HashMap::new();
            let codes: Vec<u32> = col
                .iter()
                .map(|v| match index.get(v) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(v.clone());
                        index.insert(v.clone(), c);
                        c
                    }
                })
                .collect();
            attrs.push(Attribute::categorical(
                name.clone(),
                dict.len().max(1) as u32,
            ));
            columns.push(Column::Cat(codes));
            dictionaries.push(dict);
        }
    }
    let schema = Arc::new(Schema::new(attrs));
    Ok(CsvDataset {
        data: Dataset::new(schema, columns),
        dictionaries,
        labels,
        label_classes,
    })
}

/// Serializes a dataset (plus optional labels) back to CSV, using the
/// given dictionaries to restore categorical strings. The inverse of
/// [`read_csv`] up to numeric formatting.
pub fn write_csv(
    out: &mut impl std::io::Write,
    data: &Dataset,
    dictionaries: &[Vec<String>],
    labels: Option<(&str, &[u8])>,
) -> std::io::Result<()> {
    assert_eq!(
        dictionaries.len(),
        data.n_attrs(),
        "one dictionary per attribute"
    );
    let mut header: Vec<String> = data.schema().iter().map(|a| a.name.clone()).collect();
    if let Some((name, _)) = labels {
        header.push(name.to_string());
    }
    writeln!(out, "{}", header.join(","))?;
    for r in 0..data.n_rows() {
        let mut fields: Vec<String> = Vec::with_capacity(data.n_attrs() + 1);
        for (a, dict) in dictionaries.iter().enumerate() {
            match data.feature(r, a) {
                crate::value::Feature::Cat(c) => {
                    fields.push(
                        dict.get(c as usize)
                            .cloned()
                            .unwrap_or_else(|| c.to_string()),
                    );
                }
                crate::value::Feature::Num(v) => fields.push(format!("{v}")),
            }
        }
        if let Some((_, ls)) = labels {
            fields.push(ls[r].to_string());
        }
        writeln!(out, "{}", fields.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Feature;

    const SAMPLE: &str = "\
age,workclass,hours,income
39,State-gov,40,<=50K
50,Self-emp,13,<=50K
38,Private,40,>50K
53,Private,40,<=50K
";

    #[test]
    fn infers_kinds_and_parses() {
        let csv = read_csv(SAMPLE.as_bytes(), Some("income")).expect("parses");
        let d = &csv.data;
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.n_attrs(), 3);
        assert!(d.schema().attr(1).kind.is_categorical());
        assert!(!d.schema().attr(0).kind.is_categorical());
        assert_eq!(d.schema().attr(0).name, "age");
        assert_eq!(d.feature(0, 0), Feature::Num(39.0));
        assert_eq!(d.feature(0, 1), Feature::Cat(0)); // State-gov
        assert_eq!(d.feature(2, 1), Feature::Cat(2)); // Private
        assert_eq!(d.feature(3, 1), Feature::Cat(2)); // Private again
        assert_eq!(csv.dictionaries[1][2], "Private");
    }

    #[test]
    fn labels_are_binary_coded_in_first_seen_order() {
        let csv = read_csv(SAMPLE.as_bytes(), Some("income")).expect("parses");
        assert_eq!(csv.labels, Some(vec![0, 0, 1, 0]));
        let classes = csv.label_classes.expect("labeled");
        assert_eq!(classes[0], "<=50K");
        assert_eq!(classes[1], ">50K");
    }

    #[test]
    fn no_label_column_keeps_all_features() {
        let csv = read_csv(SAMPLE.as_bytes(), None).expect("parses");
        assert_eq!(csv.data.n_attrs(), 4);
        assert!(csv.labels.is_none());
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let text = "name,score\n\"Smith, John\",1\n\"say \"\"hi\"\"\",2\n";
        let csv = read_csv(text.as_bytes(), None).expect("parses");
        assert_eq!(csv.dictionaries[0][0], "Smith, John");
        assert_eq!(csv.dictionaries[0][1], "say \"hi\"");
        assert_eq!(csv.data.feature(0, 1), Feature::Num(1.0));
    }

    #[test]
    fn crlf_and_blank_lines_tolerated() {
        let text = "a,b\r\n1,x\r\n\r\n2,y\r\n";
        let csv = read_csv(text.as_bytes(), None).expect("parses");
        assert_eq!(csv.data.n_rows(), 2);
    }

    #[test]
    fn ragged_row_rejected() {
        let text = "a,b\n1,2\n3\n";
        let err = read_csv(text.as_bytes(), None).unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRow {
                row: 2,
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn missing_label_column_rejected() {
        let err = read_csv(SAMPLE.as_bytes(), Some("target")).unwrap_err();
        assert_eq!(err, CsvError::NoLabelColumn("target".into()));
    }

    #[test]
    fn three_class_label_rejected() {
        let text = "x,y\n1,a\n2,b\n3,c\n";
        let err = read_csv(text.as_bytes(), Some("y")).unwrap_err();
        assert!(matches!(err, CsvError::TooManyClasses { .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(read_csv("".as_bytes(), None).unwrap_err(), CsvError::Empty);
    }

    #[test]
    fn roundtrip_through_write_csv() {
        let csv = read_csv(SAMPLE.as_bytes(), Some("income")).expect("parses");
        let mut buf = Vec::new();
        write_csv(
            &mut buf,
            &csv.data,
            &csv.dictionaries,
            Some(("income", csv.labels.as_ref().expect("labeled"))),
        )
        .expect("writes");
        let text = String::from_utf8(buf).expect("utf8");
        let again = read_csv(text.as_bytes(), Some("income")).expect("reparses");
        assert_eq!(again.data.n_rows(), csv.data.n_rows());
        for r in 0..csv.data.n_rows() {
            assert_eq!(again.data.instance(r), csv.data.instance(r));
        }
        assert_eq!(again.labels, csv.labels);
    }
}
