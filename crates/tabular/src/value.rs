//! Feature values and row instances.

/// A single attribute value of a tuple.
///
/// Categorical values are stored as dense `u32` codes into the attribute's
/// domain table (see [`crate::schema::AttrKind::Categorical`]); numeric values
/// are raw `f64`s. Classifiers consume `Feature`s directly, while itemset
/// mining and perturbation freezing operate on the discretized code space
/// (see [`crate::discretize::Discretizer`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Feature {
    /// Categorical value code.
    Cat(u32),
    /// Raw numeric value.
    Num(f64),
}

impl Feature {
    /// Returns the categorical code, panicking on numeric features.
    #[inline]
    pub fn cat(self) -> u32 {
        match self {
            Feature::Cat(c) => c,
            Feature::Num(v) => panic!("expected categorical feature, got Num({v})"),
        }
    }

    /// Returns the numeric value, panicking on categorical features.
    #[inline]
    pub fn num(self) -> f64 {
        match self {
            Feature::Num(v) => v,
            Feature::Cat(c) => panic!("expected numeric feature, got Cat({c})"),
        }
    }

    /// True if this is a categorical feature.
    #[inline]
    pub fn is_cat(self) -> bool {
        matches!(self, Feature::Cat(_))
    }
}

/// A full tuple: one [`Feature`] per schema attribute, in schema order.
pub type Instance = Vec<Feature>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Feature::Cat(3).cat(), 3);
        assert_eq!(Feature::Num(1.5).num(), 1.5);
        assert!(Feature::Cat(0).is_cat());
        assert!(!Feature::Num(0.0).is_cat());
    }

    #[test]
    #[should_panic(expected = "expected categorical")]
    fn cat_on_num_panics() {
        Feature::Num(2.0).cat();
    }

    #[test]
    #[should_panic(expected = "expected numeric")]
    fn num_on_cat_panics() {
        Feature::Cat(2).num();
    }
}
