//! Synthetic dataset generators matching the paper's evaluation datasets.
//!
//! The paper evaluates on five UCI-style datasets (Table 1). Those exact
//! files are not redistributable/downloadable here, so we generate synthetic
//! datasets that reproduce the characteristics Shahin's performance actually
//! depends on:
//!
//! * the number of categorical and numeric attributes (`#CatA`, `#NumA`),
//! * the maximum categorical domain cardinality (`#MaxDC`),
//! * heavy-tailed (Zipf) categorical value distributions — these drive how
//!   many frequent itemsets exist and how much reuse is possible,
//! * a planted, learnable label concept so the Random Forest is a
//!   non-trivial black box and Anchors with high precision exist.
//!
//! Row counts are scaled down from the originals so the full experiment
//! sweep runs on one machine; a `scale` knob restores larger sizes.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Column, Dataset};
use crate::schema::{Attribute, Schema};

/// Zipf-distributed sampler over ranks `0..n` with exponent `s`.
///
/// Rank `r` has weight `1 / (r + 1)^s`; sampling is a binary search over
/// the normalized cumulative weights.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cum: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s` (`s = 0` is
    /// uniform; larger `s` is more skewed).
    pub fn new(n: u32, s: f64) -> ZipfSampler {
        assert!(n >= 1, "domain must be non-empty");
        let mut cum = Vec::with_capacity(n as usize + 1);
        let mut acc = 0.0;
        for r in 0..n {
            cum.push(acc);
            acc += 1.0 / ((r + 1) as f64).powf(s);
        }
        for c in &mut cum {
            *c /= acc;
        }
        cum.push(1.0);
        ZipfSampler { cum }
    }

    /// Samples a rank.
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let u: f64 = rng.gen();
        let idx = self.cum.partition_point(|&c| c <= u);
        (idx - 1).min(self.cum.len() - 2) as u32
    }
}

/// Full description of a synthetic dataset.
#[derive(Clone, Debug)]
pub struct SynthSpec {
    /// Dataset name (for reports).
    pub name: &'static str,
    /// Number of rows to generate.
    pub n_rows: usize,
    /// Domain cardinality of each categorical attribute.
    pub cat_cards: Vec<u32>,
    /// Number of numeric attributes.
    pub n_num: usize,
    /// Zipf exponent of the categorical value distributions.
    pub zipf_exponent: f64,
    /// Standard deviation of the Gaussian noise added to the label score.
    pub label_noise: f64,
}

impl SynthSpec {
    /// The schema this spec generates: categorical attributes first, then
    /// numeric ones.
    pub fn schema(&self) -> Schema {
        let mut attrs = Vec::with_capacity(self.cat_cards.len() + self.n_num);
        for (i, &card) in self.cat_cards.iter().enumerate() {
            attrs.push(Attribute::categorical(format!("cat_{i}"), card));
        }
        for j in 0..self.n_num {
            attrs.push(Attribute::numeric(format!("num_{j}")));
        }
        Schema::new(attrs)
    }

    /// Generates the dataset and binary labels, deterministically from
    /// `seed`.
    ///
    /// Label concept: a handful of "signal" attributes contribute ±1 (per
    /// categorical code, via a seeded sign table) or their standardized
    /// value (numeric) to a score; Gaussian noise of [`Self::label_noise`]
    /// is added and the score is thresholded at its empirical median, giving
    /// balanced, learnable classes.
    pub fn generate(&self, seed: u64) -> (Dataset, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.n_rows;
        assert!(n >= 4, "need at least 4 rows");

        // --- categorical columns: Zipf ranks through a per-attr code shuffle
        let mut cat_cols: Vec<Vec<u32>> = Vec::with_capacity(self.cat_cards.len());
        let mut code_maps: Vec<Vec<u32>> = Vec::with_capacity(self.cat_cards.len());
        for &card in &self.cat_cards {
            let sampler = ZipfSampler::new(card, self.zipf_exponent);
            // Shuffled rank -> code map decorrelates "most frequent" codes
            // across attributes.
            let mut map: Vec<u32> = (0..card).collect();
            for i in (1..map.len()).rev() {
                map.swap(i, rng.gen_range(0..=i));
            }
            let col: Vec<u32> = (0..n)
                .map(|_| map[sampler.sample(&mut rng) as usize])
                .collect();
            cat_cols.push(col);
            code_maps.push(map);
        }

        // --- numeric columns: two-component Gaussian mixtures
        let mut num_cols: Vec<Vec<f64>> = Vec::with_capacity(self.n_num);
        for j in 0..self.n_num {
            let m0 = j as f64;
            let m1 = j as f64 + 3.0 + (j % 3) as f64;
            let col: Vec<f64> = (0..n)
                .map(|_| {
                    let mean = if rng.gen_bool(0.6) { m0 } else { m1 };
                    mean + gaussian(&mut rng)
                })
                .collect();
            num_cols.push(col);
        }

        // --- planted label concept
        let n_cat_signal = self.cat_cards.len().min(4);
        let n_num_signal = self.n_num.min(3);
        // Seeded ±1 sign per (signal attr, code).
        let mut sign_rng = StdRng::seed_from_u64(seed ^ 0x5161_0d21);
        let sign_tables: Vec<Vec<f64>> = (0..n_cat_signal)
            .map(|a| {
                (0..self.cat_cards[a])
                    .map(|_| if sign_rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        let mut scores: Vec<f64> = Vec::with_capacity(n);
        for r in 0..n {
            let mut score = 0.0;
            for (a, table) in sign_tables.iter().enumerate() {
                score += table[cat_cols[a][r] as usize];
            }
            for (j, col) in num_cols.iter().take(n_num_signal).enumerate() {
                // Standardize roughly around the mixture midpoint.
                let mid = j as f64 + 1.5;
                score += (col[r] - mid) / 2.0;
            }
            score += self.label_noise * gaussian(&mut rng);
            scores.push(score);
        }
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN scores"));
        let median = sorted[n / 2];
        let labels: Vec<u8> = scores.iter().map(|&s| u8::from(s > median)).collect();

        let schema = Arc::new(self.schema());
        let mut columns: Vec<Column> = cat_cols.into_iter().map(Column::Cat).collect();
        columns.extend(num_cols.into_iter().map(Column::Num));
        (Dataset::new(schema, columns), labels)
    }
}

/// A standard-normal draw via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The five evaluation datasets of the paper (Table 1), as synthetic specs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetPreset {
    /// Census-Income (KDD): 27 categorical, 15 numeric, maxDC 18.
    CensusIncome,
    /// Recidivism: 14 categorical, 5 numeric, maxDC 20.
    Recidivism,
    /// LendingClub: 26 categorical, 24 numeric, maxDC 837.
    LendingClub,
    /// KDD Cup 1999: 13 categorical, 27 numeric, maxDC 490.
    KddCup99,
    /// Covertype: 44 categorical, 10 numeric, maxDC 7.
    Covertype,
}

impl DatasetPreset {
    /// All five presets, in Table 1 order.
    pub fn all() -> [DatasetPreset; 5] {
        [
            DatasetPreset::CensusIncome,
            DatasetPreset::Recidivism,
            DatasetPreset::LendingClub,
            DatasetPreset::KddCup99,
            DatasetPreset::Covertype,
        ]
    }

    /// Dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::CensusIncome => "Census-Income (KDD)",
            DatasetPreset::Recidivism => "Recidivism",
            DatasetPreset::LendingClub => "lendingclub",
            DatasetPreset::KddCup99 => "KDD Cup 1999",
            DatasetPreset::Covertype => "Covertype",
        }
    }

    /// The synthetic spec for this preset. `scale` multiplies the (already
    /// reduced) default row count; `scale = 1.0` is the laptop-friendly
    /// default.
    pub fn spec(self, scale: f64) -> SynthSpec {
        let (name, base_rows, n_cat, n_num, max_dc) = match self {
            DatasetPreset::CensusIncome => ("Census-Income (KDD)", 20_000, 27, 15, 18),
            DatasetPreset::Recidivism => ("Recidivism", 9_000, 14, 5, 20),
            DatasetPreset::LendingClub => ("lendingclub", 16_000, 26, 24, 837),
            DatasetPreset::KddCup99 => ("KDD Cup 1999", 24_000, 13, 27, 490),
            DatasetPreset::Covertype => ("Covertype", 20_000, 44, 10, 7),
        };
        let n_rows = ((base_rows as f64) * scale).round().max(16.0) as usize;
        SynthSpec {
            name,
            n_rows,
            cat_cards: card_ramp(n_cat, max_dc),
            n_num,
            zipf_exponent: 1.1,
            label_noise: 0.5,
        }
    }
}

/// Cardinalities ramping from 2 up to `max_dc` across `n_cat` attributes,
/// guaranteeing the maximum is hit exactly once at the end of the ramp.
fn card_ramp(n_cat: usize, max_dc: u32) -> Vec<u32> {
    assert!(n_cat >= 1);
    if n_cat == 1 {
        return vec![max_dc];
    }
    (0..n_cat)
        .map(|i| {
            let t = i as f64 / (n_cat - 1) as f64;
            let c = 2.0 + t * (max_dc as f64 - 2.0);
            (c.round() as u32).clamp(2, max_dc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let z = ZipfSampler::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hist = [0u32; 10];
        for _ in 0..100_000 {
            hist[z.sample(&mut rng) as usize] += 1;
        }
        for w in hist.windows(2) {
            assert!(w[0] >= w[1], "rank frequencies not decreasing: {hist:?}");
        }
        assert!(hist[0] > hist[9] * 5, "not skewed enough: {hist:?}");
    }

    #[test]
    fn zipf_uniform_at_zero_exponent() {
        let z = ZipfSampler::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut hist = [0u32; 4];
        for _ in 0..40_000 {
            hist[z.sample(&mut rng) as usize] += 1;
        }
        for &h in &hist {
            assert!((h as f64 / 10_000.0 - 1.0).abs() < 0.05, "{hist:?}");
        }
    }

    #[test]
    fn presets_match_table1_shape() {
        for (preset, n_cat, n_num, max_dc) in [
            (DatasetPreset::CensusIncome, 27, 15, 18),
            (DatasetPreset::Recidivism, 14, 5, 20),
            (DatasetPreset::LendingClub, 26, 24, 837),
            (DatasetPreset::KddCup99, 13, 27, 490),
            (DatasetPreset::Covertype, 44, 10, 7),
        ] {
            let spec = preset.spec(1.0);
            assert_eq!(spec.cat_cards.len(), n_cat, "{preset:?}");
            assert_eq!(spec.n_num, n_num, "{preset:?}");
            let schema = spec.schema();
            assert_eq!(schema.max_domain_cardinality(), max_dc, "{preset:?}");
            assert_eq!(schema.len(), n_cat + n_num, "{preset:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetPreset::Recidivism.spec(0.02);
        let (d1, l1) = spec.generate(42);
        let (d2, l2) = spec.generate(42);
        assert_eq!(l1, l2);
        for r in 0..d1.n_rows() {
            assert_eq!(d1.instance(r), d2.instance(r));
        }
        let (_, l3) = spec.generate(43);
        assert_ne!(l1, l3, "different seeds should differ");
    }

    #[test]
    fn labels_are_roughly_balanced() {
        let spec = DatasetPreset::CensusIncome.spec(0.05);
        let (d, labels) = spec.generate(7);
        assert_eq!(d.n_rows(), labels.len());
        let pos: usize = labels.iter().map(|&l| l as usize).sum();
        let frac = pos as f64 / labels.len() as f64;
        assert!((0.4..0.6).contains(&frac), "class balance {frac}");
    }

    #[test]
    fn labels_are_learnable_not_random() {
        // The planted concept means tuples sharing all signal-attribute
        // values should mostly share labels. Check the signal exists via a
        // crude single-attribute association test.
        let spec = DatasetPreset::Covertype.spec(0.1);
        let (d, labels) = spec.generate(3);
        // attr 0 is a signal attribute; measure label-rate spread per code.
        let card = d.schema().cardinality(0).unwrap() as usize;
        let mut pos = vec![0f64; card];
        let mut tot = vec![0f64; card];
        for (r, &label) in labels.iter().enumerate() {
            let c = d.feature(r, 0).cat() as usize;
            tot[c] += 1.0;
            pos[c] += f64::from(label);
        }
        let rates: Vec<f64> = (0..card)
            .filter(|&c| tot[c] >= 30.0)
            .map(|c| pos[c] / tot[c])
            .collect();
        let spread = rates.iter().cloned().fold(f64::MIN, f64::max)
            - rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.15, "no signal in attr 0: rates {rates:?}");
    }

    #[test]
    fn card_ramp_hits_extremes() {
        let ramp = card_ramp(10, 100);
        assert_eq!(ramp[0], 2);
        assert_eq!(*ramp.last().unwrap(), 100);
        assert!(ramp.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(card_ramp(1, 7), vec![7]);
    }

    #[test]
    fn heavy_tail_creates_frequent_values() {
        // The point of Zipf skew: the most frequent code of a mid-size
        // domain should cover a large fraction of rows, creating frequent
        // itemsets for Shahin to exploit.
        let spec = DatasetPreset::CensusIncome.spec(0.05);
        let (d, _) = spec.generate(11);
        let card = d.schema().cardinality(10).unwrap() as usize;
        let mut hist = vec![0usize; card];
        for r in 0..d.n_rows() {
            hist[d.feature(r, 10).cat() as usize] += 1;
        }
        let max = *hist.iter().max().unwrap();
        assert!(
            max as f64 / d.n_rows() as f64 > 0.25,
            "top value covers only {max}/{}",
            d.n_rows()
        );
    }
}
