//! Column-oriented datasets and their discretized views.

use std::sync::Arc;

use crate::schema::{AttrKind, Schema};
use crate::value::{Feature, Instance};

/// A single column of data.
#[derive(Clone, Debug)]
pub enum Column {
    /// Categorical column: one domain code per row.
    Cat(Vec<u32>),
    /// Numeric column: one `f64` per row.
    Num(Vec<f64>),
}

impl Column {
    /// Number of rows in this column.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Column::Cat(v) => v.len(),
            Column::Num(v) => v.len(),
        }
    }

    /// True if the column holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The feature value at `row`.
    #[inline]
    pub fn feature(&self, row: usize) -> Feature {
        match self {
            Column::Cat(v) => Feature::Cat(v[row]),
            Column::Num(v) => Feature::Num(v[row]),
        }
    }
}

/// A column-oriented dataset over a fixed [`Schema`].
///
/// The schema is shared (`Arc`) so derived datasets — splits, samples,
/// perturbation batches — do not copy it.
#[derive(Clone, Debug)]
pub struct Dataset {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Dataset {
    /// Builds a dataset, validating column kinds and lengths against the
    /// schema.
    pub fn new(schema: Arc<Schema>, columns: Vec<Column>) -> Self {
        assert_eq!(
            schema.len(),
            columns.len(),
            "column count must match schema"
        );
        let n_rows = columns.first().map_or(0, Column::len);
        for (i, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), n_rows, "ragged column {i}");
            match (&schema.attr(i).kind, col) {
                (AttrKind::Categorical { cardinality }, Column::Cat(codes)) => {
                    debug_assert!(
                        codes.iter().all(|&c| c < *cardinality),
                        "code out of domain in column {i}"
                    );
                }
                (AttrKind::Numeric, Column::Num(_)) => {}
                _ => panic!("column {i} kind does not match schema"),
            }
        }
        Dataset {
            schema,
            columns,
            n_rows,
        }
    }

    /// Builds a dataset from row-major instances.
    pub fn from_rows(schema: Arc<Schema>, rows: &[Instance]) -> Self {
        let mut columns: Vec<Column> = schema
            .iter()
            .map(|a| match a.kind {
                AttrKind::Categorical { .. } => Column::Cat(Vec::with_capacity(rows.len())),
                AttrKind::Numeric => Column::Num(Vec::with_capacity(rows.len())),
            })
            .collect();
        for row in rows {
            assert_eq!(row.len(), schema.len(), "row arity mismatch");
            for (col, &feat) in columns.iter_mut().zip(row.iter()) {
                match (col, feat) {
                    (Column::Cat(v), Feature::Cat(c)) => v.push(c),
                    (Column::Num(v), Feature::Num(x)) => v.push(x),
                    _ => panic!("feature kind does not match schema"),
                }
            }
        }
        Dataset::new(schema, columns)
    }

    /// The dataset schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.columns.len()
    }

    /// The column for attribute `attr`.
    #[inline]
    pub fn column(&self, attr: usize) -> &Column {
        &self.columns[attr]
    }

    /// The feature at (`row`, `attr`).
    #[inline]
    pub fn feature(&self, row: usize, attr: usize) -> Feature {
        self.columns[attr].feature(row)
    }

    /// Materializes row `row` as an [`Instance`].
    pub fn instance(&self, row: usize) -> Instance {
        assert!(row < self.n_rows, "row {row} out of bounds");
        self.columns.iter().map(|c| c.feature(row)).collect()
    }

    /// Materializes all rows. Convenient for small batches; prefer columnar
    /// access in hot loops.
    pub fn instances(&self) -> Vec<Instance> {
        (0..self.n_rows).map(|r| self.instance(r)).collect()
    }

    /// A new dataset containing only the given rows (in the given order).
    pub fn select(&self, rows: &[usize]) -> Dataset {
        let columns = self
            .columns
            .iter()
            .map(|col| match col {
                Column::Cat(v) => Column::Cat(rows.iter().map(|&r| v[r]).collect()),
                Column::Num(v) => Column::Num(rows.iter().map(|&r| v[r]).collect()),
            })
            .collect();
        Dataset {
            schema: Arc::clone(&self.schema),
            columns,
            n_rows: rows.len(),
        }
    }
}

/// A fully discretized, columnar view of a dataset: every attribute —
/// categorical or numeric — is reduced to a dense `u32` code.
///
/// This is the space in which frequent itemset mining, perturbation
/// freezing, and cached-perturbation matching happen.
#[derive(Clone, Debug)]
pub struct DiscreteTable {
    cols: Vec<Vec<u32>>,
    n_rows: usize,
}

impl DiscreteTable {
    /// Builds a table from columnar codes.
    pub fn new(cols: Vec<Vec<u32>>) -> Self {
        let n_rows = cols.first().map_or(0, Vec::len);
        assert!(cols.iter().all(|c| c.len() == n_rows), "ragged columns");
        DiscreteTable { cols, n_rows }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.cols.len()
    }

    /// Code at (`row`, `attr`).
    #[inline]
    pub fn code(&self, row: usize, attr: usize) -> u32 {
        self.cols[attr][row]
    }

    /// The whole code column for `attr`.
    #[inline]
    pub fn column(&self, attr: usize) -> &[u32] {
        &self.cols[attr]
    }

    /// Materializes row `row` as a code vector.
    pub fn row(&self, row: usize) -> Vec<u32> {
        self.cols.iter().map(|c| c[row]).collect()
    }

    /// A new table with only the given rows.
    pub fn select(&self, rows: &[usize]) -> DiscreteTable {
        let cols = self
            .cols
            .iter()
            .map(|c| rows.iter().map(|&r| c[r]).collect())
            .collect();
        DiscreteTable {
            cols,
            n_rows: rows.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Attribute::categorical("c", 3),
            Attribute::numeric("x"),
        ]))
    }

    fn data() -> Dataset {
        Dataset::new(
            schema(),
            vec![
                Column::Cat(vec![0, 1, 2, 1]),
                Column::Num(vec![1.0, 2.0, 3.0, 4.0]),
            ],
        )
    }

    #[test]
    fn row_materialization() {
        let d = data();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.instance(1), vec![Feature::Cat(1), Feature::Num(2.0)]);
    }

    #[test]
    fn from_rows_roundtrip() {
        let d = data();
        let rows = d.instances();
        let d2 = Dataset::from_rows(Arc::clone(d.schema()), &rows);
        assert_eq!(d2.n_rows(), d.n_rows());
        for r in 0..d.n_rows() {
            assert_eq!(d.instance(r), d2.instance(r));
        }
    }

    #[test]
    fn select_reorders() {
        let d = data().select(&[3, 0]);
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.instance(0), vec![Feature::Cat(1), Feature::Num(4.0)]);
        assert_eq!(d.instance(1), vec![Feature::Cat(0), Feature::Num(1.0)]);
    }

    #[test]
    #[should_panic(expected = "kind does not match")]
    fn kind_mismatch_rejected() {
        Dataset::new(
            schema(),
            vec![Column::Num(vec![0.0]), Column::Num(vec![0.0])],
        );
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rejected() {
        Dataset::new(
            schema(),
            vec![Column::Cat(vec![0, 1]), Column::Num(vec![0.0])],
        );
    }

    #[test]
    fn discrete_table_access() {
        let t = DiscreteTable::new(vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_attrs(), 2);
        assert_eq!(t.code(1, 1), 4);
        assert_eq!(t.row(2), vec![2, 5]);
        let s = t.select(&[2, 0]);
        assert_eq!(s.row(0), vec![2, 5]);
        assert_eq!(s.row(1), vec![0, 3]);
    }
}
