//! Explanation output types.

use shahin_fim::Itemset;

/// A feature-attribution explanation: one signed weight per attribute
/// (LIME's surrogate coefficients, or KernelSHAP's Shapley values).
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureWeights {
    /// Per-attribute importance weights, positive toward the positive class.
    pub weights: Vec<f64>,
    /// Surrogate intercept (LIME) or base value (SHAP).
    pub intercept: f64,
    /// The surrogate's own prediction for the explained instance.
    pub local_prediction: f64,
}

impl FeatureWeights {
    /// Attribute indices sorted by decreasing |weight|.
    pub fn ranking(&self) -> Vec<usize> {
        shahin_linalg::rank_by_magnitude(&self.weights)
    }

    /// The `k` most important attributes.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut r = self.ranking();
        r.truncate(k);
        r
    }
}

/// An Anchor explanation: a high-precision rule.
#[derive(Clone, Debug, PartialEq)]
pub struct AnchorExplanation {
    /// The rule predicate, as items over the discretized space.
    pub rule: Itemset,
    /// Estimated precision: fraction of rule-conditioned perturbations whose
    /// prediction matches the instance's predicted class.
    pub precision: f64,
    /// Estimated coverage: fraction of data rows satisfying the predicate.
    pub coverage: f64,
    /// The predicted class the rule anchors.
    pub anchored_class: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_and_top_k() {
        let e = FeatureWeights {
            weights: vec![0.1, -0.8, 0.3],
            intercept: 0.0,
            local_prediction: 0.5,
        };
        assert_eq!(e.ranking(), vec![1, 2, 0]);
        assert_eq!(e.top_k(2), vec![1, 2]);
        assert_eq!(e.top_k(10), vec![1, 2, 0]);
    }
}
