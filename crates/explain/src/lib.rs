//! Perturbation-based explanation algorithms: LIME, Anchor, KernelSHAP.
//!
//! Faithful single-prediction implementations of the three explainers the
//! paper optimizes (§3). All three share the template Shahin exploits:
//!
//! 1. generate perturbations of the input tuple by freezing some attributes
//!    and resampling the rest from the training distribution,
//! 2. invoke the black-box classifier on every perturbation (the cost
//!    bottleneck),
//! 3. post-process perturbations + predictions into an explanation.
//!
//! Each explainer therefore exposes two entry points: the classic
//! self-contained one, and a *reuse-aware* one accepting pre-labeled
//! samples ([`LabeledSample`]) or a pluggable sampling source
//! ([`anchor::RuleSampler`]) so the `shahin` crate can inject materialized
//! perturbations without touching the algorithms' internals — mirroring the
//! paper's "minimal modification" claim.

pub mod anchor;
pub mod context;
pub mod eval;
pub mod explanation;
pub mod lime;
pub mod perturb;
pub mod shap;

pub use anchor::{AnchorExplainer, AnchorParams, FreshRuleSampler, RuleSampler};
pub use context::ExplainContext;
pub use eval::local_fidelity;
pub use explanation::{AnchorExplanation, FeatureWeights};
pub use lime::{LimeExplainer, LimeParams};
pub use perturb::{
    estimate_base_value, labeled_perturbation, labeled_perturbations_batch,
    labeled_perturbations_batch_timed, perturb_codes, sanitize_proba, LabeledSample, ReuseStats,
};
pub use shap::{CoalitionSample, CoalitionSource, KernelShapExplainer, NoSource, ShapParams};
