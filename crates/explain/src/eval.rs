//! Local fidelity of surrogate explanations.
//!
//! A LIME/SHAP explanation is a linear surrogate of the black box in the
//! neighborhood of the instance. [`local_fidelity`] measures how well the
//! surrogate actually tracks the black box on *fresh* local samples — a
//! weighted R². This is the right lens for checking that Shahin's
//! perturbation reuse does not degrade explanation quality beyond the
//! rank/distance metrics of the paper's §4.2: identical rankings could in
//! principle hide a worse local fit, and this metric would expose it.

use rand::Rng;

use shahin_fim::Itemset;
use shahin_linalg::{default_kernel_width, exponential_kernel};
use shahin_model::Classifier;
use shahin_tabular::Feature;

use crate::context::ExplainContext;
use crate::explanation::FeatureWeights;
use crate::perturb::labeled_perturbation;

/// Weighted R² of the explanation's linear surrogate against the black box
/// on `n_eval` fresh perturbations of `instance` (proximity-weighted with
/// LIME's kernel). 1.0 is a perfect local fit; values can go negative when
/// the surrogate is worse than predicting the weighted mean.
///
/// Costs `n_eval` classifier invocations.
pub fn local_fidelity(
    ctx: &ExplainContext,
    clf: &impl Classifier,
    instance: &[Feature],
    explanation: &FeatureWeights,
    n_eval: usize,
    rng: &mut impl Rng,
) -> f64 {
    let m = ctx.n_attrs();
    assert_eq!(instance.len(), m, "instance arity mismatch");
    assert_eq!(explanation.weights.len(), m, "explanation arity mismatch");
    assert!(n_eval >= 2, "need at least two evaluation samples");
    let inst_codes = ctx.discretizer().encode_instance(instance);
    let width = default_kernel_width(m);
    let empty = Itemset::new(vec![]);

    let mut ys = Vec::with_capacity(n_eval);
    let mut preds = Vec::with_capacity(n_eval);
    let mut ws = Vec::with_capacity(n_eval);
    for _ in 0..n_eval {
        let s = labeled_perturbation(ctx, clf, &empty, rng);
        let mut zeros = 0usize;
        let mut surrogate = explanation.intercept;
        for (j, &code) in inst_codes.iter().enumerate() {
            if s.codes[j] == code {
                surrogate += explanation.weights[j];
            } else {
                zeros += 1;
            }
        }
        ys.push(s.proba);
        preds.push(surrogate);
        ws.push(exponential_kernel((zeros as f64).sqrt(), width));
    }

    let w_sum: f64 = ws.iter().sum();
    let mean: f64 = ys.iter().zip(&ws).map(|(y, w)| y * w).sum::<f64>() / w_sum;
    let ss_tot: f64 = ys
        .iter()
        .zip(&ws)
        .map(|(y, w)| w * (y - mean) * (y - mean))
        .sum();
    let ss_res: f64 = ys
        .iter()
        .zip(&preds)
        .zip(&ws)
        .map(|((y, p), w)| w * (y - p) * (y - p))
        .sum();
    if ss_tot <= f64::EPSILON {
        // Constant black box locally: perfect iff the surrogate is flat too.
        return if ss_res <= 1e-9 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lime::{LimeExplainer, LimeParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_model::MajorityClass;
    use shahin_tabular::{Attribute, Column, Dataset, Schema};
    use std::sync::Arc;

    struct KeyAttr;
    impl Classifier for KeyAttr {
        fn predict_proba(&self, inst: &[Feature]) -> f64 {
            f64::from(inst[0].cat() == 1)
        }
    }

    fn ctx(seed: u64) -> ExplainContext {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 500;
        let schema = Arc::new(Schema::new(vec![
            Attribute::categorical("a", 2),
            Attribute::categorical("b", 3),
        ]));
        let cols = vec![
            Column::Cat((0..n).map(|_| rng.gen_range(0..2)).collect()),
            Column::Cat((0..n).map(|_| rng.gen_range(0..3)).collect()),
        ];
        ExplainContext::fit(&Dataset::new(schema, cols), 200, &mut rng)
    }

    #[test]
    fn good_explanation_scores_high() {
        let ctx = ctx(0);
        let clf = KeyAttr;
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 600,
            ..Default::default()
        });
        let inst = vec![Feature::Cat(1), Feature::Cat(0)];
        let mut rng = StdRng::seed_from_u64(1);
        let e = lime.explain(&ctx, &clf, &inst, &mut rng);
        let r2 = local_fidelity(&ctx, &clf, &inst, &e, 500, &mut rng);
        assert!(r2 > 0.6, "fidelity only {r2}");
    }

    #[test]
    fn shuffled_explanation_scores_worse() {
        let ctx = ctx(2);
        let clf = KeyAttr;
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 600,
            ..Default::default()
        });
        let inst = vec![Feature::Cat(1), Feature::Cat(0)];
        let mut rng = StdRng::seed_from_u64(3);
        let good = lime.explain(&ctx, &clf, &inst, &mut rng);
        let mut bad = good.clone();
        bad.weights.reverse();
        let r2_good = local_fidelity(&ctx, &clf, &inst, &good, 500, &mut rng);
        let r2_bad = local_fidelity(&ctx, &clf, &inst, &bad, 500, &mut rng);
        assert!(
            r2_good > r2_bad + 0.1,
            "good {r2_good} not clearly above bad {r2_bad}"
        );
    }

    #[test]
    fn constant_black_box_flat_surrogate_is_perfect() {
        let ctx = ctx(4);
        let clf = MajorityClass::fit(&[1, 1, 1, 0]);
        let e = FeatureWeights {
            weights: vec![0.0, 0.0],
            intercept: 0.75,
            local_prediction: 0.75,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let inst = vec![Feature::Cat(0), Feature::Cat(0)];
        assert_eq!(local_fidelity(&ctx, &clf, &inst, &e, 100, &mut rng), 1.0);
    }
}
