//! Perturbation generation shared by all explainers.

use rand::Rng;

use shahin_fim::Itemset;
use shahin_model::Classifier;
use shahin_tabular::Instance;

use crate::context::ExplainContext;

/// A perturbation that has already been pushed through the classifier.
///
/// `codes` is the discretized representation (one code per attribute) —
/// everything the surrogate models need; the concrete feature values fed to
/// the classifier are not retained (matching what Shahin materializes).
#[derive(Clone, Debug, PartialEq)]
pub struct LabeledSample {
    /// Discretized codes, one per attribute.
    pub codes: Box<[u32]>,
    /// Classifier probability of the positive class.
    pub proba: f64,
}

impl LabeledSample {
    /// Approximate resident bytes (store budget accounting).
    #[inline]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<LabeledSample>() + self.codes.len() * std::mem::size_of::<u32>()
    }
}

/// Reuse accounting for one explanation: how the explainer's perturbation
/// budget was served. `reused + fresh` is the number of perturbation rows
/// the surrogate saw (the tuple's effective τ); `invocations` counts every
/// classifier call made on the tuple's behalf (fresh rows plus the probe
/// on the instance itself).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Perturbation rows served from pre-labeled samples (no classifier
    /// call).
    pub reused: u64,
    /// Perturbation rows generated and labeled fresh.
    pub fresh: u64,
    /// Classifier invocations consumed.
    pub invocations: u64,
    /// Classifier outputs that were not valid probabilities (NaN, ±∞, or
    /// outside `[0, 1]`) and were sanitized by [`sanitize_proba`] before
    /// the surrogate saw them. Non-zero marks the explanation degraded.
    pub clamped: u64,
}

impl ReuseStats {
    /// The explanation's perturbation budget: `reused + fresh`.
    #[inline]
    pub fn tau(&self) -> u64 {
        self.reused + self.fresh
    }
}

/// Clamps a classifier output into a valid probability before a surrogate
/// model sees it: finite out-of-range values clamp to `[0, 1]`, non-finite
/// values (NaN, ±∞) become the uninformative `0.5`. Every correction is
/// counted in [`ReuseStats::clamped`] so drivers can flag the explanation
/// as degraded. A well-behaved classifier never trips this.
#[inline]
pub fn sanitize_proba(p: f64, stats: &mut ReuseStats) -> f64 {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        p
    } else {
        stats.clamped += 1;
        if p.is_finite() {
            p.clamp(0.0, 1.0)
        } else {
            0.5
        }
    }
}

/// Draws the discretized codes of one perturbation: attributes in `frozen`
/// keep their dictated codes, every other attribute samples a code from the
/// training frequency distribution. Passing an empty itemset yields the
/// fully random perturbation LIME draws.
pub fn perturb_codes(ctx: &ExplainContext, frozen: &Itemset, rng: &mut impl Rng) -> Vec<u32> {
    let mut codes: Vec<u32> = (0..ctx.n_attrs())
        .map(|attr| ctx.stats().sample_code(attr, rng))
        .collect();
    for item in frozen.items() {
        codes[item.attr as usize] = item.code;
    }
    codes
}

/// Reconstructs a concrete instance from discretized codes (categorical
/// codes pass through, numeric bins get truncated-normal draws) and labels
/// it with one classifier invocation.
pub fn label_codes(
    ctx: &ExplainContext,
    clf: &impl Classifier,
    codes: Vec<u32>,
    rng: &mut impl Rng,
) -> LabeledSample {
    let instance: Instance = ctx.discretizer().undiscretize_instance(&codes, rng);
    let proba = clf.predict_proba(&instance);
    LabeledSample {
        codes: codes.into_boxed_slice(),
        proba,
    }
}

/// Generates and labels one perturbation with `frozen` items held fixed.
pub fn labeled_perturbation(
    ctx: &ExplainContext,
    clf: &impl Classifier,
    frozen: &Itemset,
    rng: &mut impl Rng,
) -> LabeledSample {
    let codes = perturb_codes(ctx, frozen, rng);
    label_codes(ctx, clf, codes, rng)
}

/// Generates `count` perturbations with `frozen` held fixed and labels them
/// through a **single** [`Classifier::predict_proba_flat`] dispatch over
/// one flat row-major buffer.
///
/// The RNG is consumed in exactly the order of `count` calls to
/// [`labeled_perturbation`] (perturb then undiscretize, per sample), so the
/// returned samples are bit-identical to the one-at-a-time path — only the
/// classifier dispatch is batched. An invocation-counting wrapper still
/// observes `count` invocations.
pub fn labeled_perturbations_batch(
    ctx: &ExplainContext,
    clf: &impl Classifier,
    frozen: &Itemset,
    count: usize,
    rng: &mut impl Rng,
) -> Vec<LabeledSample> {
    labeled_perturbations_batch_timed(ctx, clf, frozen, count, rng).0
}

/// [`labeled_perturbations_batch`], also reporting the time spent
/// *generating* perturbations (sampling codes + undiscretizing), excluding
/// the classifier dispatch. This is the bookkeeping-vs-model split the
/// observability layer records as `span.perturb.generate`: the classifier
/// portion already has its own latency histogram via `TracedClassifier`.
pub fn labeled_perturbations_batch_timed(
    ctx: &ExplainContext,
    clf: &impl Classifier,
    frozen: &Itemset,
    count: usize,
    rng: &mut impl Rng,
) -> (Vec<LabeledSample>, std::time::Duration) {
    let gen_start = std::time::Instant::now();
    let n_attrs = ctx.n_attrs();
    let mut codes_list = Vec::with_capacity(count);
    // One flat row-major buffer for the whole batch: no per-row
    // `Vec<Feature>` allocations, and the classifier's flat fast path
    // (e.g. `FlatForest`) consumes it without re-framing.
    let mut rows = Vec::with_capacity(count * n_attrs);
    for _ in 0..count {
        let codes = perturb_codes(ctx, frozen, rng);
        ctx.discretizer().undiscretize_into(&codes, rng, &mut rows);
        codes_list.push(codes);
    }
    let generate_time = gen_start.elapsed();
    let probas = clf.predict_proba_flat(&rows, n_attrs);
    let samples = codes_list
        .into_iter()
        .zip(probas)
        .map(|(codes, proba)| LabeledSample {
            codes: codes.into_boxed_slice(),
            proba,
        })
        .collect();
    (samples, generate_time)
}

/// Estimates the base value `E[f]` (KernelSHAP's null prediction) by
/// averaging the classifier over `n` fully random perturbations. Costs `n`
/// classifier invocations — done once per batch, which is how the
/// reference implementation amortizes its background set too.
pub fn estimate_base_value(
    ctx: &ExplainContext,
    clf: &impl Classifier,
    n: usize,
    rng: &mut impl Rng,
) -> f64 {
    assert!(n > 0, "need at least one sample");
    let empty = Itemset::new(vec![]);
    let sum: f64 = (0..n)
        .map(|_| {
            // A single NaN here would poison the base value for the whole
            // batch; sanitize per sample like the surrogate inputs.
            let p = labeled_perturbation(ctx, clf, &empty, rng).proba;
            if p.is_finite() {
                p.clamp(0.0, 1.0)
            } else {
                0.5
            }
        })
        .sum();
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_fim::Item;
    use shahin_model::{CountingClassifier, MajorityClass};
    use shahin_tabular::DatasetPreset;

    fn ctx() -> ExplainContext {
        let (data, _) = DatasetPreset::Recidivism.spec(0.02).generate(3);
        let mut rng = StdRng::seed_from_u64(0);
        ExplainContext::fit(&data, 200, &mut rng)
    }

    #[test]
    fn frozen_items_are_respected() {
        let ctx = ctx();
        let frozen = Itemset::new(vec![Item::new(0, 1), Item::new(3, 0)]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let codes = perturb_codes(&ctx, &frozen, &mut rng);
            assert_eq!(codes.len(), ctx.n_attrs());
            assert_eq!(codes[0], 1);
            assert_eq!(codes[3], 0);
        }
    }

    #[test]
    fn unfrozen_attrs_vary() {
        let ctx = ctx();
        let frozen = Itemset::new(vec![]);
        let mut rng = StdRng::seed_from_u64(2);
        let draws: Vec<Vec<u32>> = (0..100)
            .map(|_| perturb_codes(&ctx, &frozen, &mut rng))
            .collect();
        // At least one attribute takes multiple values across draws.
        let varies = (0..ctx.n_attrs()).any(|a| draws.iter().any(|d| d[a] != draws[0][a]));
        assert!(varies, "perturbations are all identical");
    }

    #[test]
    fn labeling_invokes_classifier_once() {
        let ctx = ctx();
        let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        let mut rng = StdRng::seed_from_u64(3);
        let s = labeled_perturbation(&ctx, &clf, &Itemset::new(vec![]), &mut rng);
        assert_eq!(clf.invocations(), 1);
        assert_eq!(s.proba, 0.5);
        assert_eq!(s.codes.len(), ctx.n_attrs());
    }

    #[test]
    fn base_value_of_constant_classifier() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1, 1, 1, 0]);
        let mut rng = StdRng::seed_from_u64(4);
        let base = estimate_base_value(&ctx, &clf, 20, &mut rng);
        assert!((base - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sampled_codes_respect_training_support() {
        // Codes with zero training frequency must never be drawn.
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let codes = perturb_codes(&ctx, &Itemset::new(vec![]), &mut rng);
            for (attr, &code) in codes.iter().enumerate() {
                assert!(
                    ctx.stats().count(attr, code) > 0,
                    "sampled unseen code {code} for attr {attr}"
                );
            }
        }
    }
}
