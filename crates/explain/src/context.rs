//! Shared explanation context: everything fitted once on training data.

use std::sync::Arc;

use rand::Rng;

use shahin_tabular::{Dataset, DiscreteTable, Discretizer, Schema, TrainingStats};

/// State every explainer needs, fitted once per (training set) and shared
/// across all explanations of a batch:
///
/// * the quartile [`Discretizer`],
/// * per-attribute training [`TrainingStats`] (the perturbation
///   distribution),
/// * a discretized sample of training rows used for Anchor coverage
///   estimation.
#[derive(Clone, Debug)]
pub struct ExplainContext {
    schema: Arc<Schema>,
    discretizer: Discretizer,
    stats: TrainingStats,
    coverage_sample: DiscreteTable,
}

impl ExplainContext {
    /// Fits the context on training data. `coverage_rows` caps the size of
    /// the row sample kept for coverage estimation (Anchor).
    pub fn fit(train: &Dataset, coverage_rows: usize, rng: &mut impl Rng) -> ExplainContext {
        assert!(train.n_rows() > 0, "need training data");
        let discretizer = Discretizer::fit(train);
        let table = discretizer.encode_dataset(train);
        let n_codes: Vec<u32> = (0..train.n_attrs())
            .map(|a| discretizer.n_codes(a))
            .collect();
        let stats = TrainingStats::fit(&table, &n_codes);
        let coverage_sample = if table.n_rows() <= coverage_rows {
            table
        } else {
            let idx: Vec<usize> =
                rand::seq::index::sample(rng, table.n_rows(), coverage_rows).into_vec();
            table.select(&idx)
        };
        ExplainContext {
            schema: Arc::clone(train.schema()),
            discretizer,
            stats,
            coverage_sample,
        }
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of attributes.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.schema.len()
    }

    /// The fitted discretizer.
    #[inline]
    pub fn discretizer(&self) -> &Discretizer {
        &self.discretizer
    }

    /// Training frequency statistics over the discretized space.
    #[inline]
    pub fn stats(&self) -> &TrainingStats {
        &self.stats
    }

    /// The discretized training sample used for coverage estimation.
    #[inline]
    pub fn coverage_sample(&self) -> &DiscreteTable {
        &self.coverage_sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_tabular::DatasetPreset;

    #[test]
    fn fit_produces_consistent_dimensions() {
        let (data, _) = DatasetPreset::Recidivism.spec(0.02).generate(1);
        let mut rng = StdRng::seed_from_u64(0);
        let ctx = ExplainContext::fit(&data, 100, &mut rng);
        assert_eq!(ctx.n_attrs(), data.n_attrs());
        assert_eq!(ctx.stats().n_attrs(), data.n_attrs());
        assert_eq!(ctx.coverage_sample().n_attrs(), data.n_attrs());
        assert!(ctx.coverage_sample().n_rows() <= 100);
    }

    #[test]
    fn coverage_sample_kept_whole_when_small() {
        let (data, _) = DatasetPreset::Recidivism.spec(0.005).generate(2);
        let mut rng = StdRng::seed_from_u64(1);
        let ctx = ExplainContext::fit(&data, 10_000, &mut rng);
        assert_eq!(ctx.coverage_sample().n_rows(), data.n_rows());
    }
}
