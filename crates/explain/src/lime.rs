//! LIME: Local Interpretable Model-agnostic Explanations (tabular mode).
//!
//! Faithful to the reference `lime_tabular` pipeline (paper §3.1):
//!
//! 1. discretize the instance; draw `N − 1` perturbations by sampling every
//!    attribute independently from the training frequency distribution,
//! 2. invoke the black box on each perturbation (the 88%-of-runtime step),
//! 3. map each perturbation to the binary interpretable space
//!    `z_j = 1 ⇔ sampled code == instance code`, weight it by the
//!    exponential proximity kernel,
//! 4. fit weighted ridge regression; its coefficients are the explanation.
//!
//! [`LimeExplainer::explain_with_reused`] additionally accepts pre-labeled
//! samples (Algorithm 1 line 6: "retrieve reusable samples and labels"),
//! generating only the remaining `N − 1 − |S|` perturbations fresh.

use rand::Rng;

use shahin_fim::Itemset;
use shahin_linalg::{default_kernel_width, exponential_kernel, ridge, Matrix};
use shahin_model::Classifier;
use shahin_tabular::Feature;

use crate::context::ExplainContext;
use crate::explanation::FeatureWeights;
use crate::perturb::{labeled_perturbation, sanitize_proba, LabeledSample, ReuseStats};

/// LIME hyperparameters.
#[derive(Clone, Debug)]
pub struct LimeParams {
    /// Total number of samples `N` (including the instance itself).
    pub n_samples: usize,
    /// Proximity kernel width; `None` uses LIME's default `0.75·√m`.
    pub kernel_width: Option<f64>,
    /// Ridge penalty for the surrogate (LIME's default is 1.0).
    pub alpha: f64,
}

impl Default for LimeParams {
    fn default() -> Self {
        LimeParams {
            n_samples: 500,
            kernel_width: None,
            alpha: 1.0,
        }
    }
}

/// The LIME explainer.
#[derive(Clone, Debug, Default)]
pub struct LimeExplainer {
    /// Hyperparameters.
    pub params: LimeParams,
}

impl LimeExplainer {
    /// Creates an explainer with the given parameters.
    pub fn new(params: LimeParams) -> LimeExplainer {
        LimeExplainer { params }
    }

    /// Explains one prediction, generating every perturbation fresh
    /// (the sequential baseline).
    pub fn explain(
        &self,
        ctx: &ExplainContext,
        clf: &impl Classifier,
        instance: &[Feature],
        rng: &mut impl Rng,
    ) -> FeatureWeights {
        self.explain_with_reused(ctx, clf, instance, std::iter::empty(), rng)
    }

    /// Explains one prediction, pooling `reused` pre-labeled samples first
    /// and topping up with fresh perturbations to reach `N` total samples.
    ///
    /// Reused samples whose frozen itemset is contained in the instance are
    /// distributed identically to fresh LIME perturbations conditioned on
    /// those attributes matching (paper §3.6), so this changes neither the
    /// surrogate's input distribution nor the explanation semantics.
    pub fn explain_with_reused<'a>(
        &self,
        ctx: &ExplainContext,
        clf: &impl Classifier,
        instance: &[Feature],
        reused: impl IntoIterator<Item = &'a LabeledSample>,
        rng: &mut impl Rng,
    ) -> FeatureWeights {
        self.explain_with_reused_counted(ctx, clf, instance, reused, rng)
            .0
    }

    /// [`LimeExplainer::explain_with_reused`], additionally reporting the
    /// reuse accounting ([`ReuseStats`]): how many of the `N − 1`
    /// perturbation rows came from `reused` versus fresh generation, and
    /// the classifier invocations consumed. Drivers turn this into the
    /// per-tuple provenance record.
    pub fn explain_with_reused_counted<'a>(
        &self,
        ctx: &ExplainContext,
        clf: &impl Classifier,
        instance: &[Feature],
        reused: impl IntoIterator<Item = &'a LabeledSample>,
        rng: &mut impl Rng,
    ) -> (FeatureWeights, ReuseStats) {
        let m = ctx.n_attrs();
        assert_eq!(instance.len(), m, "instance arity mismatch");
        assert!(self.params.n_samples >= 2, "need at least 2 samples");
        let inst_codes = ctx.discretizer().encode_instance(instance);
        let width = self
            .params
            .kernel_width
            .unwrap_or_else(|| default_kernel_width(m));

        let n = self.params.n_samples;
        let mut z = Matrix::zeros(n, m);
        let mut y = vec![0.0; n];
        let mut w = vec![0.0; n];

        let mut stats = ReuseStats {
            invocations: 1, // the instance probe below
            ..ReuseStats::default()
        };

        // Row 0: the instance itself (all-ones interpretable vector).
        let fx = sanitize_proba(clf.predict_proba(instance), &mut stats);
        z.row_mut(0).fill(1.0);
        y[0] = fx;
        w[0] = 1.0;
        let mut reused = reused.into_iter();
        let empty = Itemset::new(vec![]);
        for row in 1..n {
            let fresh;
            let (codes, proba): (&[u32], f64) = match reused.next() {
                Some(s) => {
                    stats.reused += 1;
                    (&s.codes, s.proba)
                }
                None => {
                    fresh = labeled_perturbation(ctx, clf, &empty, rng);
                    stats.fresh += 1;
                    stats.invocations += 1;
                    (&fresh.codes, fresh.proba)
                }
            };
            // Binary interpretable representation + distance.
            let mut zeros = 0usize;
            let zrow = z.row_mut(row);
            for j in 0..m {
                if codes[j] == inst_codes[j] {
                    zrow[j] = 1.0;
                } else {
                    zeros += 1;
                }
            }
            y[row] = sanitize_proba(proba, &mut stats);
            let distance = (zeros as f64).sqrt();
            w[row] = exponential_kernel(distance, width);
        }

        let fit = ridge(&z, &y, &w, self.params.alpha);
        let local_prediction = fit.predict(&vec![1.0; m]);
        (
            FeatureWeights {
                weights: fit.coefficients,
                intercept: fit.intercept,
                local_prediction,
            },
            stats,
        )
    }

    /// Approximate LIME with adaptive early stopping (the paper's §6
    /// suggestion: "one could achieve substantial speedup by allowing
    /// certain approximation in the explanations generated").
    ///
    /// Samples in rounds of `check_every`; after each round the surrogate
    /// is refit, and sampling stops once the maximum coefficient change
    /// since the previous round drops below `tolerance` (or the `N` budget
    /// is exhausted). Returns the explanation and the number of samples
    /// actually used — the saved classifier invocations are
    /// `N − n_used`.
    pub fn explain_adaptive(
        &self,
        ctx: &ExplainContext,
        clf: &impl Classifier,
        instance: &[Feature],
        check_every: usize,
        tolerance: f64,
        rng: &mut impl Rng,
    ) -> (FeatureWeights, usize) {
        let m = ctx.n_attrs();
        assert_eq!(instance.len(), m, "instance arity mismatch");
        assert!(check_every >= 2, "check_every must be at least 2");
        assert!(tolerance > 0.0, "tolerance must be positive");
        let inst_codes = ctx.discretizer().encode_instance(instance);
        let width = self
            .params
            .kernel_width
            .unwrap_or_else(|| default_kernel_width(m));
        let empty = Itemset::new(vec![]);

        let fx = clf.predict_proba(instance);
        let mut z_rows: Vec<Vec<f64>> = vec![vec![1.0; m]];
        let mut y = vec![fx];
        let mut w = vec![1.0];
        let mut prev: Option<Vec<f64>> = None;
        let mut fit = None;

        while y.len() < self.params.n_samples {
            for _ in 0..check_every.min(self.params.n_samples - y.len()) {
                let s = labeled_perturbation(ctx, clf, &empty, rng);
                let mut zeros = 0usize;
                let mut zrow = vec![0.0; m];
                for j in 0..m {
                    if s.codes[j] == inst_codes[j] {
                        zrow[j] = 1.0;
                    } else {
                        zeros += 1;
                    }
                }
                z_rows.push(zrow);
                y.push(s.proba);
                w.push(exponential_kernel((zeros as f64).sqrt(), width));
            }
            let z = Matrix::from_rows(z_rows.len(), m, z_rows.iter().flatten().copied().collect());
            let f = ridge(&z, &y, &w, self.params.alpha);
            let converged = prev.as_ref().is_some_and(|p| {
                f.coefficients
                    .iter()
                    .zip(p)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
                    < tolerance
            });
            prev = Some(f.coefficients.clone());
            fit = Some(f);
            if converged {
                break;
            }
        }
        let fit = fit.expect("at least one round ran");
        let n_used = y.len();
        let local_prediction = fit.predict(&vec![1.0; m]);
        (
            FeatureWeights {
                weights: fit.coefficients,
                intercept: fit.intercept,
                local_prediction,
            },
            n_used,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_model::{CountingClassifier, MajorityClass};
    use shahin_tabular::{Attribute, Column, Dataset, DatasetPreset, Schema};
    use std::sync::Arc;

    fn small_ctx() -> (ExplainContext, Dataset) {
        let (data, _) = DatasetPreset::Recidivism.spec(0.02).generate(3);
        let mut rng = StdRng::seed_from_u64(0);
        let ctx = ExplainContext::fit(&data, 200, &mut rng);
        (ctx, data)
    }

    /// A classifier keyed on a single categorical attribute.
    struct KeyAttr {
        attr: usize,
        code: u32,
    }
    impl Classifier for KeyAttr {
        fn predict_proba(&self, instance: &[Feature]) -> f64 {
            f64::from(instance[self.attr].cat() == self.code)
        }
    }

    #[test]
    fn classifier_invocations_equal_n_samples() {
        let (ctx, data) = small_ctx();
        let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 100,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        lime.explain(&ctx, &clf, &data.instance(0), &mut rng);
        // 1 for the instance + 99 perturbations.
        assert_eq!(clf.invocations(), 100);
    }

    #[test]
    fn reuse_cuts_invocations_exactly() {
        let (ctx, data) = small_ctx();
        let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 100,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        // Pre-label 40 samples.
        let empty = Itemset::new(vec![]);
        let reused: Vec<LabeledSample> = (0..40)
            .map(|_| labeled_perturbation(&ctx, &clf, &empty, &mut rng))
            .collect();
        clf.reset();
        lime.explain_with_reused(&ctx, &clf, &data.instance(0), &reused, &mut rng);
        // 1 (instance) + 59 fresh.
        assert_eq!(clf.invocations(), 60);
    }

    #[test]
    fn counted_variant_reports_exact_reuse_stats() {
        let (ctx, data) = small_ctx();
        let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 100,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        let empty = Itemset::new(vec![]);
        let reused: Vec<LabeledSample> = (0..40)
            .map(|_| labeled_perturbation(&ctx, &clf, &empty, &mut rng))
            .collect();
        clf.reset();
        let (_, stats) =
            lime.explain_with_reused_counted(&ctx, &clf, &data.instance(0), &reused, &mut rng);
        assert_eq!(stats.reused, 40);
        assert_eq!(stats.fresh, 59);
        assert_eq!(stats.tau(), 99); // n_samples − 1 perturbation rows
        assert_eq!(stats.invocations, 60);
        assert_eq!(stats.invocations, clf.invocations());
    }

    #[test]
    fn key_attribute_gets_top_weight() {
        // Classifier depends only on attribute 2; LIME must rank it first.
        let schema = Arc::new(Schema::new(vec![
            Attribute::categorical("a", 3),
            Attribute::categorical("b", 3),
            Attribute::categorical("c", 2),
        ]));
        let mut rng = StdRng::seed_from_u64(3);
        let n = 600;
        let cols = vec![
            Column::Cat((0..n).map(|_| rng.gen_range(0..3)).collect()),
            Column::Cat((0..n).map(|_| rng.gen_range(0..3)).collect()),
            Column::Cat((0..n).map(|_| rng.gen_range(0..2)).collect()),
        ];
        let data = Dataset::new(schema, cols);
        let ctx = ExplainContext::fit(&data, 200, &mut rng);
        let clf = KeyAttr { attr: 2, code: 1 };
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 400,
            ..Default::default()
        });
        let instance = vec![Feature::Cat(0), Feature::Cat(1), Feature::Cat(1)];
        let e = lime.explain(&ctx, &clf, &instance, &mut rng);
        assert_eq!(e.ranking()[0], 2, "weights: {:?}", e.weights);
        assert!(e.weights[2] > 0.0, "key weight should be positive");
    }

    #[test]
    fn weight_sign_flips_with_class() {
        let schema = Arc::new(Schema::new(vec![
            Attribute::categorical("a", 2),
            Attribute::categorical("b", 2),
        ]));
        let mut rng = StdRng::seed_from_u64(4);
        let n = 400;
        let cols = vec![
            Column::Cat((0..n).map(|_| rng.gen_range(0..2)).collect()),
            Column::Cat((0..n).map(|_| rng.gen_range(0..2)).collect()),
        ];
        let data = Dataset::new(schema, cols);
        let ctx = ExplainContext::fit(&data, 100, &mut rng);
        let clf = KeyAttr { attr: 0, code: 1 };
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 300,
            ..Default::default()
        });
        // Instance whose attr0 = 1 (classifier says positive): holding
        // attr0 fixed should push toward positive → positive weight.
        let pos_inst = vec![Feature::Cat(1), Feature::Cat(0)];
        let e_pos = lime.explain(&ctx, &clf, &pos_inst, &mut rng);
        assert!(e_pos.weights[0] > 0.0, "{:?}", e_pos.weights);
        // Instance whose attr0 = 0 (negative): keeping it at 0 pushes away
        // from positive → negative weight.
        let neg_inst = vec![Feature::Cat(0), Feature::Cat(0)];
        let e_neg = lime.explain(&ctx, &clf, &neg_inst, &mut rng);
        assert!(e_neg.weights[0] < 0.0, "{:?}", e_neg.weights);
    }

    #[test]
    fn deterministic_under_seed() {
        let (ctx, data) = small_ctx();
        let clf = MajorityClass::fit(&[1, 0, 0]);
        let lime = LimeExplainer::default();
        let e1 = lime.explain(&ctx, &clf, &data.instance(5), &mut StdRng::seed_from_u64(9));
        let e2 = lime.explain(&ctx, &clf, &data.instance(5), &mut StdRng::seed_from_u64(9));
        assert_eq!(e1, e2);
    }

    #[test]
    fn adaptive_lime_stops_early_on_easy_classifiers() {
        let (ctx, data) = small_ctx();
        // Constant classifier: coefficients converge immediately.
        let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 2000,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(21);
        let (e, n_used) = lime.explain_adaptive(&ctx, &clf, &data.instance(0), 50, 0.01, &mut rng);
        assert!(n_used < 2000, "no early stop: used {n_used}");
        assert_eq!(clf.invocations(), n_used as u64);
        assert!(e.weights.iter().all(|v| v.abs() < 0.05), "{:?}", e.weights);
    }

    #[test]
    fn adaptive_lime_agrees_with_full_lime_ranking() {
        let schema = Arc::new(Schema::new(vec![
            Attribute::categorical("a", 3),
            Attribute::categorical("b", 3),
            Attribute::categorical("c", 2),
        ]));
        let mut rng = StdRng::seed_from_u64(22);
        let n = 600;
        let cols = vec![
            Column::Cat((0..n).map(|_| rng.gen_range(0..3)).collect()),
            Column::Cat((0..n).map(|_| rng.gen_range(0..3)).collect()),
            Column::Cat((0..n).map(|_| rng.gen_range(0..2)).collect()),
        ];
        let data = Dataset::new(schema, cols);
        let ctx = ExplainContext::fit(&data, 200, &mut rng);
        let clf = KeyAttr { attr: 2, code: 1 };
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 1500,
            ..Default::default()
        });
        let instance = vec![Feature::Cat(0), Feature::Cat(1), Feature::Cat(1)];
        let (e, n_used) = lime.explain_adaptive(&ctx, &clf, &instance, 100, 0.02, &mut rng);
        assert_eq!(e.ranking()[0], 2, "weights {:?} (used {n_used})", e.weights);
    }

    #[test]
    fn constant_classifier_gives_near_zero_weights() {
        let (ctx, data) = small_ctx();
        let clf = MajorityClass::fit(&[1, 1, 1, 1, 0, 0, 0, 0]);
        let lime = LimeExplainer::default();
        let mut rng = StdRng::seed_from_u64(10);
        let e = lime.explain(&ctx, &clf, &data.instance(0), &mut rng);
        for &w in &e.weights {
            assert!(w.abs() < 1e-9, "weights should vanish: {:?}", e.weights);
        }
        assert!((e.intercept - 0.5).abs() < 1e-9);
    }
}
