//! KL-LUCB best-arm identification.
//!
//! Anchor estimates rule precision with a multi-armed bandit to minimize
//! classifier invocations (paper §3.2). Each candidate rule is an arm; a
//! pull draws rule-conditioned perturbations and observes how many the
//! black box labels with the anchored class. KL-LUCB adaptively pulls the
//! most ambiguous arms until the top-`k` set is separated with confidence
//! `1 − δ` up to tolerance `ε`.

/// Sufficient statistics of one arm (candidate rule).
#[derive(Clone, Copy, Debug, Default)]
pub struct ArmState {
    /// Total rule-conditioned samples drawn.
    pub n: u64,
    /// Samples whose prediction matched the anchored class.
    pub successes: u64,
}

impl ArmState {
    /// Empirical precision; 0 before any pull.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.successes as f64 / self.n as f64
        }
    }
}

/// Bernoulli KL divergence `KL(p ‖ q)` with the usual conventions at the
/// boundaries.
pub fn kl_bernoulli(p: f64, q: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let q = q.clamp(1e-12, 1.0 - 1e-12);
    let mut kl = 0.0;
    if p > 0.0 {
        kl += p * (p / q).ln();
    }
    if p < 1.0 {
        kl += (1.0 - p) * ((1.0 - p) / (1.0 - q)).ln();
    }
    kl
}

/// Upper KL confidence bound: the largest `q ≥ mean` with
/// `n · KL(mean ‖ q) ≤ beta`, found by bisection. An unpulled arm gets 1.
pub fn kl_upper_bound(arm: &ArmState, beta: f64) -> f64 {
    if arm.n == 0 {
        return 1.0;
    }
    let p = arm.mean();
    let level = beta / arm.n as f64;
    let (mut lo, mut hi) = (p, 1.0);
    for _ in 0..32 {
        let mid = 0.5 * (lo + hi);
        if kl_bernoulli(p, mid) > level {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// Lower KL confidence bound: the smallest `q ≤ mean` with
/// `n · KL(mean ‖ q) ≤ beta`. An unpulled arm gets 0.
pub fn kl_lower_bound(arm: &ArmState, beta: f64) -> f64 {
    if arm.n == 0 {
        return 0.0;
    }
    let p = arm.mean();
    let level = beta / arm.n as f64;
    let (mut lo, mut hi) = (0.0, p);
    for _ in 0..32 {
        let mid = 0.5 * (lo + hi);
        if kl_bernoulli(p, mid) > level {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Exploration rate used by the reference Anchor implementation:
/// `β(t) = ln(n_arms · t^α / δ)` with `α = 1.1`.
pub fn beta(n_arms: usize, t: u64, delta: f64) -> f64 {
    let alpha = 1.1;
    ((n_arms as f64) * (t.max(1) as f64).powf(alpha) / delta)
        .ln()
        .max(0.0)
}

/// Identifies the `top_k` arms by mean with KL-LUCB.
///
/// `pull(arm_idx, batch, state)` draws `batch` more samples for one arm and
/// updates its state (returning how many draws actually happened — a
/// sampler may be exhausted). Stops when the gap between the weakest
/// upper bound outside the top set and the weakest lower bound inside it is
/// below `epsilon`, or when no arm can be pulled further, or after
/// `max_pulls` total draws. Returns the indices of the selected arms,
/// best mean first.
#[allow(clippy::too_many_arguments)]
pub fn kl_lucb(
    arms: &mut [ArmState],
    top_k: usize,
    epsilon: f64,
    delta: f64,
    batch: usize,
    max_pulls: u64,
    mut pull: impl FnMut(usize, usize, &mut ArmState) -> usize,
) -> Vec<usize> {
    assert!(!arms.is_empty(), "need at least one arm");
    let k = top_k.min(arms.len());
    let n_arms = arms.len();
    let mut total_pulls: u64 = arms.iter().map(|a| a.n).sum();
    let mut exhausted = vec![false; n_arms];

    loop {
        // Rank arms by mean.
        let mut order: Vec<usize> = (0..n_arms).collect();
        order.sort_by(|&i, &j| {
            arms[j]
                .mean()
                .partial_cmp(&arms[i].mean())
                .expect("finite means")
                .then(i.cmp(&j))
        });
        let (top, rest) = order.split_at(k);
        if rest.is_empty() {
            return top.to_vec();
        }
        let b = beta(n_arms, total_pulls, delta);
        // Weakest member of the top set (lowest lower bound) and strongest
        // challenger (highest upper bound).
        let &lt = top
            .iter()
            .min_by(|&&i, &&j| {
                kl_lower_bound(&arms[i], b)
                    .partial_cmp(&kl_lower_bound(&arms[j], b))
                    .expect("finite bounds")
            })
            .expect("top set non-empty");
        let &ut = rest
            .iter()
            .max_by(|&&i, &&j| {
                kl_upper_bound(&arms[i], b)
                    .partial_cmp(&kl_upper_bound(&arms[j], b))
                    .expect("finite bounds")
            })
            .expect("rest non-empty");
        let gap = kl_upper_bound(&arms[ut], b) - kl_lower_bound(&arms[lt], b);
        if gap < epsilon || total_pulls >= max_pulls {
            return top.to_vec();
        }
        let mut progressed = false;
        for idx in [ut, lt] {
            if exhausted[idx] {
                continue;
            }
            let drawn = pull(idx, batch, &mut arms[idx]);
            if drawn == 0 {
                exhausted[idx] = true;
            } else {
                total_pulls += drawn as u64;
                progressed = true;
            }
        }
        if !progressed {
            return top.to_vec();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn kl_bernoulli_basics() {
        assert_eq!(kl_bernoulli(0.5, 0.5), 0.0);
        assert!(kl_bernoulli(0.9, 0.1) > 0.0);
        assert!(kl_bernoulli(0.0, 0.5) > 0.0);
        assert!(kl_bernoulli(1.0, 0.5) > 0.0);
        // Asymmetric but always non-negative.
        for &(p, q) in &[(0.2, 0.8), (0.7, 0.3), (0.01, 0.99)] {
            assert!(kl_bernoulli(p, q) >= 0.0);
        }
    }

    #[test]
    fn bounds_bracket_the_mean_and_tighten() {
        let loose = ArmState {
            n: 10,
            successes: 7,
        };
        let tight = ArmState {
            n: 1000,
            successes: 700,
        };
        let b = 2.0;
        let (lo_l, hi_l) = (kl_lower_bound(&loose, b), kl_upper_bound(&loose, b));
        let (lo_t, hi_t) = (kl_lower_bound(&tight, b), kl_upper_bound(&tight, b));
        assert!(lo_l <= 0.7 && 0.7 <= hi_l);
        assert!(lo_t <= 0.7 && 0.7 <= hi_t);
        assert!(
            hi_t - lo_t < hi_l - lo_l,
            "more samples must tighten bounds"
        );
    }

    #[test]
    fn unpulled_arm_has_trivial_bounds() {
        let a = ArmState::default();
        assert_eq!(kl_upper_bound(&a, 1.0), 1.0);
        assert_eq!(kl_lower_bound(&a, 1.0), 0.0);
        assert_eq!(a.mean(), 0.0);
    }

    #[test]
    fn lucb_finds_the_best_arm() {
        // True precisions: arm 2 is clearly best.
        let truth = [0.3, 0.5, 0.95, 0.4];
        let mut arms = vec![ArmState::default(); truth.len()];
        let mut rng = StdRng::seed_from_u64(0);
        let top = kl_lucb(&mut arms, 1, 0.1, 0.05, 16, 100_000, |idx, batch, arm| {
            for _ in 0..batch {
                arm.n += 1;
                if rng.gen_bool(truth[idx]) {
                    arm.successes += 1;
                }
            }
            batch
        });
        assert_eq!(top, vec![2]);
    }

    #[test]
    fn lucb_top2_selection() {
        let truth = [0.9, 0.1, 0.85, 0.2];
        let mut arms = vec![ArmState::default(); truth.len()];
        let mut rng = StdRng::seed_from_u64(1);
        let mut top = kl_lucb(&mut arms, 2, 0.15, 0.05, 16, 100_000, |idx, batch, arm| {
            for _ in 0..batch {
                arm.n += 1;
                if rng.gen_bool(truth[idx]) {
                    arm.successes += 1;
                }
            }
            batch
        });
        top.sort_unstable();
        assert_eq!(top, vec![0, 2]);
    }

    #[test]
    fn lucb_respects_exhausted_arms() {
        // Pull function refuses to draw: must terminate immediately with
        // the prior ranking.
        let mut arms = vec![
            ArmState {
                n: 10,
                successes: 9,
            },
            ArmState {
                n: 10,
                successes: 1,
            },
        ];
        let top = kl_lucb(&mut arms, 1, 0.01, 0.05, 8, 100_000, |_, _, _| 0);
        assert_eq!(top, vec![0]);
    }

    #[test]
    fn lucb_respects_max_pulls() {
        let mut arms = vec![ArmState::default(); 2];
        let mut pulls = 0u64;
        let _ = kl_lucb(&mut arms, 1, 1e-9, 0.05, 4, 40, |_, batch, arm| {
            pulls += batch as u64;
            arm.n += batch as u64;
            // Identical arms: bounds never separate; max_pulls must stop us.
            arm.successes += batch as u64 / 2;
            batch
        });
        assert!(pulls <= 48, "pulled {pulls} times");
    }

    #[test]
    fn beta_grows_with_t_and_arms() {
        assert!(beta(10, 100, 0.05) > beta(10, 10, 0.05));
        assert!(beta(20, 10, 0.05) > beta(10, 10, 0.05));
        assert!(beta(10, 10, 0.01) > beta(10, 10, 0.1));
    }
}
