//! Rule-conditioned sampling behind a pluggable interface.
//!
//! All of Anchor's classifier traffic flows through [`RuleSampler`]. The
//! default [`FreshRuleSampler`] generates every sample from scratch (the
//! sequential baseline); the `shahin` crate supplies a caching
//! implementation that bootstraps counts from materialized perturbations
//! and memoizes coverage — without touching the search or bandit logic.

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin_fim::Itemset;
use shahin_model::Classifier;
use shahin_tabular::DiscreteTable;

use crate::context::ExplainContext;
use crate::perturb::labeled_perturbation;

/// Source of rule-conditioned, classifier-labeled samples plus the
/// invariant per-rule statistics (coverage).
pub trait RuleSampler {
    /// Draws up to `k` perturbations conditioned on `rule` (rule items
    /// frozen, everything else resampled from the training distribution),
    /// invokes the classifier on each, and returns
    /// `(drawn, positive)` where `positive` counts *positive-class*
    /// predictions. May draw fewer than `k` (e.g. a budget-capped cache);
    /// returning `(0, _)` means the source is exhausted for this rule.
    fn draw(&mut self, rule: &Itemset, k: usize) -> (u64, u64);

    /// Pre-existing counts for `rule` available without any classifier
    /// invocation (Shahin's bootstrap from materialized supersets/subsets,
    /// paper §3.2). The default has none.
    fn prior(&mut self, rule: &Itemset) -> (u64, u64) {
        let _ = rule;
        (0, 0)
    }

    /// Coverage of `rule`: the fraction of data tuples satisfying its
    /// predicate. Invariant across tuples — Shahin materializes it.
    fn coverage(&mut self, rule: &Itemset) -> f64;
}

/// Exact coverage of a rule over a discretized row sample.
pub fn rule_coverage(table: &DiscreteTable, rule: &Itemset) -> f64 {
    if table.n_rows() == 0 {
        return 0.0;
    }
    let hits = (0..table.n_rows())
        .filter(|&r| {
            rule.items()
                .iter()
                .all(|it| table.code(r, it.attr as usize) == it.code)
        })
        .count();
    hits as f64 / table.n_rows() as f64
}

/// The baseline sampler: every draw generates fresh perturbations and
/// invokes the classifier; coverage is recomputed on every call.
pub struct FreshRuleSampler<'a, C> {
    ctx: &'a ExplainContext,
    clf: &'a C,
    rng: StdRng,
}

impl<'a, C: Classifier> FreshRuleSampler<'a, C> {
    /// Creates a sampler with its own deterministic RNG stream.
    pub fn new(ctx: &'a ExplainContext, clf: &'a C, seed: u64) -> Self {
        FreshRuleSampler {
            ctx,
            clf,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<C: Classifier> RuleSampler for FreshRuleSampler<'_, C> {
    fn draw(&mut self, rule: &Itemset, k: usize) -> (u64, u64) {
        let mut positive = 0u64;
        for _ in 0..k {
            let s = labeled_perturbation(self.ctx, self.clf, rule, &mut self.rng);
            if s.proba >= 0.5 {
                positive += 1;
            }
        }
        (k as u64, positive)
    }

    fn coverage(&mut self, rule: &Itemset) -> f64 {
        rule_coverage(self.ctx.coverage_sample(), rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shahin_fim::Item;
    use shahin_model::{CountingClassifier, MajorityClass};
    use shahin_tabular::DatasetPreset;

    fn ctx() -> ExplainContext {
        let (data, _) = DatasetPreset::Recidivism.spec(0.02).generate(1);
        let mut rng = StdRng::seed_from_u64(0);
        ExplainContext::fit(&data, 500, &mut rng)
    }

    #[test]
    fn draw_invokes_classifier_k_times() {
        let ctx = ctx();
        let clf = CountingClassifier::new(MajorityClass::fit(&[1]));
        let mut s = FreshRuleSampler::new(&ctx, &clf, 7);
        let (n, pos) = s.draw(&Itemset::new(vec![Item::new(0, 1)]), 25);
        assert_eq!(n, 25);
        assert_eq!(pos, 25); // classifier always says positive
        assert_eq!(clf.invocations(), 25);
    }

    #[test]
    fn default_prior_is_empty() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut s = FreshRuleSampler::new(&ctx, &clf, 7);
        assert_eq!(s.prior(&Itemset::new(vec![])), (0, 0));
    }

    #[test]
    fn coverage_of_empty_rule_is_one() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut s = FreshRuleSampler::new(&ctx, &clf, 7);
        assert_eq!(s.coverage(&Itemset::new(vec![])), 1.0);
    }

    #[test]
    fn coverage_matches_brute_force() {
        let table = DiscreteTable::new(vec![vec![0, 0, 1, 1, 0], vec![2, 2, 2, 3, 3]]);
        let rule = Itemset::new(vec![Item::new(0, 0), Item::new(1, 2)]);
        assert_eq!(rule_coverage(&table, &rule), 2.0 / 5.0);
        let rule1 = Itemset::new(vec![Item::new(1, 2)]);
        assert_eq!(rule_coverage(&table, &rule1), 3.0 / 5.0);
    }

    #[test]
    fn coverage_of_empty_table_is_zero() {
        let table = DiscreteTable::new(vec![vec![]]);
        assert_eq!(rule_coverage(&table, &Itemset::new(vec![])), 0.0);
    }
}
