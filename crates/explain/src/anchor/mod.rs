//! Anchor: high-precision model-agnostic rule explanations.
//!
//! An anchor for tuple `t` is a rule `IF A_i = u AND A_j = v THEN
//! class = c` (with `c` the model's prediction for `t`) whose *precision* —
//! the probability that rule-conditioned perturbations keep prediction
//! `c` — exceeds a threshold, chosen to maximize *coverage* (paper §3.2).
//!
//! The search is the reference implementation's beam search: candidate
//! rules are conjunctions of the tuple's own attribute values, extended one
//! predicate at a time; precision is estimated by the KL-LUCB bandit
//! ([`bandit`]) to minimize classifier invocations; the first rule whose
//! precision lower bound clears the threshold wins (ties by coverage) —
//! which also realizes the paper's "pick the rule with least predicates"
//! rule, since shorter rules are found at earlier levels.

pub mod bandit;
pub mod sampler;

use rand::Rng;

use shahin_fim::{Item, Itemset};
use shahin_model::Classifier;
use shahin_obs::{Counter, Histogram, MetricsRegistry};
use shahin_tabular::Feature;

use crate::context::ExplainContext;
use crate::explanation::AnchorExplanation;

use bandit::{beta, kl_lower_bound, kl_lucb, kl_upper_bound, ArmState};
pub use sampler::{rule_coverage, FreshRuleSampler, RuleSampler};

/// Anchor hyperparameters. The paper's defaults: `ε = 0.1`, `δ = 0.05`.
#[derive(Clone, Debug)]
pub struct AnchorParams {
    /// Required rule precision.
    pub precision_threshold: f64,
    /// KL-LUCB tolerance ε.
    pub epsilon: f64,
    /// KL-LUCB confidence δ.
    pub delta: f64,
    /// Beam width (candidates kept per level).
    pub beam_width: usize,
    /// Maximum number of predicates in a rule.
    pub max_rule_len: usize,
    /// Samples drawn per bandit pull.
    pub batch_size: usize,
    /// Minimum samples per candidate before bounds are trusted.
    pub init_samples: usize,
    /// Total sample budget per KL-LUCB invocation.
    pub max_pulls: u64,
    /// Candidates with coverage below this are pruned (they could never be
    /// useful anchors).
    pub min_coverage: f64,
}

impl Default for AnchorParams {
    fn default() -> Self {
        AnchorParams {
            precision_threshold: 0.90,
            epsilon: 0.1,
            delta: 0.05,
            beam_width: 2,
            max_rule_len: 4,
            batch_size: 16,
            init_samples: 16,
            max_pulls: 2_000,
            min_coverage: 0.02,
        }
    }
}

/// Observability handles for the beam search. Defaults to detached
/// no-ops; [`AnchorExplainer::with_obs`] wires them to a registry.
#[derive(Clone, Debug, Default)]
struct AnchorObs {
    /// Wall time of one `explain_with_sampler` call (`span.anchor.search`).
    search: Histogram,
    /// Beam-search levels entered.
    levels: Counter,
    /// Candidate rules that survived coverage pruning.
    candidates: Counter,
    /// Searches that returned a precision-verified anchor.
    verified: Counter,
    /// Searches that fell back to a best-effort (unverified) rule.
    fallbacks: Counter,
}

/// The Anchor explainer.
#[derive(Clone, Debug, Default)]
pub struct AnchorExplainer {
    /// Hyperparameters.
    pub params: AnchorParams,
    obs: AnchorObs,
}

/// One candidate rule with its bandit state.
struct Candidate {
    rule: Itemset,
    arm: ArmState,
    coverage: f64,
}

/// The reference implementation's precision-verification loop: keeps
/// sampling a candidate until, with confidence `1 − δ`, its precision is
/// resolved to be above or below the threshold (within `ε`), or the budget
/// runs out. Returns whether the candidate qualifies as an anchor.
fn verify_precision(
    cand: &mut Candidate,
    target: u8,
    sampler: &mut dyn RuleSampler,
    p: &AnchorParams,
) -> bool {
    let tau = p.precision_threshold;
    let mut drawn_total = 0u64;
    loop {
        let b = beta(1, cand.arm.n, p.delta);
        let mean = cand.arm.mean();
        let unresolved = (mean >= tau && kl_lower_bound(&cand.arm, b) < tau - p.epsilon)
            || (mean < tau && kl_upper_bound(&cand.arm, b) >= tau + p.epsilon);
        if !unresolved || drawn_total >= p.max_pulls {
            return mean >= tau;
        }
        let (n, pos) = sampler.draw(&cand.rule, p.batch_size);
        if n == 0 {
            return cand.arm.mean() >= tau;
        }
        cand.arm.n += n;
        cand.arm.successes += if target == 1 { pos } else { n - pos };
        drawn_total += n;
    }
}

impl AnchorExplainer {
    /// Creates an explainer with the given parameters.
    pub fn new(params: AnchorParams) -> AnchorExplainer {
        AnchorExplainer {
            params,
            obs: AnchorObs::default(),
        }
    }

    /// Wires the explainer's search metrics (`span.anchor.search`,
    /// `anchor.levels`, `anchor.candidates`, `anchor.verified`,
    /// `anchor.fallbacks`) to `registry`.
    pub fn with_obs(mut self, registry: &MetricsRegistry) -> AnchorExplainer {
        self.obs = AnchorObs {
            search: registry.span_histogram("anchor.search"),
            levels: registry.counter("anchor.levels"),
            candidates: registry.counter("anchor.candidates"),
            verified: registry.counter("anchor.verified"),
            fallbacks: registry.counter("anchor.fallbacks"),
        };
        self
    }

    /// Explains one prediction with fresh sampling (the sequential
    /// baseline). Draws a sampler seed from `rng` so runs are reproducible.
    pub fn explain(
        &self,
        ctx: &ExplainContext,
        clf: &impl Classifier,
        instance: &[Feature],
        rng: &mut impl Rng,
    ) -> AnchorExplanation {
        let target = clf.predict(instance);
        let inst_codes = ctx.discretizer().encode_instance(instance);
        let mut sampler = FreshRuleSampler::new(ctx, clf, rng.gen());
        self.explain_with_sampler(&inst_codes, target, &mut sampler)
    }

    /// Explains a prediction given its discretized codes and predicted
    /// class, drawing every sample through `sampler`. This is the entry
    /// point Shahin uses to inject materialized perturbations and cached
    /// invariants.
    pub fn explain_with_sampler(
        &self,
        inst_codes: &[u32],
        target: u8,
        sampler: &mut dyn RuleSampler,
    ) -> AnchorExplanation {
        // RAII: records into span.anchor.search on every exit path.
        let _search = self.obs.search.start();
        let p = &self.params;
        let items: Vec<Item> = inst_codes
            .iter()
            .enumerate()
            .map(|(a, &c)| Item::new(a, c))
            .collect();

        let mut beam: Vec<Candidate> = Vec::new();
        let mut best_fallback: Option<Candidate> = None;

        for level in 1..=p.max_rule_len {
            self.obs.levels.inc();
            // --- candidate generation
            let mut rules: Vec<Itemset> = if level == 1 {
                items.iter().map(|&it| Itemset::singleton(it)).collect()
            } else {
                let mut ext = Vec::new();
                for cand in &beam {
                    for &it in &items {
                        if cand.rule.items().iter().any(|r| r.attr == it.attr) {
                            continue;
                        }
                        ext.push(cand.rule.union(&Itemset::singleton(it)));
                    }
                }
                ext.sort();
                ext.dedup();
                ext
            };
            // Coverage pruning (invariant, served by the sampler so Shahin
            // can cache it).
            let mut candidates: Vec<Candidate> = Vec::with_capacity(rules.len());
            for rule in rules.drain(..) {
                let coverage = sampler.coverage(&rule);
                if coverage < p.min_coverage {
                    continue;
                }
                let (n, pos) = sampler.prior(&rule);
                let successes = if target == 1 { pos } else { n - pos };
                candidates.push(Candidate {
                    rule,
                    arm: ArmState { n, successes },
                    coverage,
                });
            }
            if candidates.is_empty() {
                break;
            }
            self.obs.candidates.add(candidates.len() as u64);

            // --- initial pulls
            for cand in &mut candidates {
                while (cand.arm.n as usize) < p.init_samples {
                    let want = p.init_samples - cand.arm.n as usize;
                    let (n, pos) = sampler.draw(&cand.rule, want);
                    if n == 0 {
                        break;
                    }
                    cand.arm.n += n;
                    cand.arm.successes += if target == 1 { pos } else { n - pos };
                }
            }

            // --- KL-LUCB top-B selection
            let mut arms: Vec<ArmState> = candidates.iter().map(|c| c.arm).collect();
            let top = kl_lucb(
                &mut arms,
                p.beam_width,
                p.epsilon,
                p.delta,
                p.batch_size,
                p.max_pulls,
                |idx, batch, arm| {
                    let (n, pos) = sampler.draw(&candidates[idx].rule, batch);
                    arm.n += n;
                    arm.successes += if target == 1 { pos } else { n - pos };
                    n as usize
                },
            );
            for (cand, arm) in candidates.iter_mut().zip(&arms) {
                cand.arm = *arm;
            }

            // --- verify the beam candidates against the precision
            // threshold, sampling further until the question is resolved
            // (the reference implementation's refinement loop).
            let mut verified: Vec<usize> = Vec::new();
            for &i in &top {
                if verify_precision(&mut candidates[i], target, sampler, p) {
                    verified.push(i);
                }
            }
            let mut valid: Vec<&Candidate> = verified.iter().map(|&i| &candidates[i]).collect();
            if !valid.is_empty() {
                // Highest coverage among valid anchors of this (minimal)
                // length.
                valid.sort_by(|a, b| {
                    b.coverage
                        .partial_cmp(&a.coverage)
                        .expect("finite coverage")
                });
                let chosen = valid[0];
                self.obs.verified.inc();
                return AnchorExplanation {
                    rule: chosen.rule.clone(),
                    precision: chosen.arm.mean(),
                    coverage: chosen.coverage,
                    anchored_class: target,
                };
            }

            // --- carry the beam to the next level
            let mut next_beam: Vec<Candidate> = Vec::with_capacity(top.len());
            for &i in &top {
                next_beam.push(Candidate {
                    rule: candidates[i].rule.clone(),
                    arm: candidates[i].arm,
                    coverage: candidates[i].coverage,
                });
            }
            // Track the best-precision candidate as a fallback.
            for cand in &next_beam {
                let better = best_fallback
                    .as_ref()
                    .is_none_or(|b| cand.arm.mean() > b.arm.mean());
                if better {
                    best_fallback = Some(Candidate {
                        rule: cand.rule.clone(),
                        arm: cand.arm,
                        coverage: cand.coverage,
                    });
                }
            }
            beam = next_beam;
        }

        // No rule cleared the threshold: return the best we saw (the
        // reference implementation likewise returns the best-effort anchor).
        self.obs.fallbacks.inc();
        match best_fallback {
            Some(c) => AnchorExplanation {
                rule: c.rule,
                precision: c.arm.mean(),
                coverage: c.coverage,
                anchored_class: target,
            },
            None => AnchorExplanation {
                rule: Itemset::new(vec![]),
                precision: 0.0,
                coverage: 1.0,
                anchored_class: target,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_model::{CountingClassifier, MajorityClass};
    use shahin_tabular::{Attribute, Column, Dataset, Schema};
    use std::sync::Arc;

    /// Classifier = indicator of attr `attr` having code `code`.
    struct KeyAttr {
        attr: usize,
        code: u32,
    }
    impl Classifier for KeyAttr {
        fn predict_proba(&self, instance: &[Feature]) -> f64 {
            f64::from(instance[self.attr].cat() == self.code)
        }
    }

    fn uniform_ctx(n_attrs: usize, card: u32, seed: u64) -> ExplainContext {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 600;
        let schema = Arc::new(Schema::new(
            (0..n_attrs)
                .map(|i| Attribute::categorical(format!("a{i}"), card))
                .collect(),
        ));
        let cols = (0..n_attrs)
            .map(|_| Column::Cat((0..n).map(|_| rng.gen_range(0..card)).collect()))
            .collect();
        let data = Dataset::new(schema, cols);
        ExplainContext::fit(&data, 400, &mut rng)
    }

    #[test]
    fn finds_single_predicate_anchor() {
        let ctx = uniform_ctx(4, 3, 0);
        let clf = KeyAttr { attr: 2, code: 1 };
        let anchor = AnchorExplainer::default();
        let mut rng = StdRng::seed_from_u64(1);
        let inst = vec![
            Feature::Cat(0),
            Feature::Cat(2),
            Feature::Cat(1),
            Feature::Cat(0),
        ];
        let e = anchor.explain(&ctx, &clf, &inst, &mut rng);
        assert_eq!(e.anchored_class, 1);
        assert_eq!(e.rule.len(), 1, "rule {}", e.rule);
        assert_eq!(e.rule.items()[0], Item::new(2, 1));
        assert!(e.precision >= 0.95, "precision {}", e.precision);
        assert!(
            (e.coverage - 1.0 / 3.0).abs() < 0.1,
            "coverage {}",
            e.coverage
        );
    }

    #[test]
    fn anchors_the_negative_class_too() {
        let ctx = uniform_ctx(3, 2, 2);
        let clf = KeyAttr { attr: 0, code: 1 };
        let anchor = AnchorExplainer::default();
        let mut rng = StdRng::seed_from_u64(3);
        // attr0 = 0 → predicted class 0; the anchor should be A0=0.
        let inst = vec![Feature::Cat(0), Feature::Cat(1), Feature::Cat(0)];
        let e = anchor.explain(&ctx, &clf, &inst, &mut rng);
        assert_eq!(e.anchored_class, 0);
        assert_eq!(e.rule.items()[0], Item::new(0, 0), "rule {}", e.rule);
        assert!(e.precision >= 0.95);
    }

    #[test]
    fn finds_conjunction_when_needed() {
        // Positive iff attr0 == 1 AND attr1 == 1.
        struct AndClf;
        impl Classifier for AndClf {
            fn predict_proba(&self, inst: &[Feature]) -> f64 {
                f64::from(inst[0].cat() == 1 && inst[1].cat() == 1)
            }
        }
        let ctx = uniform_ctx(3, 2, 4);
        let anchor = AnchorExplainer::default();
        let mut rng = StdRng::seed_from_u64(5);
        let inst = vec![Feature::Cat(1), Feature::Cat(1), Feature::Cat(0)];
        let e = anchor.explain(&ctx, &AndClf, &inst, &mut rng);
        assert_eq!(e.anchored_class, 1);
        assert_eq!(e.rule.len(), 2, "rule {}", e.rule);
        let attrs: Vec<u16> = e.rule.items().iter().map(|i| i.attr).collect();
        assert_eq!(attrs, vec![0, 1]);
        assert!(e.precision >= 0.9);
    }

    #[test]
    fn constant_classifier_anchors_trivially() {
        let ctx = uniform_ctx(3, 3, 6);
        let clf = MajorityClass::fit(&[1, 1, 1]);
        let anchor = AnchorExplainer::default();
        let mut rng = StdRng::seed_from_u64(7);
        let inst = vec![Feature::Cat(0), Feature::Cat(1), Feature::Cat(2)];
        let e = anchor.explain(&ctx, &clf, &inst, &mut rng);
        // Any single predicate has precision 1.0.
        assert_eq!(e.rule.len(), 1);
        assert!(e.precision >= 0.99);
    }

    #[test]
    fn bandit_uses_fewer_invocations_than_uniform_sampling() {
        // Adaptivity check: total invocations should be well below
        // candidates × max budget.
        let ctx = uniform_ctx(6, 3, 8);
        let clf = CountingClassifier::new(KeyAttr { attr: 0, code: 2 });
        let anchor = AnchorExplainer::default();
        let mut rng = StdRng::seed_from_u64(9);
        let inst = vec![Feature::Cat(2); 6];
        let e = anchor.explain(&ctx, &clf, &inst, &mut rng);
        assert_eq!(e.rule.items()[0], Item::new(0, 2));
        let worst_case = 6 * anchor.params.max_pulls;
        assert!(
            clf.invocations() < worst_case / 3,
            "bandit not adaptive: {} invocations",
            clf.invocations()
        );
    }

    #[test]
    fn obs_records_search_span_and_counters() {
        let reg = shahin_obs::MetricsRegistry::new();
        let ctx = uniform_ctx(4, 3, 0);
        let clf = KeyAttr { attr: 2, code: 1 };
        let anchor = AnchorExplainer::default().with_obs(&reg);
        let mut rng = StdRng::seed_from_u64(1);
        let inst = vec![
            Feature::Cat(0),
            Feature::Cat(2),
            Feature::Cat(1),
            Feature::Cat(0),
        ];
        anchor.explain(&ctx, &clf, &inst, &mut rng);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["span.anchor.search"].count, 1);
        assert!(snap.counter("anchor.levels") >= 1);
        assert!(snap.counter("anchor.candidates") >= 1);
        assert_eq!(
            snap.counter("anchor.verified") + snap.counter("anchor.fallbacks"),
            1
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let ctx = uniform_ctx(4, 3, 10);
        let clf = KeyAttr { attr: 1, code: 0 };
        let anchor = AnchorExplainer::default();
        let inst = vec![
            Feature::Cat(0),
            Feature::Cat(0),
            Feature::Cat(1),
            Feature::Cat(2),
        ];
        let e1 = anchor.explain(&ctx, &clf, &inst, &mut StdRng::seed_from_u64(11));
        let e2 = anchor.explain(&ctx, &clf, &inst, &mut StdRng::seed_from_u64(11));
        assert_eq!(e1.rule, e2.rule);
        assert_eq!(e1.precision, e2.precision);
    }
}
