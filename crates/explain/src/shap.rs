//! KernelSHAP: Shapley value estimation via kernel-weighted regression.
//!
//! Faithful to the reference pipeline (paper §3.3):
//!
//! 1. sample `M` random coalitions (feature subsets), with subset *sizes*
//!    drawn proportionally to the SHAP kernel `π(m, s)` of Eq. 1 — the
//!    importance-sampling optimization the paper highlights,
//! 2. materialize each coalition: present attributes keep the instance's
//!    (discretized) value, absent ones resample from the training
//!    distribution; invoke the black box on the result,
//! 3. fit an equality-constrained weighted least squares; the coefficients
//!    are the Shapley value estimates.
//!
//! The reuse-aware entry point accepts pooled pre-labeled coalitions and a
//! [`CoalitionSource`] that may satisfy sampled coalitions from a
//! materialized store (Algorithm 3 lines 7–13).

use rand::seq::SliceRandom;
use rand::Rng;

use shahin_fim::{Item, Itemset};
use shahin_linalg::{constrained_wls, shap_kernel_weight, Matrix};
use shahin_model::Classifier;
use shahin_tabular::Feature;

use crate::context::ExplainContext;
use crate::explanation::FeatureWeights;
use crate::perturb::{labeled_perturbation, sanitize_proba, ReuseStats};

/// KernelSHAP hyperparameters.
#[derive(Clone, Debug)]
pub struct ShapParams {
    /// Number of coalition samples `M`.
    pub n_samples: usize,
    /// Sample coalition sizes uniformly instead of proportionally to the
    /// SHAP kernel (Eq. 1). Only for ablation: the kernel-proportional
    /// scheme is both the reference behaviour and the optimization the
    /// paper highlights (§3.3).
    pub uniform_sizes: bool,
}

impl Default for ShapParams {
    fn default() -> Self {
        ShapParams {
            n_samples: 256,
            uniform_sizes: false,
        }
    }
}

/// A coalition that has already been materialized and labeled.
#[derive(Clone, Debug)]
pub struct CoalitionSample {
    /// Present attributes (sorted).
    pub coalition: Vec<u16>,
    /// Classifier probability on the materialized perturbation.
    pub proba: f64,
}

/// A source that may satisfy a sampled coalition from cached perturbations
/// instead of a fresh classifier invocation.
pub trait CoalitionSource {
    /// Returns a cached label for a perturbation where exactly the
    /// `coalition` attributes are frozen at the instance's codes, if one is
    /// available (and consumes it). `inst_codes` identifies the instance.
    fn fetch(&mut self, inst_codes: &[u32], coalition: &[u16]) -> Option<f64>;
}

/// The no-op source: never has anything cached.
pub struct NoSource;

impl CoalitionSource for NoSource {
    fn fetch(&mut self, _inst_codes: &[u32], _coalition: &[u16]) -> Option<f64> {
        None
    }
}

/// The KernelSHAP explainer.
#[derive(Clone, Debug, Default)]
pub struct KernelShapExplainer {
    /// Hyperparameters.
    pub params: ShapParams,
}

impl KernelShapExplainer {
    /// Creates an explainer with the given parameters.
    pub fn new(params: ShapParams) -> KernelShapExplainer {
        KernelShapExplainer { params }
    }

    /// Explains one prediction from scratch (the sequential baseline).
    /// `base` is the null prediction `E[f]` (see
    /// [`crate::perturb::estimate_base_value`]).
    pub fn explain(
        &self,
        ctx: &ExplainContext,
        clf: &impl Classifier,
        instance: &[Feature],
        base: f64,
        rng: &mut impl Rng,
    ) -> FeatureWeights {
        self.explain_with(ctx, clf, instance, base, Vec::new(), &mut NoSource, rng)
    }

    /// Explains one prediction, seeding the regression with `pooled`
    /// pre-labeled coalitions and attempting to satisfy sampled coalitions
    /// from `source` before invoking the classifier.
    #[allow(clippy::too_many_arguments)]
    pub fn explain_with(
        &self,
        ctx: &ExplainContext,
        clf: &impl Classifier,
        instance: &[Feature],
        base: f64,
        pooled: Vec<CoalitionSample>,
        source: &mut dyn CoalitionSource,
        rng: &mut impl Rng,
    ) -> FeatureWeights {
        self.explain_with_counted(ctx, clf, instance, base, pooled, source, rng)
            .0
    }

    /// [`KernelShapExplainer::explain_with`], additionally reporting the
    /// reuse accounting ([`ReuseStats`]): coalition rows served from
    /// `pooled`/`source` count as reused, classifier-labeled rows as
    /// fresh. Drivers turn this into the per-tuple provenance record.
    #[allow(clippy::too_many_arguments)]
    pub fn explain_with_counted(
        &self,
        ctx: &ExplainContext,
        clf: &impl Classifier,
        instance: &[Feature],
        base: f64,
        pooled: Vec<CoalitionSample>,
        source: &mut dyn CoalitionSource,
        rng: &mut impl Rng,
    ) -> (FeatureWeights, ReuseStats) {
        let m = ctx.n_attrs();
        assert_eq!(instance.len(), m, "instance arity mismatch");
        assert!(m >= 2, "KernelSHAP needs at least two attributes");
        let inst_codes = ctx.discretizer().encode_instance(instance);
        let mut stats = ReuseStats {
            invocations: 1, // the instance probe below
            ..ReuseStats::default()
        };
        let fx = sanitize_proba(clf.predict_proba(instance), &mut stats);

        // Cumulative distribution over coalition sizes 1..m−1 from Eq. 1
        // (size weights absorb the count of subsets of that size so sizes
        // are drawn by their *total* kernel mass, as the reference does).
        let size_cum = coalition_size_cdf(m);
        let n = self.params.n_samples.max(4);
        let mut samples: Vec<CoalitionSample> = Vec::with_capacity(n);
        for s in pooled {
            if samples.len() >= n {
                break;
            }
            debug_assert!(s.coalition.windows(2).all(|w| w[0] < w[1]));
            samples.push(s);
            stats.reused += 1;
        }

        let mut attrs: Vec<u16> = (0..m as u16).collect();
        while samples.len() < n {
            // Pick subset size via Eq. 1 (or uniformly, for the ablation),
            // then a uniform subset of it.
            let size = if self.params.uniform_sizes {
                rng.gen_range(1..m)
            } else {
                let u: f64 = rng.gen();
                size_cum.partition_point(|&c| c <= u).max(1).min(m - 1)
            };
            attrs.shuffle(rng);
            let mut coalition: Vec<u16> = attrs[..size].to_vec();
            coalition.sort_unstable();

            let proba = match source.fetch(&inst_codes, &coalition) {
                Some(p) => {
                    stats.reused += 1;
                    p
                }
                None => {
                    let frozen = Itemset::new(
                        coalition
                            .iter()
                            .map(|&a| Item::new(a as usize, inst_codes[a as usize]))
                            .collect(),
                    );
                    stats.fresh += 1;
                    stats.invocations += 1;
                    labeled_perturbation(ctx, clf, &frozen, rng).proba
                }
            };
            samples.push(CoalitionSample { coalition, proba });
        }

        // Regression: binary design (coalition membership). When sizes are
        // drawn by kernel mass, importance sampling makes the regression
        // weights uniform; the uniform-size ablation must instead weight
        // each row by its size's kernel mass to stay unbiased.
        let rows = samples.len();
        let mut z = Matrix::zeros(rows, m);
        let mut y = vec![0.0; rows];
        for (r, s) in samples.iter().enumerate() {
            let zrow = z.row_mut(r);
            for &a in &s.coalition {
                zrow[a as usize] = 1.0;
            }
            // Sanitizing here covers pooled, source-fetched, and fresh
            // labels uniformly (each bad value counted once).
            y[r] = sanitize_proba(s.proba, &mut stats);
        }
        let weights: Vec<f64> = if self.params.uniform_sizes {
            samples
                .iter()
                .map(|s| {
                    let size = s.coalition.len();
                    shap_kernel_weight(m, size) * shahin_linalg::kernel::binomial(m, size)
                })
                .collect()
        } else {
            vec![1.0; rows]
        };
        let phi = constrained_wls(&z, &y, &weights, base, fx);
        (
            FeatureWeights {
                weights: phi,
                intercept: base,
                local_prediction: fx,
            },
            stats,
        )
    }
}

/// Exclusive-prefix CDF over coalition sizes `1..m−1`, each size weighted by
/// `π(m, s) · C(m, s)` (total kernel mass of that size), with a trailing 1.0
/// sentinel. Index `i` of the CDF corresponds to size `i + 1`... shifted so
/// `partition_point` lands on the size directly.
fn coalition_size_cdf(m: usize) -> Vec<f64> {
    let masses: Vec<f64> = (1..m)
        .map(|s| shap_kernel_weight(m, s) * shahin_linalg::kernel::binomial(m, s))
        .collect();
    let total: f64 = masses.iter().sum();
    let mut cum = Vec::with_capacity(m);
    let mut acc = 0.0;
    // cum[k] is the exclusive prefix for size k+1; partition_point over
    // `cum[1..]`-style shifted values gives the size directly, so store
    // shifted: entry for size s is the cumulative mass of sizes < s.
    cum.push(0.0); // size index 0 is unused (sizes start at 1)
    for w in &masses {
        acc += w / total;
        cum.push(acc);
    }
    // partition_point(|c| c <= u) over this vector returns a value in
    // 1..=m−1 that we clamp; the leading 0.0 guarantees ≥ 1.
    cum.pop();
    cum
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_model::{CountingClassifier, MajorityClass};
    use shahin_tabular::{Attribute, Column, Dataset, Schema};
    use std::sync::Arc;

    fn uniform_cat_ctx(n_attrs: usize, card: u32, n_rows: usize, seed: u64) -> ExplainContext {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = Arc::new(Schema::new(
            (0..n_attrs)
                .map(|i| Attribute::categorical(format!("a{i}"), card))
                .collect(),
        ));
        let cols = (0..n_attrs)
            .map(|_| Column::Cat((0..n_rows).map(|_| rng.gen_range(0..card)).collect()))
            .collect();
        let data = Dataset::new(schema, cols);
        ExplainContext::fit(&data, 200, &mut rng)
    }

    /// Classifier = indicator of a single attribute's code.
    struct KeyAttr {
        attr: usize,
        code: u32,
    }
    impl Classifier for KeyAttr {
        fn predict_proba(&self, instance: &[Feature]) -> f64 {
            f64::from(instance[self.attr].cat() == self.code)
        }
    }

    #[test]
    fn efficiency_constraint_holds() {
        let ctx = uniform_cat_ctx(5, 3, 500, 0);
        let clf = KeyAttr { attr: 1, code: 2 };
        let shap = KernelShapExplainer::default();
        let mut rng = StdRng::seed_from_u64(1);
        let inst = vec![
            Feature::Cat(0),
            Feature::Cat(2),
            Feature::Cat(1),
            Feature::Cat(0),
            Feature::Cat(2),
        ];
        let base = 1.0 / 3.0;
        let e = shap.explain(&ctx, &clf, &inst, base, &mut rng);
        let total: f64 = e.weights.iter().sum();
        let fx = clf.predict_proba(&inst);
        assert!((total - (fx - base)).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn key_attribute_dominates() {
        let ctx = uniform_cat_ctx(4, 2, 600, 2);
        let clf = KeyAttr { attr: 3, code: 1 };
        let shap = KernelShapExplainer::new(ShapParams {
            n_samples: 400,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let inst = vec![
            Feature::Cat(0),
            Feature::Cat(0),
            Feature::Cat(1),
            Feature::Cat(1),
        ];
        let e = shap.explain(&ctx, &clf, &inst, 0.5, &mut rng);
        assert_eq!(e.ranking()[0], 3, "weights {:?}", e.weights);
        assert!(e.weights[3] > 0.2, "weights {:?}", e.weights);
    }

    #[test]
    fn invocation_count_is_one_plus_samples() {
        let ctx = uniform_cat_ctx(4, 3, 300, 4);
        let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        let shap = KernelShapExplainer::new(ShapParams {
            n_samples: 64,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let inst = vec![Feature::Cat(0); 4];
        shap.explain(&ctx, &clf, &inst, 0.5, &mut rng);
        assert_eq!(clf.invocations(), 65);
    }

    #[test]
    fn pooled_samples_reduce_invocations() {
        let ctx = uniform_cat_ctx(4, 3, 300, 6);
        let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        let shap = KernelShapExplainer::new(ShapParams {
            n_samples: 64,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(7);
        let pooled: Vec<CoalitionSample> = (0..30)
            .map(|i| CoalitionSample {
                coalition: vec![(i % 4) as u16],
                proba: 0.5,
            })
            .collect();
        let inst = vec![Feature::Cat(0); 4];
        shap.explain_with(&ctx, &clf, &inst, 0.5, pooled, &mut NoSource, &mut rng);
        // 1 (instance) + 34 fresh.
        assert_eq!(clf.invocations(), 35);
    }

    #[test]
    fn counted_variant_reports_exact_reuse_stats() {
        let ctx = uniform_cat_ctx(4, 3, 300, 6);
        let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        let shap = KernelShapExplainer::new(ShapParams {
            n_samples: 64,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(7);
        let pooled: Vec<CoalitionSample> = (0..30)
            .map(|i| CoalitionSample {
                coalition: vec![(i % 4) as u16],
                proba: 0.5,
            })
            .collect();
        let inst = vec![Feature::Cat(0); 4];
        let (_, stats) =
            shap.explain_with_counted(&ctx, &clf, &inst, 0.5, pooled, &mut NoSource, &mut rng);
        assert_eq!(stats.reused, 30);
        assert_eq!(stats.fresh, 34);
        assert_eq!(stats.tau(), 64); // the coalition budget
        assert_eq!(stats.invocations, 35);
        assert_eq!(stats.invocations, clf.invocations());
    }

    #[test]
    fn source_hits_skip_classifier() {
        struct AlwaysCached;
        impl CoalitionSource for AlwaysCached {
            fn fetch(&mut self, _c: &[u32], _s: &[u16]) -> Option<f64> {
                Some(0.5)
            }
        }
        let ctx = uniform_cat_ctx(4, 3, 300, 8);
        let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        let shap = KernelShapExplainer::new(ShapParams {
            n_samples: 64,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(9);
        let inst = vec![Feature::Cat(0); 4];
        shap.explain_with(
            &ctx,
            &clf,
            &inst,
            0.5,
            Vec::new(),
            &mut AlwaysCached,
            &mut rng,
        );
        // Only the instance's own prediction.
        assert_eq!(clf.invocations(), 1);
    }

    #[test]
    fn size_cdf_prefers_extremes() {
        // With the kernel of Eq. 1, sampled sizes should pile up at 1 and
        // m−1 rather than m/2.
        let m = 10;
        let cdf = coalition_size_cdf(m);
        let mut rng = StdRng::seed_from_u64(10);
        let mut hist = vec![0u32; m];
        for _ in 0..50_000 {
            let u: f64 = rng.gen();
            let size = cdf.partition_point(|&c| c <= u).max(1).min(m - 1);
            hist[size] += 1;
        }
        assert!(hist[1] > hist[5], "{hist:?}");
        assert!(hist[m - 1] > hist[5], "{hist:?}");
        assert_eq!(hist[0], 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let ctx = uniform_cat_ctx(4, 3, 300, 11);
        let clf = KeyAttr { attr: 0, code: 1 };
        let shap = KernelShapExplainer::default();
        let inst = vec![
            Feature::Cat(1),
            Feature::Cat(0),
            Feature::Cat(2),
            Feature::Cat(0),
        ];
        let e1 = shap.explain(&ctx, &clf, &inst, 0.3, &mut StdRng::seed_from_u64(12));
        let e2 = shap.explain(&ctx, &clf, &inst, 0.3, &mut StdRng::seed_from_u64(12));
        assert_eq!(e1, e2);
    }
}
