//! Explanation fidelity metrics (paper §4.2, "Explanation Quality").

/// Euclidean distance between two explanation weight vectors.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Feature indices ranked by decreasing absolute weight (ties broken by
/// index for determinism). This is the "importance ranking" the paper
/// compares with Kendall-τ.
pub fn rank_by_magnitude(weights: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..weights.len()).collect();
    idx.sort_by(|&i, &j| {
        weights[j]
            .abs()
            .partial_cmp(&weights[i].abs())
            .expect("no NaN weights")
            .then(i.cmp(&j))
    });
    idx
}

/// Kendall rank correlation coefficient (τ-a) between the *rankings induced
/// by* two weight vectors: +1 for identical orderings, −1 for reversed.
///
/// O(n²) pair counting — explanation vectors have tens of entries.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    // Positions of each feature in each ranking.
    let pos = |ranking: Vec<usize>| {
        let mut p = vec![0usize; n];
        for (rank, &feat) in ranking.iter().enumerate() {
            p[feat] = rank;
        }
        p
    };
    let pa = pos(rank_by_magnitude(a));
    let pb = pos(rank_by_magnitude(b));
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = pa[i] as i64 - pa[j] as i64;
            let db = pb[i] as i64 - pb[j] as i64;
            if da * db > 0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let total = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn ranking_by_magnitude() {
        assert_eq!(rank_by_magnitude(&[0.1, -0.9, 0.5]), vec![1, 2, 0]);
        // Ties break by index.
        assert_eq!(rank_by_magnitude(&[0.5, -0.5]), vec![0, 1]);
    }

    #[test]
    fn tau_identical_is_one() {
        let w = [0.3, -0.7, 0.1, 0.9];
        assert_eq!(kendall_tau(&w, &w), 1.0);
        // Scaling preserves the ranking.
        let scaled: Vec<f64> = w.iter().map(|x| x * 2.0).collect();
        assert_eq!(kendall_tau(&w, &scaled), 1.0);
    }

    #[test]
    fn tau_reversed_is_minus_one() {
        let a = [4.0, 3.0, 2.0, 1.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(kendall_tau(&a, &b), -1.0);
    }

    #[test]
    fn tau_single_swap() {
        // Rankings [0,1,2] vs [1,0,2]: one discordant pair of three.
        let a = [3.0, 2.0, 1.0];
        let b = [2.0, 3.0, 1.0];
        let tau = kendall_tau(&a, &b);
        assert!((tau - 1.0 / 3.0).abs() < 1e-12, "{tau}");
    }

    #[test]
    fn tau_degenerate_lengths() {
        assert_eq!(kendall_tau(&[], &[]), 1.0);
        assert_eq!(kendall_tau(&[1.0], &[5.0]), 1.0);
    }

    #[test]
    fn sign_does_not_matter_only_magnitude() {
        // |w| identical => same ranking even with flipped signs.
        let a = [0.9, -0.5, 0.1];
        let b = [-0.9, 0.5, -0.1];
        assert_eq!(kendall_tau(&a, &b), 1.0);
    }
}
