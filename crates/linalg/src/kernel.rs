//! Proximity and coalition kernels.

/// LIME's exponential proximity kernel:
/// `exp(−d² / width²)`, where `d` is the distance between the instance and
/// a perturbation in the interpretable (binary) space and `width` is the
/// kernel width (LIME's default is `sqrt(n_features) · 0.75`).
#[inline]
pub fn exponential_kernel(distance: f64, width: f64) -> f64 {
    assert!(width > 0.0, "kernel width must be positive");
    (-(distance * distance) / (width * width)).exp()
}

/// The default LIME kernel width for `m` interpretable features.
#[inline]
pub fn default_kernel_width(m: usize) -> f64 {
    (m as f64).sqrt() * 0.75
}

/// The SHAP kernel weight `π(m, s)` of Eq. 1 of the paper:
///
/// ```text
/// π(m, s) = (m − 1) / (C(m, s) · s · (m − s))
/// ```
///
/// for coalition size `s` of `m` features. The weight diverges at `s = 0`
/// and `s = m`; those coalitions are handled by the efficiency constraints,
/// so this function returns 0 for them (the reference implementation
/// likewise excludes them from sampling).
pub fn shap_kernel_weight(m: usize, s: usize) -> f64 {
    if s == 0 || s >= m {
        return 0.0;
    }
    let num = (m - 1) as f64;
    let denom = binomial(m, s) * s as f64 * (m - s) as f64;
    num / denom
}

/// `C(n, k)` as f64, computed multiplicatively to avoid overflow for the
/// attribute counts seen in tabular data.
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_kernel_decreases_with_distance() {
        let w = 1.0;
        assert_eq!(exponential_kernel(0.0, w), 1.0);
        let k1 = exponential_kernel(0.5, w);
        let k2 = exponential_kernel(1.0, w);
        assert!(k1 > k2 && k2 > 0.0);
    }

    #[test]
    fn default_width_matches_lime() {
        assert!((default_kernel_width(4) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(3, 7), 0.0);
        assert!((binomial(50, 25) - 1.2641060643775244e14).abs() / 1.26e14 < 1e-9);
    }

    #[test]
    fn shap_kernel_is_symmetric_and_u_shaped() {
        let m = 10;
        for s in 1..m {
            let w = shap_kernel_weight(m, s);
            assert!(w > 0.0);
            assert!((w - shap_kernel_weight(m, m - s)).abs() < 1e-15, "s={s}");
        }
        // Extremes are heavier than the middle (paper: "generating feature
        // subsets that are either very small or very large is preferable").
        assert!(shap_kernel_weight(m, 1) > shap_kernel_weight(m, 5));
        assert!(shap_kernel_weight(m, 9) > shap_kernel_weight(m, 4));
    }

    #[test]
    fn shap_kernel_boundaries_are_zero() {
        assert_eq!(shap_kernel_weight(5, 0), 0.0);
        assert_eq!(shap_kernel_weight(5, 5), 0.0);
        assert_eq!(shap_kernel_weight(5, 6), 0.0);
    }

    #[test]
    fn shap_kernel_known_value() {
        // m=4, s=2: (4-1) / (6 * 2 * 2) = 0.125
        assert!((shap_kernel_weight(4, 2) - 0.125).abs() < 1e-12);
    }
}
