//! Symmetric positive (semi-)definite linear solves.

use crate::matrix::Matrix;

/// Solves `A x = b` for symmetric positive (semi-)definite `A` via LDLᵀ
/// factorization, adding a tiny diagonal jitter when a pivot collapses
/// (rank-deficient Gram matrices are routine when perturbation samples
/// repeat rows).
///
/// Panics if `A` is not square or `b` has the wrong length.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "matrix must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");
    if n == 0 {
        return Vec::new();
    }

    // Scale-aware jitter threshold.
    let max_diag = (0..n).map(|i| a[(i, i)].abs()).fold(0.0f64, f64::max);
    let eps = (max_diag.max(1.0)) * 1e-12;

    // LDLᵀ: A = L D Lᵀ with unit lower-triangular L.
    let mut l = Matrix::zeros(n, n);
    let mut d = vec![0.0; n];
    for j in 0..n {
        let mut dj = a[(j, j)];
        for k in 0..j {
            dj -= l[(j, k)] * l[(j, k)] * d[k];
        }
        if dj.abs() < eps {
            dj = eps; // jitter a collapsed pivot
        }
        d[j] = dj;
        l[(j, j)] = 1.0;
        for i in (j + 1)..n {
            let mut v = a[(i, j)];
            for k in 0..j {
                v -= l[(i, k)] * l[(j, k)] * d[k];
            }
            l[(i, j)] = v / dj;
        }
    }

    // Forward solve L z = b.
    let mut z = b.to_vec();
    for i in 0..n {
        for k in 0..i {
            z[i] -= l[(i, k)] * z[k];
        }
    }
    // Diagonal solve D w = z.
    for i in 0..n {
        z[i] /= d[i];
    }
    // Back solve Lᵀ x = w.
    for i in (0..n).rev() {
        for k in (i + 1)..n {
            z[i] -= l[(k, i)] * z[k];
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn solves_identity() {
        let a = Matrix::identity(3);
        assert_close(&solve_spd(&a, &[1.0, 2.0, 3.0]), &[1.0, 2.0, 3.0], 1e-12);
    }

    #[test]
    fn solves_known_spd_system() {
        // A = [[4, 2], [2, 3]], x = [1, -1] => b = [2, -1]
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        assert_close(&solve_spd(&a, &[2.0, -1.0]), &[1.0, -1.0], 1e-10);
    }

    #[test]
    fn residual_is_tiny_for_random_spd() {
        // Build SPD as Gram of a random-ish matrix.
        let m = Matrix::from_rows(
            4,
            3,
            vec![
                1.0, 2.0, 0.5, -1.0, 0.3, 2.2, 0.0, 1.5, -0.7, 2.0, -0.2, 1.1,
            ],
        );
        let a = m.weighted_gram(&[1.0; 4]);
        let x_true = [0.3, -1.2, 2.0];
        let b = a.mul_vec(&x_true);
        let x = solve_spd(&a, &b);
        assert_close(&x, &x_true, 1e-8);
    }

    #[test]
    fn singular_system_does_not_blow_up() {
        // Rank-1 Gram matrix.
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let x = solve_spd(&a, &[2.0, 2.0]);
        assert!(x.iter().all(|v| v.is_finite()), "{x:?}");
        // Solution should still satisfy A x ≈ b in the least-squares sense.
        let r = a.mul_vec(&x);
        assert_close(&r, &[2.0, 2.0], 1e-3);
    }

    #[test]
    fn empty_system() {
        let a = Matrix::zeros(0, 0);
        assert!(solve_spd(&a, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        solve_spd(&a, &[0.0, 0.0]);
    }
}
