//! Weighted ridge regression — LIME's interpretable surrogate.

use crate::matrix::Matrix;
use crate::solve::solve_spd;

/// A fitted ridge model: `ŷ = intercept + x · coefficients`.
#[derive(Clone, Debug, PartialEq)]
pub struct RidgeFit {
    /// Per-feature coefficients (the explanation weights).
    pub coefficients: Vec<f64>,
    /// Unpenalized intercept.
    pub intercept: f64,
}

impl RidgeFit {
    /// Predicts the target for a feature row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x)
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }
}

/// Fits weighted ridge regression by solving the normal equations
/// `(Xᵀ W X + α I) β = Xᵀ W y` on *weighted-mean-centered* data, which
/// leaves the intercept unpenalized (matching scikit-learn's `Ridge`, which
/// LIME uses).
///
/// `alpha` is the L2 penalty (LIME's default is 1.0); `weights` are the
/// proximity-kernel sample weights.
pub fn ridge(x: &Matrix, y: &[f64], weights: &[f64], alpha: f64) -> RidgeFit {
    let n = x.rows();
    let p = x.cols();
    assert_eq!(y.len(), n, "target length mismatch");
    assert_eq!(weights.len(), n, "weight length mismatch");
    assert!(alpha >= 0.0, "alpha must be non-negative");
    assert!(n > 0, "need at least one sample");
    let w_sum: f64 = weights.iter().sum();
    assert!(w_sum > 0.0, "weights must not all be zero");

    // Weighted means.
    let mut x_mean = vec![0.0; p];
    let mut y_mean = 0.0;
    for r in 0..n {
        let w = weights[r];
        y_mean += w * y[r];
        for (m, &v) in x_mean.iter_mut().zip(x.row(r)) {
            *m += w * v;
        }
    }
    y_mean /= w_sum;
    for m in &mut x_mean {
        *m /= w_sum;
    }

    // Centered design and target.
    let mut xc = Matrix::zeros(n, p);
    let mut yc = vec![0.0; n];
    for r in 0..n {
        yc[r] = y[r] - y_mean;
        let row = xc.row_mut(r);
        for (j, &v) in x.row(r).iter().enumerate() {
            row[j] = v - x_mean[j];
        }
    }

    let mut gram = xc.weighted_gram(weights);
    for j in 0..p {
        gram[(j, j)] += alpha;
    }
    let rhs = xc.weighted_tx_vec(weights, &yc);
    let coefficients = solve_spd(&gram, &rhs);
    let intercept = y_mean
        - coefficients
            .iter()
            .zip(&x_mean)
            .map(|(c, m)| c * m)
            .sum::<f64>();
    RidgeFit {
        coefficients,
        intercept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = rows[0].len();
        Matrix::from_rows(r, c, rows.iter().flat_map(|r| r.iter().copied()).collect())
    }

    #[test]
    fn recovers_exact_linear_relation_at_zero_alpha() {
        // y = 3 + 2*x0 - x1
        let x = design(&[
            &[0.0, 0.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[2.0, 1.0],
        ]);
        let y: Vec<f64> = (0..x.rows())
            .map(|r| 3.0 + 2.0 * x.row(r)[0] - x.row(r)[1])
            .collect();
        let fit = ridge(&x, &y, &[1.0; 5], 0.0);
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-8, "{fit:?}");
        assert!((fit.coefficients[1] + 1.0).abs() < 1e-8, "{fit:?}");
        assert!((fit.intercept - 3.0).abs() < 1e-8, "{fit:?}");
    }

    #[test]
    fn alpha_shrinks_coefficients() {
        let x = design(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = vec![0.0, 2.0, 4.0, 6.0];
        let w = vec![1.0; 4];
        let free = ridge(&x, &y, &w, 0.0);
        let shrunk = ridge(&x, &y, &w, 10.0);
        assert!((free.coefficients[0] - 2.0).abs() < 1e-8);
        assert!(shrunk.coefficients[0] < free.coefficients[0]);
        assert!(shrunk.coefficients[0] > 0.0);
    }

    #[test]
    fn weights_focus_the_fit() {
        // Two regimes; weights select the first.
        let x = design(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let y = vec![0.0, 1.0, 100.0, 90.0];
        let fit = ridge(&x, &y, &[1.0, 1.0, 1e-9, 1e-9], 1e-6);
        assert!((fit.coefficients[0] - 1.0).abs() < 1e-3, "{fit:?}");
        assert!(fit.intercept.abs() < 1e-3, "{fit:?}");
    }

    #[test]
    fn intercept_not_penalized() {
        // Constant target far from zero: coefficients 0, intercept = mean.
        let x = design(&[&[1.0], &[2.0], &[3.0]]);
        let y = vec![100.0, 100.0, 100.0];
        let fit = ridge(&x, &y, &[1.0; 3], 5.0);
        assert!(fit.coefficients[0].abs() < 1e-8, "{fit:?}");
        assert!((fit.intercept - 100.0).abs() < 1e-8, "{fit:?}");
    }

    #[test]
    fn predict_roundtrip() {
        let x = design(&[&[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0], &[0.5, 0.5]]);
        let y = vec![1.0, 2.0, 3.0, 2.0];
        let fit = ridge(&x, &y, &[1.0; 4], 0.01);
        for (r, &target) in y.iter().enumerate() {
            let p = fit.predict(x.row(r));
            assert!(
                (p - target).abs() < 1.0,
                "prediction way off: {p} vs {target}"
            );
        }
    }

    #[test]
    fn duplicate_rows_are_fine() {
        let x = design(&[&[1.0], &[1.0], &[1.0]]);
        let y = vec![2.0, 2.0, 2.0];
        let fit = ridge(&x, &y, &[1.0; 3], 1.0);
        assert!(fit.coefficients[0].is_finite());
        assert!((fit.predict(&[1.0]) - 2.0).abs() < 1e-6);
    }
}
