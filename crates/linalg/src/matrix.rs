//! Row-major dense matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A row-major dense `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// A zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row-major data.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `Aᵀ · diag(w) · A`, the weighted Gram matrix (`cols × cols`).
    ///
    /// This is the only expensive product the normal equations need;
    /// computed symmetrically (upper triangle mirrored).
    pub fn weighted_gram(&self, weights: &[f64]) -> Matrix {
        assert_eq!(weights.len(), self.rows, "one weight per row");
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for (r, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let row = self.row(r);
            for i in 0..n {
                let wi = w * row[i];
                if wi == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += wi * row[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `Aᵀ · diag(w) · y` (`cols`-vector).
    pub fn weighted_tx_vec(&self, weights: &[f64], y: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.rows, "one weight per row");
        assert_eq!(y.len(), self.rows, "one target per row");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let wy = weights[r] * y[r];
            if wy == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += wy * a;
            }
        }
        out
    }

    /// `A · x` (`rows`-vector).
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let m = Matrix::identity(3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn weighted_gram_matches_manual() {
        // A = [[1, 2], [3, 4]], w = [1, 2]
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let g = a.weighted_gram(&[1.0, 2.0]);
        // AᵀWA = [[1+18, 2+24], [2+24, 4+32]]
        assert_eq!(g[(0, 0)], 19.0);
        assert_eq!(g[(0, 1)], 26.0);
        assert_eq!(g[(1, 0)], 26.0);
        assert_eq!(g[(1, 1)], 36.0);
    }

    #[test]
    fn weighted_tx_vec_matches_manual() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let v = a.weighted_tx_vec(&[1.0, 2.0], &[5.0, 6.0]);
        // AᵀW y = [5 + 36, 10 + 48]
        assert_eq!(v, vec![41.0, 58.0]);
    }

    #[test]
    fn zero_weights_drop_rows() {
        let a = Matrix::from_rows(2, 1, vec![3.0, 7.0]);
        let g = a.weighted_gram(&[0.0, 1.0]);
        assert_eq!(g[(0, 0)], 49.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_rejected() {
        Matrix::from_rows(2, 2, vec![1.0]);
    }
}
