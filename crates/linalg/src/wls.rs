//! Equality-constrained weighted least squares — KernelSHAP's surrogate.

use crate::matrix::Matrix;
use crate::solve::solve_spd;

/// Solves KernelSHAP's regression: given binary coalition rows `z`
/// (`n × m`), model outputs `y`, kernel `weights`, the base value
/// `base = E[f]` and the full prediction `fx = f(x)`, finds Shapley value
/// estimates `φ` minimizing
///
/// ```text
/// Σ_i w_i (y_i − base − Σ_j z_ij φ_j)²
/// subject to  Σ_j φ_j = fx − base          (efficiency)
/// ```
///
/// The constraint is eliminated analytically by substituting
/// `φ_m = (fx − base) − Σ_{j<m} φ_j`, exactly as the reference KernelSHAP
/// implementation does, leaving an unconstrained `(m−1)`-dimensional WLS
/// problem solved by the normal equations (with LDLᵀ + jitter).
pub fn constrained_wls(z: &Matrix, y: &[f64], weights: &[f64], base: f64, fx: f64) -> Vec<f64> {
    let n = z.rows();
    let m = z.cols();
    assert_eq!(y.len(), n, "target length mismatch");
    assert_eq!(weights.len(), n, "weight length mismatch");
    assert!(m >= 1, "need at least one feature");
    let total = fx - base;
    if m == 1 {
        // The constraint fully determines the single value.
        return vec![total];
    }

    // Reduced design: columns j<m become (z_j − z_m); target becomes
    // y − base − z_m · total.
    let mut xr = Matrix::zeros(n, m - 1);
    let mut yr = vec![0.0; n];
    for r in 0..n {
        let zrow = z.row(r);
        let zm = zrow[m - 1];
        yr[r] = y[r] - base - zm * total;
        let dst = xr.row_mut(r);
        for j in 0..m - 1 {
            dst[j] = zrow[j] - zm;
        }
    }
    let mut gram = xr.weighted_gram(weights);
    // Tiny ridge jitter for degenerate coalition samples.
    let jitter = 1e-10;
    for j in 0..m - 1 {
        gram[(j, j)] += jitter;
    }
    let rhs = xr.weighted_tx_vec(weights, &yr);
    let mut phi = solve_spd(&gram, &rhs);
    let sum_head: f64 = phi.iter().sum();
    phi.push(total - sum_head);
    phi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coalition_matrix(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(
            rows.len(),
            rows[0].len(),
            rows.iter().flat_map(|r| r.iter().copied()).collect(),
        )
    }

    #[test]
    fn efficiency_constraint_always_holds() {
        let z = coalition_matrix(&[
            &[1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0],
            &[0.0, 0.0, 1.0],
            &[1.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
        ]);
        let y = vec![1.0, 2.0, 0.5, 3.3, 1.2, 2.9];
        let w = vec![1.0, 0.5, 2.0, 1.0, 1.0, 0.1];
        let phi = constrained_wls(&z, &y, &w, 0.4, 3.7);
        let s: f64 = phi.iter().sum();
        assert!((s - (3.7 - 0.4)).abs() < 1e-9, "sum {s}");
    }

    #[test]
    fn recovers_exactly_additive_model() {
        // f(S) = base + Σ_{j∈S} v_j with v = [2, -1, 0.5] — the Shapley
        // values of an additive game are the v_j themselves.
        let v = [2.0, -1.0, 0.5];
        let base = 1.0;
        let all_coalitions: Vec<Vec<f64>> =
            (1..7u32) // skip empty and full
                .map(|mask| (0..3).map(|j| f64::from(mask >> j & 1)).collect())
                .collect();
        let rows: Vec<&[f64]> = all_coalitions.iter().map(|r| r.as_slice()).collect();
        let z = coalition_matrix(&rows);
        let y: Vec<f64> = all_coalitions
            .iter()
            .map(|row| base + row.iter().zip(&v).map(|(z, v)| z * v).sum::<f64>())
            .collect();
        let fx = base + v.iter().sum::<f64>();
        let phi = constrained_wls(&z, &y, &[1.0; 6], base, fx);
        for (p, expect) in phi.iter().zip(&v) {
            assert!((p - expect).abs() < 1e-6, "{phi:?}");
        }
    }

    #[test]
    fn single_feature_gets_full_credit() {
        let z = coalition_matrix(&[&[1.0], &[0.0]]);
        let phi = constrained_wls(&z, &[5.0, 2.0], &[1.0, 1.0], 2.0, 5.0);
        assert_eq!(phi, vec![3.0]);
    }

    #[test]
    fn weights_change_the_solution() {
        let z = coalition_matrix(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let y = vec![1.0, 3.0, 3.5];
        let a = constrained_wls(&z, &y, &[1.0, 1.0, 1.0], 0.0, 3.5);
        let b = constrained_wls(&z, &y, &[100.0, 1.0, 1.0], 0.0, 3.5);
        assert!((a[0] - b[0]).abs() > 1e-6, "weights had no effect");
        // Both still satisfy efficiency.
        assert!((a.iter().sum::<f64>() - 3.5).abs() < 1e-9);
        assert!((b.iter().sum::<f64>() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_duplicate_rows_stay_finite() {
        let z = coalition_matrix(&[&[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0]]);
        let phi = constrained_wls(&z, &[1.0, 1.0, 1.0], &[1.0; 3], 0.0, 2.0);
        assert!(phi.iter().all(|p| p.is_finite()), "{phi:?}");
        assert!((phi.iter().sum::<f64>() - 2.0).abs() < 1e-6);
    }
}
