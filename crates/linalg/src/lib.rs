//! Small dense linear algebra for the Shahin explainers.
//!
//! The surrogate models of LIME and KernelSHAP are tiny (one coefficient per
//! attribute, tens of attributes) but are fit thousands of times per batch,
//! so this crate provides exactly what they need and nothing more:
//!
//! * [`Matrix`] — row-major dense matrices with the handful of products the
//!   normal equations require,
//! * [`solve_spd`] — LDLᵀ solve for symmetric positive (semi-)definite
//!   systems with ridge jitter,
//! * [`ridge()`] — (weighted) ridge regression with an unpenalized intercept,
//!   LIME's surrogate,
//! * [`constrained_wls`] — equality-constrained weighted least squares,
//!   KernelSHAP's surrogate (the efficiency constraint
//!   `Σ φ_j = f(x) − E[f]` is eliminated analytically),
//! * [`kernel`] — LIME's exponential kernel and the SHAP kernel (Eq. 1 of
//!   the paper),
//! * [`fidelity`] — Euclidean-distance and Kendall-τ explanation fidelity
//!   metrics (§4.2 "Explanation Quality").

pub mod fidelity;
pub mod kernel;
pub mod matrix;
pub mod ridge;
pub mod solve;
pub mod wls;

pub use fidelity::{euclidean_distance, kendall_tau, rank_by_magnitude};
pub use kernel::{binomial, default_kernel_width, exponential_kernel, shap_kernel_weight};
pub use matrix::Matrix;
pub use ridge::{ridge, RidgeFit};
pub use solve::solve_spd;
pub use wls::constrained_wls;
