//! FP-Growth frequent itemset mining.
//!
//! The paper notes that "one could achieve higher speedups through smarter
//! frequent itemset computation" (§4.2). FP-Growth is the classic smarter
//! algorithm: it compresses the transactions into a prefix tree (the
//! FP-tree) ordered by item frequency and mines it recursively by
//! conditional projection, avoiding Apriori's candidate generation and its
//! repeated full scans.
//!
//! [`fpgrowth`] produces exactly the same frequent itemsets and counts as
//! [`crate::apriori`] under the same `min_support` / `max_len` /
//! `max_itemsets` parameters (property-tested in `tests/`), minus the
//! negative border, which the streaming variant still obtains from Apriori.

use std::collections::HashMap;

use shahin_tabular::DiscreteTable;

use crate::apriori::AprioriParams;
use crate::item::{Item, Itemset};

/// One node of the FP-tree.
#[derive(Debug)]
struct Node {
    /// Packed item key (see [`Item::key`]).
    key: u64,
    count: u64,
    parent: u32,
    /// First child; siblings chain through `next_sibling`.
    first_child: u32,
    next_sibling: u32,
    /// Next node carrying the same item (header-table chain).
    next_same_item: u32,
}

const NIL: u32 = u32::MAX;

/// An FP-tree with its header table.
struct FpTree {
    nodes: Vec<Node>,
    /// item key → (head of node chain, total count in this tree).
    header: HashMap<u64, (u32, u64)>,
}

impl FpTree {
    fn new() -> FpTree {
        FpTree {
            nodes: vec![Node {
                key: u64::MAX,
                count: 0,
                parent: NIL,
                first_child: NIL,
                next_sibling: NIL,
                next_same_item: NIL,
            }],
            header: HashMap::new(),
        }
    }

    /// Inserts a transaction (items already filtered to frequent ones and
    /// sorted by descending frequency) with multiplicity `count`.
    fn insert(&mut self, items: &[u64], count: u64) {
        let mut cur = 0u32;
        for &key in items {
            // Find a child of `cur` carrying `key`.
            let mut child = self.nodes[cur as usize].first_child;
            while child != NIL && self.nodes[child as usize].key != key {
                child = self.nodes[child as usize].next_sibling;
            }
            if child == NIL {
                let idx = self.nodes.len() as u32;
                let head = self.header.entry(key).or_insert((NIL, 0));
                self.nodes.push(Node {
                    key,
                    count: 0,
                    parent: cur,
                    first_child: NIL,
                    next_sibling: self.nodes[cur as usize].first_child,
                    next_same_item: head.0,
                });
                head.0 = idx;
                self.nodes[cur as usize].first_child = idx;
                child = idx;
            }
            self.nodes[child as usize].count += count;
            self.header
                .get_mut(&key)
                .expect("header entry created on insert")
                .1 += count;
            cur = child;
        }
    }

    /// The path from a node's parent up to the root, as item keys.
    fn prefix_path(&self, mut node: u32) -> Vec<u64> {
        let mut path = Vec::new();
        node = self.nodes[node as usize].parent;
        while node != 0 && node != NIL {
            path.push(self.nodes[node as usize].key);
            node = self.nodes[node as usize].parent;
        }
        path
    }
}

/// Mines frequent itemsets with FP-Growth. Returns `(itemset, count)`
/// pairs in the same global order as [`crate::apriori`] (support
/// descending, longer first on ties, then lexicographic), truncated to
/// `params.max_itemsets`.
pub fn fpgrowth(table: &DiscreteTable, params: &AprioriParams) -> Vec<(Itemset, u64)> {
    let n = table.n_rows();
    assert!(n > 0, "cannot mine an empty table");
    assert!(
        (0.0..=1.0).contains(&params.min_support),
        "min_support must be in [0, 1]"
    );
    let min_count = ((params.min_support * n as f64).ceil() as u64).max(1);
    if params.max_len == 0 {
        return Vec::new();
    }

    // Pass 1: item frequencies.
    let mut freq: HashMap<u64, u64> = HashMap::new();
    for attr in 0..table.n_attrs() {
        for &code in table.column(attr) {
            *freq.entry(Item::new(attr, code).key()).or_insert(0) += 1;
        }
    }
    freq.retain(|_, c| *c >= min_count);

    // Pass 2: build the FP-tree with items sorted by descending frequency
    // (key ascending as the deterministic tie-break).
    let mut tree = FpTree::new();
    let mut txn: Vec<u64> = Vec::with_capacity(table.n_attrs());
    for row in 0..n {
        txn.clear();
        for attr in 0..table.n_attrs() {
            let key = Item::new(attr, table.code(row, attr)).key();
            if freq.contains_key(&key) {
                txn.push(key);
            }
        }
        txn.sort_by(|a, b| freq[b].cmp(&freq[a]).then(a.cmp(b)));
        tree.insert(&txn, 1);
    }

    // Recursive mining.
    let mut out: Vec<(Itemset, u64)> = Vec::new();
    let mut suffix: Vec<u64> = Vec::new();
    mine(&tree, min_count, params.max_len, &mut suffix, &mut out);

    out.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(b.0.len().cmp(&a.0.len()))
            .then(a.0.cmp(&b.0))
    });
    if out.len() > params.max_itemsets {
        out.truncate(params.max_itemsets);
    }
    out
}

fn item_from_key(key: u64) -> Item {
    Item {
        attr: (key >> 32) as u16,
        code: key as u32,
    }
}

fn mine(
    tree: &FpTree,
    min_count: u64,
    max_len: usize,
    suffix: &mut Vec<u64>,
    out: &mut Vec<(Itemset, u64)>,
) {
    if suffix.len() >= max_len {
        return;
    }
    // Process header items from least frequent upward (order does not
    // affect the result set; every frequent item heads one projection).
    let mut items: Vec<(u64, u64)> = tree
        .header
        .iter()
        .filter(|(_, (_, c))| *c >= min_count)
        .map(|(&k, &(_, c))| (k, c))
        .collect();
    items.sort_by_key(|&(k, c)| (c, k));

    for (key, count) in items {
        suffix.push(key);
        let itemset = Itemset::new(suffix.iter().map(|&k| item_from_key(k)).collect());
        // Two codes of one attribute can never co-occur in a transaction,
        // and the projection machinery guarantees we never combine them —
        // but the same attribute can appear in suffix twice only via a bug.
        debug_assert_eq!(itemset.len(), suffix.len());
        out.push((itemset, count));

        if suffix.len() < max_len {
            // Conditional pattern base → conditional FP-tree.
            let mut paths: Vec<(Vec<u64>, u64)> = Vec::new();
            let mut node = tree.header[&key].0;
            while node != NIL {
                let c = tree.nodes[node as usize].count;
                let path = tree.prefix_path(node);
                if !path.is_empty() {
                    paths.push((path, c));
                }
                node = tree.nodes[node as usize].next_same_item;
            }
            if !paths.is_empty() {
                // Frequencies within the conditional base.
                let mut cond_freq: HashMap<u64, u64> = HashMap::new();
                for (path, c) in &paths {
                    for &k in path {
                        *cond_freq.entry(k).or_insert(0) += c;
                    }
                }
                cond_freq.retain(|_, c| *c >= min_count);
                if !cond_freq.is_empty() {
                    let mut cond_tree = FpTree::new();
                    let mut txn: Vec<u64> = Vec::new();
                    for (path, c) in &paths {
                        txn.clear();
                        txn.extend(path.iter().filter(|k| cond_freq.contains_key(k)));
                        txn.sort_by(|a, b| cond_freq[b].cmp(&cond_freq[a]).then(a.cmp(b)));
                        cond_tree.insert(&txn, *c);
                    }
                    mine(&cond_tree, min_count, max_len, suffix, out);
                }
            }
        }
        suffix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;

    fn table() -> DiscreteTable {
        DiscreteTable::new(vec![
            vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 2],
            vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1],
            vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9],
        ])
    }

    fn params(sup: f64, len: usize) -> AprioriParams {
        AprioriParams {
            min_support: sup,
            max_len: len,
            max_itemsets: usize::MAX,
        }
    }

    #[test]
    fn matches_apriori_on_fixed_table() {
        for sup in [0.2, 0.3, 0.5, 0.8] {
            for len in [1, 2, 3] {
                let p = params(sup, len);
                let fp = fpgrowth(&table(), &p);
                let ap = apriori(&table(), &p).frequent;
                assert_eq!(fp, ap, "mismatch at sup={sup} len={len}");
            }
        }
    }

    #[test]
    fn counts_are_exact() {
        let t = table();
        let res = fpgrowth(&t, &params(0.3, 3));
        for (set, count) in &res {
            let brute = (0..t.n_rows())
                .filter(|&r| set.contained_in(&t.row(r)))
                .count() as u64;
            assert_eq!(*count, brute, "wrong count for {set}");
        }
    }

    #[test]
    fn max_itemsets_truncates_by_support() {
        let p = AprioriParams {
            min_support: 0.3,
            max_len: 2,
            max_itemsets: 2,
        };
        let fp = fpgrowth(&table(), &p);
        let ap = apriori(&table(), &p).frequent;
        assert_eq!(fp, ap);
        assert_eq!(fp.len(), 2);
    }

    #[test]
    fn single_column_table() {
        let t = DiscreteTable::new(vec![vec![1, 1, 1, 2]]);
        let res = fpgrowth(&t, &params(0.5, 3));
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].1, 3);
    }

    #[test]
    fn empty_result_when_nothing_frequent() {
        let t = DiscreteTable::new(vec![vec![0, 1, 2, 3]]);
        let res = fpgrowth(&t, &params(0.5, 3));
        assert!(res.is_empty());
    }

    #[test]
    fn max_len_zero_yields_nothing() {
        assert!(fpgrowth(&table(), &params(0.2, 0)).is_empty());
    }
}
