//! Fast "which itemsets does this tuple contain?" lookups.

use std::collections::HashMap;

use crate::item::Itemset;

/// A postings-list index over a fixed collection of itemsets.
///
/// For every item we store the ids of itemsets containing it. Given a
/// tuple's discretized codes, we walk the postings of the tuple's own items
/// and count hits per itemset; an itemset is contained iff its hit count
/// equals its size. Cost is proportional to the number of matching postings
/// rather than `|itemsets| · |tuple|`.
#[derive(Clone, Debug)]
pub struct ItemsetIndex {
    /// item key → ids of itemsets containing that item.
    postings: HashMap<u64, Vec<u32>>,
    sizes: Vec<u8>,
    n_itemsets: usize,
}

impl ItemsetIndex {
    /// Builds the index. Itemset ids are positions in `itemsets`.
    pub fn new(itemsets: &[Itemset]) -> ItemsetIndex {
        let mut postings: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut sizes = Vec::with_capacity(itemsets.len());
        for (id, set) in itemsets.iter().enumerate() {
            assert!(!set.is_empty(), "empty itemset cannot be indexed");
            sizes.push(u8::try_from(set.len()).expect("itemset length fits in u8"));
            for item in set.items() {
                postings.entry(item.key()).or_default().push(id as u32);
            }
        }
        ItemsetIndex {
            postings,
            sizes,
            n_itemsets: itemsets.len(),
        }
    }

    /// Number of indexed itemsets.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_itemsets
    }

    /// True if no itemsets are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_itemsets == 0
    }

    /// Ids of all indexed itemsets fully contained in the tuple with the
    /// given discretized `row_codes` (indexed by attribute). Ids are
    /// returned in ascending order.
    pub fn contained_in(&self, row_codes: &[u32]) -> Vec<u32> {
        let mut hits: Vec<u8> = vec![0; self.n_itemsets];
        let mut out = Vec::new();
        for (attr, &code) in row_codes.iter().enumerate() {
            let key = (attr as u64) << 32 | u64::from(code);
            if let Some(ids) = self.postings.get(&key) {
                for &id in ids {
                    hits[id as usize] += 1;
                    if hits[id as usize] == self.sizes[id as usize] {
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Like [`Self::contained_in`] but reusing a caller-provided scratch
    /// buffer, for hot loops. The buffer is resized and cleared internally.
    pub fn contained_in_with(&self, row_codes: &[u32], scratch: &mut Vec<u8>) -> Vec<u32> {
        scratch.clear();
        scratch.resize(self.n_itemsets, 0);
        let mut out = Vec::new();
        for (attr, &code) in row_codes.iter().enumerate() {
            let key = (attr as u64) << 32 | u64::from(code);
            if let Some(ids) = self.postings.get(&key) {
                for &id in ids {
                    scratch[id as usize] += 1;
                    if scratch[id as usize] == self.sizes[id as usize] {
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    fn iset(pairs: &[(usize, u32)]) -> Itemset {
        Itemset::new(pairs.iter().map(|&(a, c)| Item::new(a, c)).collect())
    }

    fn index() -> (ItemsetIndex, Vec<Itemset>) {
        let sets = vec![
            iset(&[(0, 1)]),
            iset(&[(1, 2)]),
            iset(&[(0, 1), (1, 2)]),
            iset(&[(0, 1), (2, 0)]),
            iset(&[(0, 2), (1, 2), (2, 5)]),
        ];
        (ItemsetIndex::new(&sets), sets)
    }

    #[test]
    fn finds_all_contained_sets() {
        let (idx, sets) = index();
        let row = vec![1, 2, 0];
        let got = idx.contained_in(&row);
        assert_eq!(got, vec![0, 1, 2, 3]);
        for &id in &got {
            assert!(sets[id as usize].contained_in(&row));
        }
    }

    #[test]
    fn matches_brute_force() {
        let (idx, sets) = index();
        for row in [
            vec![1, 2, 5],
            vec![2, 2, 5],
            vec![0, 0, 0],
            vec![1, 0, 0],
            vec![2, 2, 0],
        ] {
            let got = idx.contained_in(&row);
            let brute: Vec<u32> = sets
                .iter()
                .enumerate()
                .filter(|(_, s)| s.contained_in(&row))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, brute, "row {row:?}");
        }
    }

    #[test]
    fn scratch_variant_agrees() {
        let (idx, _) = index();
        let mut scratch = Vec::new();
        for row in [vec![1, 2, 5], vec![0, 0, 0], vec![2, 2, 5]] {
            assert_eq!(
                idx.contained_in(&row),
                idx.contained_in_with(&row, &mut scratch)
            );
        }
    }

    #[test]
    fn empty_index() {
        let idx = ItemsetIndex::new(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.contained_in(&[1, 2, 3]), Vec::<u32>::new());
    }

    #[test]
    fn no_match_on_disjoint_row() {
        let (idx, _) = index();
        assert_eq!(idx.contained_in(&[9, 9, 9]), Vec::<u32>::new());
    }
}
