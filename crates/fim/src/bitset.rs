//! Bitmask containment over a dictionary-encoded itemset domain.
//!
//! [`crate::ItemsetIndex`] answers "which itemsets are contained in this
//! tuple?" by hashing each of the tuple's items into a postings map and
//! counting hits — a pointer-chasing loop whose cost is dominated by
//! SipHash and cache misses. [`BitsetDomain`] rebuilds the same answer
//! cache-consciously: the *distinct items that appear in any tracked
//! itemset* form a small dictionary (one bit each), so a tuple and a
//! frozen itemset each become a `[u64; W]` mask and containment reduces
//! to `iset & row == iset` over `W` words, with a popcount-based size
//! reject in front. Items outside the dictionary cannot influence any
//! containment answer, so they simply set no bit.
//!
//! The answer is **bit-identical** to the postings index: both return the
//! ids of exactly the contained itemsets, in ascending order (the bitset
//! scan visits ids in order, so no sort is needed).

use crate::item::Itemset;

/// Reusable per-thread scratch for containment lookups.
///
/// Holds both the row-mask words used by [`BitsetDomain`] and the per-
/// itemset hit counters used by the legacy [`crate::ItemsetIndex`] path,
/// so one scratch value serves either matching engine.
#[derive(Clone, Debug, Default)]
pub struct MatchScratch {
    /// Row bitmask buffer (`W` words), used by [`BitsetDomain`].
    pub mask: Vec<u64>,
    /// Per-itemset hit counters, used by
    /// [`crate::ItemsetIndex::contained_in_with`].
    pub counts: Vec<u8>,
}

impl MatchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> MatchScratch {
        MatchScratch::default()
    }
}

/// A dictionary-encoded bitmask index over a fixed collection of itemsets.
///
/// Construction assigns one bit to every distinct `(attr, code)` item
/// appearing in the tracked itemsets and stores, per itemset, its mask in
/// *sparse* CSR form — only the non-zero words, at most one per item — plus
/// its item count. Per-attribute lookup tables are *dense*
/// (`code → bit + 1`, `0` = absent), so encoding a tuple is one
/// bounds-checked load per attribute — no hashing — and the subset test
/// per itemset is a handful of word ANDs however wide the dictionary is.
#[derive(Clone, Debug)]
pub struct BitsetDomain {
    /// CSR offsets into `attr_bits`: attribute `a`'s dense code table is
    /// `attr_bits[attr_first[a]..attr_first[a + 1]]`. One flat allocation
    /// (instead of a `Vec` per attribute), so a cold row encode streams a
    /// single contiguous array rather than chasing scattered tables.
    attr_first: Vec<u32>,
    /// Concatenated per-attribute dictionaries: entries are `bit + 1`, or
    /// `0` when the item is not in any tracked itemset.
    attr_bits: Vec<u32>,
    /// Words per row mask: `n_bits.div_ceil(64)`.
    words: usize,
    /// Total dictionary bits (distinct items across all itemsets).
    n_bits: usize,
    /// CSR offsets into `iset_entries`, one span per itemset
    /// (`n_itemsets + 1` entries).
    iset_first: Vec<u32>,
    /// Sparse `(word index, word bits)` pairs per itemset. An itemset has
    /// at most one entry per item, so a 3-item itemset tests at most 3
    /// words regardless of how wide the dictionary is.
    iset_entries: Vec<(u32, u64)>,
    /// Item count per itemset (for the popcount reject).
    sizes: Vec<u8>,
    /// Largest tracked itemset size: rows with at least this many
    /// in-dictionary items skip the popcount-reject pass entirely (it
    /// could never fire), saving the `sizes` scan on typical full rows.
    max_size: u32,
    n_itemsets: usize,
}

impl BitsetDomain {
    /// Builds the domain. Itemset ids are positions in `itemsets`.
    pub fn new(itemsets: &[Itemset]) -> BitsetDomain {
        // Pass 1: assign dictionary bits in first-seen order.
        let mut attr_tables: Vec<Vec<u32>> = Vec::new();
        let mut n_bits = 0usize;
        for set in itemsets {
            assert!(!set.is_empty(), "empty itemset cannot be indexed");
            for item in set.items() {
                let attr = usize::from(item.attr);
                if attr >= attr_tables.len() {
                    attr_tables.resize(attr + 1, Vec::new());
                }
                let table = &mut attr_tables[attr];
                let code = item.code as usize;
                if code >= table.len() {
                    table.resize(code + 1, 0);
                }
                if table[code] == 0 {
                    n_bits += 1;
                    table[code] = u32::try_from(n_bits).expect("dictionary fits in u32");
                }
            }
        }
        // Pass 2: materialize the per-itemset sparse masks. Itemsets are
        // short (≤ `u8::MAX` items, typically ≤ 3), so bits of one set are
        // merged into per-word entries with a linear scan.
        let words = n_bits.div_ceil(64);
        let mut iset_first = Vec::with_capacity(itemsets.len() + 1);
        let mut iset_entries: Vec<(u32, u64)> = Vec::new();
        let mut sizes = Vec::with_capacity(itemsets.len());
        for set in itemsets {
            sizes.push(u8::try_from(set.len()).expect("itemset length fits in u8"));
            iset_first.push(u32::try_from(iset_entries.len()).expect("entry count fits in u32"));
            let span_start = iset_entries.len();
            for item in set.items() {
                let bit = attr_tables[usize::from(item.attr)][item.code as usize] - 1;
                let (word, bits) = (bit / 64, 1u64 << (bit % 64));
                match iset_entries[span_start..].iter_mut().find(|e| e.0 == word) {
                    Some(entry) => entry.1 |= bits,
                    None => iset_entries.push((word, bits)),
                }
            }
        }
        iset_first.push(u32::try_from(iset_entries.len()).expect("entry count fits in u32"));
        // Flatten the per-attribute tables into one CSR dictionary.
        let mut attr_first = Vec::with_capacity(attr_tables.len() + 1);
        let mut attr_bits = Vec::new();
        attr_first.push(0);
        for table in &attr_tables {
            attr_bits.extend_from_slice(table);
            attr_first.push(u32::try_from(attr_bits.len()).expect("dictionary fits in u32"));
        }
        BitsetDomain {
            attr_first,
            attr_bits,
            words,
            n_bits,
            iset_first,
            iset_entries,
            max_size: sizes.iter().map(|&s| u32::from(s)).max().unwrap_or(0),
            sizes,
            n_itemsets: itemsets.len(),
        }
    }

    /// Number of indexed itemsets.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_itemsets
    }

    /// True if no itemsets are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_itemsets == 0
    }

    /// Total dictionary bits (distinct items across all itemsets).
    #[inline]
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Words per mask (`n_bits.div_ceil(64)`).
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Encodes a tuple's discretized codes into `scratch.mask` and returns
    /// the number of set bits (= the tuple's in-dictionary items).
    #[inline]
    fn encode_row(&self, row_codes: &[u32], mask: &mut Vec<u64>) -> u32 {
        mask.clear();
        mask.resize(self.words, 0);
        let mut pop = 0u32;
        let n_attrs = self.attr_first.len() - 1;
        for (attr, &code) in row_codes.iter().enumerate().take(n_attrs) {
            let table =
                &self.attr_bits[self.attr_first[attr] as usize..self.attr_first[attr + 1] as usize];
            if let Some(&slot) = table.get(code as usize) {
                if slot != 0 {
                    let bit = slot - 1;
                    mask[bit as usize / 64] |= 1u64 << (bit % 64);
                    pop += 1;
                }
            }
        }
        pop
    }

    /// Ids of all indexed itemsets fully contained in the tuple with the
    /// given discretized `row_codes` (indexed by attribute), in ascending
    /// order — the same answer, in the same order, as
    /// [`crate::ItemsetIndex::contained_in`].
    pub fn contained_in_with(&self, row_codes: &[u32], scratch: &mut MatchScratch) -> Vec<u32> {
        let mut out = Vec::new();
        if self.n_itemsets == 0 {
            return out;
        }
        let row_pop = self.encode_row(row_codes, &mut scratch.mask);
        let row = &scratch.mask[..self.words];
        let contains = |id: usize| {
            let span =
                &self.iset_entries[self.iset_first[id] as usize..self.iset_first[id + 1] as usize];
            span.iter()
                .all(|&(word, bits)| row[word as usize] & bits == bits)
        };
        if row_pop < self.max_size {
            for id in 0..self.n_itemsets {
                // An itemset with more items than the row has in-dictionary
                // bits cannot be a subset — reject on the popcount alone.
                if u32::from(self.sizes[id]) > row_pop {
                    continue;
                }
                if contains(id) {
                    out.push(id as u32);
                }
            }
        } else {
            // A full row: no itemset can out-size it, so skip the reject
            // pass (and its `sizes` scan) and test the CSR spans directly.
            for id in 0..self.n_itemsets {
                if contains(id) {
                    out.push(id as u32);
                }
            }
        }
        out
    }

    /// Allocation-per-call convenience form of [`Self::contained_in_with`].
    pub fn contained_in(&self, row_codes: &[u32]) -> Vec<u32> {
        self.contained_in_with(row_codes, &mut MatchScratch::new())
    }

    /// Approximate resident bytes of the dictionary and masks.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<BitsetDomain>()
            + (self.attr_first.len() + self.attr_bits.len() + self.iset_first.len())
                * std::mem::size_of::<u32>()
            + self.iset_entries.len() * std::mem::size_of::<(u32, u64)>()
            + self.sizes.len()
    }

    /// Serializes the domain as raw little-endian contiguous vectors (a
    /// small header plus each backing `Vec` as `len` + elements), the
    /// format warm-state snapshots embed. [`Self::load_bytes`] is the
    /// inverse.
    pub fn dump_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.approx_bytes() + 64);
        put_u64(&mut out, self.n_itemsets as u64);
        put_u64(&mut out, self.words as u64);
        put_u64(&mut out, self.n_bits as u64);
        put_u32(&mut out, self.max_size);
        put_u64(&mut out, self.attr_first.len() as u64);
        for &v in &self.attr_first {
            put_u32(&mut out, v);
        }
        put_u64(&mut out, self.attr_bits.len() as u64);
        for &v in &self.attr_bits {
            put_u32(&mut out, v);
        }
        put_u64(&mut out, self.iset_first.len() as u64);
        for &v in &self.iset_first {
            put_u32(&mut out, v);
        }
        put_u64(&mut out, self.iset_entries.len() as u64);
        for &(word, bits) in &self.iset_entries {
            put_u32(&mut out, word);
            put_u64(&mut out, bits);
        }
        put_u64(&mut out, self.sizes.len() as u64);
        out.extend_from_slice(&self.sizes);
        out
    }

    /// Reconstructs a domain from [`Self::dump_bytes`] output, validating
    /// every structural invariant (vector lengths, CSR monotonicity, word
    /// bounds) so a corrupted dump is rejected instead of producing a
    /// domain that panics or answers wrongly later.
    pub fn load_bytes(bytes: &[u8]) -> Result<BitsetDomain, &'static str> {
        let mut r = Reader { bytes, pos: 0 };
        let n_itemsets = r.u64()? as usize;
        let words = r.u64()? as usize;
        let n_bits = r.u64()? as usize;
        let max_size = r.u32()?;
        let attr_first = r.vec_u32()?;
        let attr_bits = r.vec_u32()?;
        let iset_first = r.vec_u32()?;
        let n_entries = r.len()?;
        let mut iset_entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let word = r.u32()?;
            let bits = r.u64()?;
            iset_entries.push((word, bits));
        }
        let sizes = r.vec_u8()?;
        if r.pos != bytes.len() {
            return Err("bitset domain has trailing bytes");
        }
        if words != n_bits.div_ceil(64) {
            return Err("bitset domain word count disagrees with bit count");
        }
        check_csr(&attr_first, attr_bits.len())?;
        if n_itemsets.checked_add(1) != Some(iset_first.len()) {
            return Err("bitset domain itemset offsets have wrong length");
        }
        check_csr(&iset_first, iset_entries.len())?;
        if sizes.len() != n_itemsets {
            return Err("bitset domain sizes have wrong length");
        }
        if iset_entries.iter().any(|&(word, _)| word as usize >= words) {
            return Err("bitset domain mask word out of range");
        }
        if attr_bits.iter().any(|&slot| slot as usize > n_bits) {
            return Err("bitset domain dictionary slot out of range");
        }
        Ok(BitsetDomain {
            attr_first,
            attr_bits,
            words,
            n_bits,
            iset_first,
            iset_entries,
            sizes,
            max_size,
            n_itemsets,
        })
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A CSR offset vector must start at 0, be non-decreasing, and end at the
/// backing vector's length.
fn check_csr(first: &[u32], backing_len: usize) -> Result<(), &'static str> {
    if first.first() != Some(&0) {
        return Err("bitset domain CSR offsets do not start at zero");
    }
    if first.windows(2).any(|w| w[0] > w[1]) {
        return Err("bitset domain CSR offsets decrease");
    }
    if first.last().copied().unwrap_or(0) as usize != backing_len {
        return Err("bitset domain CSR offsets disagree with backing length");
    }
    Ok(())
}

/// Bounds-checked little-endian cursor over a dump.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], &'static str> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or("bitset domain dump truncated")?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, &'static str> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, &'static str> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length prefix, sanity-bounded by the remaining bytes so a flipped
    /// length bit cannot trigger a huge allocation.
    fn len(&mut self) -> Result<usize, &'static str> {
        let n = self.u64()? as usize;
        if n > self.bytes.len() {
            return Err("bitset domain length prefix exceeds dump size");
        }
        Ok(n)
    }

    fn vec_u32(&mut self) -> Result<Vec<u32>, &'static str> {
        let n = self.len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    fn vec_u8(&mut self) -> Result<Vec<u8>, &'static str> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ItemsetIndex;
    use crate::item::Item;

    fn iset(pairs: &[(usize, u32)]) -> Itemset {
        Itemset::new(pairs.iter().map(|&(a, c)| Item::new(a, c)).collect())
    }

    fn sets() -> Vec<Itemset> {
        vec![
            iset(&[(0, 1)]),
            iset(&[(1, 2)]),
            iset(&[(0, 1), (1, 2)]),
            iset(&[(0, 1), (2, 0)]),
            iset(&[(0, 2), (1, 2), (2, 5)]),
        ]
    }

    #[test]
    fn finds_all_contained_sets() {
        let domain = BitsetDomain::new(&sets());
        assert_eq!(domain.contained_in(&[1, 2, 0]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn matches_postings_index_and_brute_force() {
        let sets = sets();
        let domain = BitsetDomain::new(&sets);
        let index = ItemsetIndex::new(&sets);
        let mut scratch = MatchScratch::new();
        for row in [
            vec![1, 2, 5],
            vec![2, 2, 5],
            vec![0, 0, 0],
            vec![1, 0, 0],
            vec![2, 2, 0],
            vec![9999, 9999, 9999],
        ] {
            let got = domain.contained_in_with(&row, &mut scratch);
            assert_eq!(got, index.contained_in(&row), "row {row:?}");
            let brute: Vec<u32> = sets
                .iter()
                .enumerate()
                .filter(|(_, s)| s.contained_in(&row))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, brute, "row {row:?}");
        }
    }

    #[test]
    fn out_of_dictionary_codes_set_no_bits() {
        let domain = BitsetDomain::new(&sets());
        // Codes far past every table length, and rows longer than the
        // tracked attribute range, must match nothing and not panic.
        assert_eq!(
            domain.contained_in(&[9999, 9999, 9999, 7, 7]),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn empty_domain() {
        let domain = BitsetDomain::new(&[]);
        assert!(domain.is_empty());
        assert_eq!(domain.words(), 0);
        assert_eq!(domain.contained_in(&[1, 2, 3]), Vec::<u32>::new());
    }

    #[test]
    fn multi_word_domain_wraps_past_64_bits() {
        // 10 attributes × 9 codes = 90 singleton items → 2 mask words.
        let mut sets = Vec::new();
        for attr in 0..10usize {
            for code in 0..9u32 {
                sets.push(iset(&[(attr, code)]));
            }
        }
        // One wide itemset whose bits straddle the word boundary.
        sets.push(iset(&[(0, 0), (4, 4), (9, 8)]));
        let domain = BitsetDomain::new(&sets);
        assert!(domain.n_bits() > 64);
        assert_eq!(domain.words(), 2);
        let index = ItemsetIndex::new(&sets);
        let mut scratch = MatchScratch::new();
        for row in [
            vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 8],
            vec![0, 0, 0, 0, 4, 0, 0, 0, 0, 8],
            vec![9, 9, 9, 9, 9, 9, 9, 9, 9, 9],
        ] {
            assert_eq!(
                domain.contained_in_with(&row, &mut scratch),
                index.contained_in(&row),
                "row {row:?}"
            );
        }
    }

    #[test]
    fn dump_load_round_trips_bit_identically() {
        for sets in [sets(), Vec::new()] {
            let domain = BitsetDomain::new(&sets);
            let bytes = domain.dump_bytes();
            let loaded = BitsetDomain::load_bytes(&bytes).expect("valid dump loads");
            assert_eq!(loaded.dump_bytes(), bytes, "reserialization is identical");
            let mut scratch = MatchScratch::new();
            for row in [vec![1, 2, 0], vec![2, 2, 5], vec![0, 0, 0]] {
                assert_eq!(
                    loaded.contained_in_with(&row, &mut scratch),
                    domain.contained_in(&row),
                    "row {row:?}"
                );
            }
        }
    }

    #[test]
    fn load_rejects_corrupt_dumps() {
        let bytes = BitsetDomain::new(&sets()).dump_bytes();
        // Truncations at every prefix length must error, never panic.
        for end in 0..bytes.len() {
            assert!(
                BitsetDomain::load_bytes(&bytes[..end]).is_err(),
                "truncation at {end} must be rejected"
            );
        }
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(BitsetDomain::load_bytes(&padded).is_err());
        // A wild length prefix must not allocate or panic.
        let mut wild = bytes;
        wild[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(BitsetDomain::load_bytes(&wild).is_err());
    }

    #[test]
    fn scratch_is_reusable_across_domains() {
        let small = BitsetDomain::new(&sets()[..2]);
        let large = BitsetDomain::new(&sets());
        let mut scratch = MatchScratch::new();
        assert_eq!(
            small.contained_in_with(&[1, 2, 0], &mut scratch),
            vec![0, 1]
        );
        assert_eq!(
            large.contained_in_with(&[1, 2, 0], &mut scratch),
            vec![0, 1, 2, 3]
        );
        assert_eq!(small.contained_in_with(&[1, 9, 9], &mut scratch), vec![0]);
    }
}
