//! Items and itemsets over the discretized attribute space.

use std::fmt;

/// A single `attribute = code` pair in the discretized space.
///
/// Numeric attributes participate through their quartile bin code, exactly
/// as the paper prescribes (§3.6: "Shahin computes the frequent itemset over
/// the discretized data").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item {
    /// Attribute index in the schema.
    pub attr: u16,
    /// Discretized value code.
    pub code: u32,
}

impl Item {
    /// Creates an item.
    #[inline]
    pub fn new(attr: usize, code: u32) -> Item {
        Item {
            attr: u16::try_from(attr).expect("attribute index fits in u16"),
            code,
        }
    }

    /// Packs the item into a single `u64` key (for hash maps).
    #[inline]
    pub fn key(self) -> u64 {
        (u64::from(self.attr) << 32) | u64::from(self.code)
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}={}", self.attr, self.code)
    }
}

/// A sorted, duplicate-free set of [`Item`]s with at most one item per
/// attribute.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Itemset {
    items: Vec<Item>,
}

impl Itemset {
    /// Builds an itemset, sorting and validating the items.
    pub fn new(mut items: Vec<Item>) -> Itemset {
        items.sort_unstable();
        items.dedup();
        debug_assert!(
            items.windows(2).all(|w| w[0].attr != w[1].attr),
            "itemset has two items on the same attribute: {items:?}"
        );
        Itemset { items }
    }

    /// The singleton itemset `{item}`.
    pub fn singleton(item: Item) -> Itemset {
        Itemset { items: vec![item] }
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items, sorted by (attr, code).
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// True if every item of `self` matches `row_codes` (the tuple's
    /// discretized codes, indexed by attribute).
    #[inline]
    pub fn contained_in(&self, row_codes: &[u32]) -> bool {
        self.items
            .iter()
            .all(|it| row_codes[it.attr as usize] == it.code)
    }

    /// True if `self` is a subset of `other`.
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        // Both sorted: linear merge scan.
        let mut oi = other.items.iter();
        'outer: for it in &self.items {
            for ot in oi.by_ref() {
                if ot == it {
                    continue 'outer;
                }
                if ot > it {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// The union of two itemsets. Panics (in debug) if the union would put
    /// two different codes on the same attribute.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut items = self.items.clone();
        items.extend_from_slice(&other.items);
        Itemset::new(items)
    }

    /// All immediate subsets (each obtained by removing one item).
    pub fn immediate_subsets(&self) -> Vec<Itemset> {
        (0..self.items.len())
            .map(|skip| {
                let items = self
                    .items
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &it)| (i != skip).then_some(it))
                    .collect();
                Itemset { items }
            })
            .collect()
    }

    /// Approximate resident bytes (for store budget accounting).
    #[inline]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Itemset>() + self.items.len() * std::mem::size_of::<Item>()
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{it}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iset(pairs: &[(usize, u32)]) -> Itemset {
        Itemset::new(pairs.iter().map(|&(a, c)| Item::new(a, c)).collect())
    }

    #[test]
    fn construction_sorts_and_dedupes() {
        let s = Itemset::new(vec![Item::new(3, 1), Item::new(1, 2), Item::new(3, 1)]);
        assert_eq!(s.items(), &[Item::new(1, 2), Item::new(3, 1)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn containment_in_row() {
        let s = iset(&[(0, 5), (2, 1)]);
        assert!(s.contained_in(&[5, 9, 1, 0]));
        assert!(!s.contained_in(&[5, 9, 2, 0]));
        assert!(Itemset::new(vec![]).contained_in(&[1, 2]));
    }

    #[test]
    fn subset_relation() {
        let small = iset(&[(1, 2)]);
        let big = iset(&[(0, 1), (1, 2), (3, 4)]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(big.is_subset_of(&big));
        assert!(Itemset::new(vec![]).is_subset_of(&small));
        let other = iset(&[(1, 3)]);
        assert!(!other.is_subset_of(&big));
    }

    #[test]
    fn union_merges() {
        let a = iset(&[(0, 1)]);
        let b = iset(&[(2, 3)]);
        assert_eq!(a.union(&b), iset(&[(0, 1), (2, 3)]));
    }

    #[test]
    fn immediate_subsets_cover_all_removals() {
        let s = iset(&[(0, 1), (1, 2), (2, 3)]);
        let subs = s.immediate_subsets();
        assert_eq!(subs.len(), 3);
        for sub in &subs {
            assert_eq!(sub.len(), 2);
            assert!(sub.is_subset_of(&s));
        }
        assert!(subs.contains(&iset(&[(1, 2), (2, 3)])));
        assert!(subs.contains(&iset(&[(0, 1), (2, 3)])));
        assert!(subs.contains(&iset(&[(0, 1), (1, 2)])));
    }

    #[test]
    fn item_key_is_injective() {
        let a = Item::new(1, 2).key();
        let b = Item::new(2, 1).key();
        let c = Item::new(1, 3).key();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn display_formats() {
        let s = iset(&[(0, 1), (2, 7)]);
        assert_eq!(s.to_string(), "{A0=1, A2=7}");
    }
}
