//! Frequent itemset mining for Shahin.
//!
//! Shahin's central heuristic (paper §3) mines frequent itemsets over a
//! uniform sample of the batch to be explained: sets of
//! `attribute = value` pairs that co-occur in many tuples are the most
//! promising perturbation "freezes" to pre-materialize, because many tuples
//! will be able to reuse them.
//!
//! This crate provides:
//!
//! * [`Item`] / [`Itemset`] — `attribute = discretized-code` pairs,
//! * [`apriori()`] — level-wise Apriori mining over a [`DiscreteTable`],
//!   returning frequent itemsets *and* their negative border (needed by the
//!   streaming variant, paper §3.5),
//! * [`ItemsetIndex`] — a postings-list index answering "which frequent
//!   itemsets are contained in this tuple?" in time proportional to the
//!   matching postings,
//! * [`BitsetDomain`] — the cache-conscious answer to the same question:
//!   tracked items are dictionary-encoded so tuples and itemsets become
//!   `[u64; W]` masks and containment is a handful of AND/EQ word ops,
//! * [`shahin_sample_size`] / [`sample_rows`] — the paper's
//!   `max(1000, 1% of batch)` sampling rule.
//!
//! [`DiscreteTable`]: shahin_tabular::DiscreteTable

pub mod apriori;
pub mod bitset;
pub mod fpgrowth;
pub mod index;
pub mod item;
pub mod sample;

pub use apriori::{apriori, AprioriParams, AprioriResult};
pub use bitset::{BitsetDomain, MatchScratch};
pub use fpgrowth::fpgrowth;
pub use index::ItemsetIndex;
pub use item::{Item, Itemset};
pub use sample::{sample_rows, shahin_sample_size};
