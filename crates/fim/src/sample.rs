//! The paper's batch sampling rule.

use rand::seq::index::sample;
use rand::Rng;

use shahin_tabular::DiscreteTable;

/// Shahin's sample-size heuristic (paper §3): mine frequent itemsets over a
/// uniform sample of `max(1000, 1% of batch)` tuples, never exceeding the
/// batch itself.
#[inline]
pub fn shahin_sample_size(batch_size: usize) -> usize {
    (batch_size / 100).max(1000).min(batch_size)
}

/// Draws a uniform random sample of rows (without replacement) of the size
/// given by [`shahin_sample_size`], as a new table.
pub fn sample_rows(table: &DiscreteTable, rng: &mut impl Rng) -> DiscreteTable {
    let k = shahin_sample_size(table.n_rows());
    if k >= table.n_rows() {
        return table.clone();
    }
    let idx: Vec<usize> = sample(rng, table.n_rows(), k).into_vec();
    table.select(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn size_rule_matches_paper() {
        assert_eq!(shahin_sample_size(10), 10);
        assert_eq!(shahin_sample_size(1000), 1000);
        assert_eq!(shahin_sample_size(50_000), 1000);
        assert_eq!(shahin_sample_size(200_000), 2000);
        assert_eq!(shahin_sample_size(1_000_000), 10_000);
    }

    #[test]
    fn small_table_returned_whole() {
        let t = DiscreteTable::new(vec![vec![1, 2, 3]]);
        let mut rng = StdRng::seed_from_u64(0);
        let s = sample_rows(&t, &mut rng);
        assert_eq!(s.n_rows(), 3);
    }

    #[test]
    fn large_table_sampled_without_replacement() {
        let t = DiscreteTable::new(vec![(0..150_000u32).collect()]);
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_rows(&t, &mut rng);
        assert_eq!(s.n_rows(), 1500);
        let mut codes: Vec<u32> = (0..s.n_rows()).map(|r| s.code(r, 0)).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 1500, "sample has duplicates");
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let t = DiscreteTable::new(vec![(0..200_000u32).collect()]);
        let a = sample_rows(&t, &mut StdRng::seed_from_u64(5));
        let b = sample_rows(&t, &mut StdRng::seed_from_u64(5));
        for r in 0..a.n_rows() {
            assert_eq!(a.code(r, 0), b.code(r, 0));
        }
    }
}
