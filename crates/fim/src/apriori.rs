//! Level-wise Apriori mining with negative-border tracking.

use std::collections::{HashMap, HashSet};

use shahin_tabular::DiscreteTable;

use crate::item::{Item, Itemset};

/// Parameters controlling the Apriori run.
#[derive(Clone, Debug)]
pub struct AprioriParams {
    /// Minimum relative support (fraction of transactions) for an itemset to
    /// be frequent.
    pub min_support: f64,
    /// Maximum itemset length mined. Shahin only needs short freezes (the
    /// explainers rarely freeze many attributes at once), so 3 is a good
    /// default.
    pub max_len: usize,
    /// Optional cap on the number of frequent itemsets kept (highest support
    /// first). Bounds the materialization budget `τ · |F|`. `usize::MAX`
    /// disables the cap.
    pub max_itemsets: usize,
}

impl Default for AprioriParams {
    fn default() -> Self {
        AprioriParams {
            min_support: 0.2,
            max_len: 3,
            max_itemsets: usize::MAX,
        }
    }
}

/// Output of [`apriori`].
#[derive(Clone, Debug)]
pub struct AprioriResult {
    /// Frequent itemsets with their absolute support counts, sorted by
    /// descending support (longest-first on ties so supersets win).
    pub frequent: Vec<(Itemset, u64)>,
    /// The negative border: itemsets that are *not* frequent although all of
    /// their immediate subsets are (paper §3.5). Singleton infrequent items
    /// are included (their only subset is the empty set).
    pub negative_border: Vec<Itemset>,
    /// Number of transactions mined.
    pub n_transactions: u64,
}

impl AprioriResult {
    /// Relative support of the `i`-th frequent itemset.
    pub fn support(&self, i: usize) -> f64 {
        self.frequent[i].1 as f64 / self.n_transactions as f64
    }
}

/// Mines frequent itemsets over the rows of a discretized table.
///
/// Each row is a transaction with exactly one item per attribute
/// (`attr = code`). Candidate generation is the classic join of `k−1`-sets
/// sharing a prefix, followed by full subset pruning; support counting is
/// candidate-driven (each candidate checked against each row in O(k)),
/// which is the right trade-off for the short, wide transactions of tabular
/// data.
pub fn apriori(table: &DiscreteTable, params: &AprioriParams) -> AprioriResult {
    let n = table.n_rows();
    assert!(n > 0, "cannot mine an empty table");
    assert!(
        (0.0..=1.0).contains(&params.min_support),
        "min_support must be in [0, 1]"
    );
    let min_count = ((params.min_support * n as f64).ceil() as u64).max(1);

    let mut frequent: Vec<(Itemset, u64)> = Vec::new();
    let mut negative_border: Vec<Itemset> = Vec::new();

    // --- level 1: per-item counting in one scan
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for attr in 0..table.n_attrs() {
        for &code in table.column(attr) {
            *counts.entry(Item::new(attr, code).key()).or_insert(0) += 1;
        }
    }
    let mut level: Vec<(Itemset, u64)> = Vec::new();
    for (&key, &c) in &counts {
        let item = Item {
            attr: (key >> 32) as u16,
            code: key as u32,
        };
        let set = Itemset::singleton(item);
        if c >= min_count {
            level.push((set, c));
        } else {
            negative_border.push(set);
        }
    }
    sort_level(&mut level);

    // --- levels 2..=max_len
    for _k in 2..=params.max_len {
        if level.len() < 2 {
            frequent.append(&mut level);
            break;
        }
        let prev_sets: HashSet<&Itemset> = level.iter().map(|(s, _)| s).collect();
        let candidates = generate_candidates(&level, &prev_sets);
        frequent.append(&mut level);
        if candidates.is_empty() {
            break;
        }
        // Candidate-driven support counting.
        let mut cand_counts = vec![0u64; candidates.len()];
        let mut row_codes = vec![0u32; table.n_attrs()];
        for row in 0..n {
            for (attr, code) in row_codes.iter_mut().enumerate() {
                *code = table.code(row, attr);
            }
            for (ci, cand) in candidates.iter().enumerate() {
                if cand.contained_in(&row_codes) {
                    cand_counts[ci] += 1;
                }
            }
        }
        let mut next: Vec<(Itemset, u64)> = Vec::new();
        for (cand, c) in candidates.into_iter().zip(cand_counts) {
            if c >= min_count {
                next.push((cand, c));
            } else {
                negative_border.push(cand);
            }
        }
        sort_level(&mut next);
        level = next;
    }
    frequent.extend(level);

    // Global ordering: support desc, then longer itemsets first, then
    // lexicographic for determinism.
    frequent.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(b.0.len().cmp(&a.0.len()))
            .then(a.0.cmp(&b.0))
    });
    if frequent.len() > params.max_itemsets {
        frequent.truncate(params.max_itemsets);
    }
    negative_border.sort();

    AprioriResult {
        frequent,
        negative_border,
        n_transactions: n as u64,
    }
}

fn sort_level(level: &mut [(Itemset, u64)]) {
    level.sort_by(|a, b| a.0.cmp(&b.0));
}

/// Classic Apriori-gen: join `k−1` level sets sharing their first `k−2`
/// items, then prune candidates with any infrequent immediate subset.
fn generate_candidates(level: &[(Itemset, u64)], prev_sets: &HashSet<&Itemset>) -> Vec<Itemset> {
    let mut out = Vec::new();
    for i in 0..level.len() {
        for (b, _) in &level[i + 1..] {
            let a = &level[i].0;
            let (a_items, b_items) = (a.items(), b.items());
            let k1 = a_items.len();
            // Sorted level + sorted items: the join condition is equal
            // prefixes and a's last item < b's last item.
            if a_items[..k1 - 1] != b_items[..k1 - 1] {
                break; // sorted order: no further b shares the prefix
            }
            let last_a = a_items[k1 - 1];
            let last_b = b_items[k1 - 1];
            if last_a.attr == last_b.attr {
                continue; // two codes on one attribute can never co-occur
            }
            let cand = a.union(b);
            if cand.len() != k1 + 1 {
                continue;
            }
            // Full subset pruning.
            if cand
                .immediate_subsets()
                .iter()
                .all(|s| prev_sets.contains(s))
            {
                out.push(cand);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 10 transactions over 3 attributes:
    /// attr0: 0 in 80% of rows; attr1: 0 in 60%; attr2: unique codes.
    fn table() -> DiscreteTable {
        DiscreteTable::new(vec![
            vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 2],
            vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1],
            vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9],
        ])
    }

    fn iset(pairs: &[(usize, u32)]) -> Itemset {
        Itemset::new(pairs.iter().map(|&(a, c)| Item::new(a, c)).collect())
    }

    fn frequent_sets(res: &AprioriResult) -> Vec<Itemset> {
        res.frequent.iter().map(|(s, _)| s.clone()).collect()
    }

    #[test]
    fn finds_expected_frequent_sets() {
        let res = apriori(
            &table(),
            &AprioriParams {
                min_support: 0.5,
                max_len: 3,
                max_itemsets: usize::MAX,
            },
        );
        let sets = frequent_sets(&res);
        assert!(sets.contains(&iset(&[(0, 0)])), "{sets:?}");
        assert!(sets.contains(&iset(&[(1, 0)])), "{sets:?}");
        // {A0=0, A1=0} co-occurs in rows 0..=5: support 0.6.
        assert!(sets.contains(&iset(&[(0, 0), (1, 0)])), "{sets:?}");
        // Nothing from the unique attr 2.
        assert!(sets.iter().all(|s| s.items().iter().all(|i| i.attr != 2)));
    }

    #[test]
    fn support_counts_are_exact() {
        let res = apriori(
            &table(),
            &AprioriParams {
                min_support: 0.5,
                ..Default::default()
            },
        );
        for (set, count) in &res.frequent {
            // Recount by brute force.
            let t = table();
            let brute = (0..t.n_rows())
                .filter(|&r| set.contained_in(&t.row(r)))
                .count() as u64;
            assert_eq!(*count, brute, "wrong count for {set}");
        }
    }

    #[test]
    fn downward_closure_holds() {
        let res = apriori(
            &table(),
            &AprioriParams {
                min_support: 0.3,
                ..Default::default()
            },
        );
        let sets: HashSet<Itemset> = frequent_sets(&res).into_iter().collect();
        for s in &sets {
            for sub in s.immediate_subsets() {
                if !sub.is_empty() {
                    assert!(sets.contains(&sub), "{s} frequent but subset {sub} missing");
                }
            }
        }
    }

    #[test]
    fn negative_border_properties() {
        let res = apriori(
            &table(),
            &AprioriParams {
                min_support: 0.5,
                ..Default::default()
            },
        );
        let freq: HashSet<Itemset> = frequent_sets(&res).into_iter().collect();
        let min_count = 5;
        let t = table();
        for nb in &res.negative_border {
            // Not frequent itself.
            let count = (0..t.n_rows())
                .filter(|&r| nb.contained_in(&t.row(r)))
                .count() as u64;
            assert!(count < min_count, "{nb} is actually frequent");
            // All immediate non-empty subsets frequent.
            for sub in nb.immediate_subsets() {
                if !sub.is_empty() {
                    assert!(freq.contains(&sub), "{nb}: subset {sub} not frequent");
                }
            }
        }
        // {A1=1} has support 0.4 < 0.5 and should sit on the border.
        assert!(res.negative_border.contains(&iset(&[(1, 1)])));
    }

    #[test]
    fn max_len_caps_itemset_size() {
        let res = apriori(
            &table(),
            &AprioriParams {
                min_support: 0.3,
                max_len: 1,
                max_itemsets: usize::MAX,
            },
        );
        assert!(res.frequent.iter().all(|(s, _)| s.len() == 1));
    }

    #[test]
    fn max_itemsets_keeps_highest_support() {
        let res = apriori(
            &table(),
            &AprioriParams {
                min_support: 0.3,
                max_len: 2,
                max_itemsets: 2,
            },
        );
        assert_eq!(res.frequent.len(), 2);
        // The two highest-support sets are A0=0 (0.8) and A1=0 (0.6).
        assert_eq!(res.frequent[0].0, iset(&[(0, 0)]));
        assert_eq!(res.frequent[0].1, 8);
    }

    #[test]
    fn min_support_one_keeps_universal_items_only() {
        let t = DiscreteTable::new(vec![vec![7, 7, 7], vec![0, 1, 0]]);
        let res = apriori(
            &t,
            &AprioriParams {
                min_support: 1.0,
                ..Default::default()
            },
        );
        let sets = frequent_sets(&res);
        assert_eq!(sets, vec![iset(&[(0, 7)])]);
    }

    #[test]
    fn ordering_is_support_descending() {
        let res = apriori(
            &table(),
            &AprioriParams {
                min_support: 0.3,
                ..Default::default()
            },
        );
        for w in res.frequent.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
