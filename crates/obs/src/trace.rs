//! Request-scoped tracing: causal span trees per served request, a
//! stage sink for workers deep in the engine, and a bounded tail-sampled
//! store of retained traces.
//!
//! The metrics registry answers "how is the service doing"; this module
//! answers "why did request #4711 take 80 ms". The model:
//!
//! * [`TraceContext`] — the identity propagated alongside a request: a
//!   process-unique trace id plus the span index the next stage should
//!   parent under. Minted at admission, carried through the queue, the
//!   micro-batcher, and into the [`crate::MetricsRegistry`]-attached
//!   [`TraceSink`] that engine workers record stage timings into.
//! * [`RequestTrace`] — the finished record: an ordered span tree
//!   (`request` → `queue`/`batch` → engine stages), the key counters
//!   (store hits/misses, samples reused/fresh, classifier invocations)
//!   and outcome flags, renderable as one JSON object or as a
//!   single-request Chrome-trace document loadable in Perfetto.
//! * [`TraceStore`] — a bounded lock-striped ring with **tail-based
//!   sampling**: every request is traced cheaply, but at retention time
//!   errors and quarantined requests are always kept, the slowest K of
//!   the current window and anything over the slow threshold are kept,
//!   and the bulk of successes is sampled down by a deterministic
//!   per-trace-id coin. Everything else increments a dropped counter.
//!
//! Sampling at the *tail* (retention) rather than the head (admission)
//! is what makes "every error has a trace" possible: the decision is
//! made after the outcome is known.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::json::escape;

/// Stripe count for both the stage sink and the retained-trace ring.
pub const N_TRACE_STRIPES: usize = 16;

/// Per-stripe bound on trace ids the stage sink will hold spans for
/// before dropping; a backstop against a server that records stages but
/// never reconciles them.
const SINK_IDS_PER_STRIPE: usize = 4096;

/// The identity a traced request carries through the pipeline: the
/// process-unique trace id and the span index new child spans should
/// attach under (0 is always the root `request` span).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    pub trace_id: u64,
    pub parent: u32,
}

impl TraceContext {
    /// A root context for a freshly minted trace id.
    pub fn root(trace_id: u64) -> TraceContext {
        TraceContext {
            trace_id,
            parent: 0,
        }
    }

    /// The same trace re-parented under span `parent`.
    pub fn child(self, parent: u32) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent,
        }
    }
}

/// One node of a [`RequestTrace`]'s span tree. Offsets are relative to
/// the trace's own start, so a trace is self-contained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    pub name: Arc<str>,
    /// Index of the parent span in [`RequestTrace::spans`]; `None` only
    /// for the root.
    pub parent: Option<u32>,
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// The per-request counters worth keeping on every trace: the same
/// accounting the provenance layer records, compressed to what explains
/// a latency number.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCounters {
    pub store_hits: u64,
    pub store_misses: u64,
    pub samples_reused: u64,
    pub samples_fresh: u64,
    pub invocations: u64,
}

impl TraceCounters {
    /// Accumulates another stage's counter deltas.
    pub fn absorb(&mut self, other: &TraceCounters) {
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.samples_reused += other.samples_reused;
        self.samples_fresh += other.samples_fresh;
        self.invocations += other.invocations;
    }
}

/// The finished trace of one served request.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    pub trace_id: u64,
    pub request_id: u64,
    /// Batch row index the request asked to explain.
    pub row: u64,
    /// Micro-batch this request rode in (`None` when it never reached
    /// the batcher, e.g. an expired deadline).
    pub batch_id: Option<u64>,
    /// Span tree; index 0 is the root `request` span.
    pub spans: Vec<TraceSpan>,
    pub counters: TraceCounters,
    /// The request was answered with an error frame.
    pub error: bool,
    /// The tuple was quarantined by the resilience boundary (a subset of
    /// `error`).
    pub quarantined: bool,
    /// The explanation was produced under duress (absorbed retries,
    /// sanitized outputs).
    pub degraded: bool,
    /// End-to-end wall time, admission to response.
    pub total_ns: u64,
    /// Tenant the request was routed to (`None` — and omitted from the
    /// JSON — for single-tenant serving).
    pub tenant: Option<Arc<str>>,
}

impl RequestTrace {
    /// Renders the trace as one JSON object (no newlines), the shape the
    /// serve `trace` admin frame embeds.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        write!(
            out,
            "\"trace_id\": {}, \"request_id\": {}, \"row\": {}, \"batch_id\": ",
            self.trace_id, self.request_id, self.row
        )
        .unwrap();
        match self.batch_id {
            Some(b) => write!(out, "{b}").unwrap(),
            None => out.push_str("null"),
        }
        if let Some(tenant) = &self.tenant {
            write!(out, ", \"tenant\": \"{}\"", escape(tenant)).unwrap();
        }
        write!(
            out,
            ", \"error\": {}, \"quarantined\": {}, \"degraded\": {}, \"total_ns\": {}",
            self.error, self.quarantined, self.degraded, self.total_ns
        )
        .unwrap();
        write!(
            out,
            ", \"counters\": {{\"store_hits\": {}, \"store_misses\": {}, \
             \"samples_reused\": {}, \"samples_fresh\": {}, \"invocations\": {}}}",
            self.counters.store_hits,
            self.counters.store_misses,
            self.counters.samples_reused,
            self.counters.samples_fresh,
            self.counters.invocations
        )
        .unwrap();
        out.push_str(", \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "{{\"name\": \"{}\", \"parent\": ", escape(&s.name)).unwrap();
            match s.parent {
                Some(p) => write!(out, "{p}").unwrap(),
                None => out.push_str("null"),
            }
            write!(out, ", \"start_ns\": {}, \"dur_ns\": {}}}", s.start_ns, s.dur_ns).unwrap();
        }
        out.push_str("]}");
        out
    }

    /// Renders the trace as a Chrome trace-event document (complete `X`
    /// events on one lane), loadable in Perfetto / `chrome://tracing`.
    pub fn to_chrome_trace(&self) -> String {
        fn ts_us(ns: u64) -> String {
            format!("{}.{:03}", ns / 1_000, ns % 1_000)
        }
        let mut out = String::from("{\"traceEvents\": [\n");
        write!(
            out,
            "  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
             \"args\": {{\"name\": \"shahin-serve\"}}}},\n  {{\"name\": \"thread_name\", \
             \"ph\": \"M\", \"pid\": 1, \"tid\": 1, \
             \"args\": {{\"name\": \"trace {}\"}}}}",
            self.trace_id
        )
        .unwrap();
        for s in &self.spans {
            write!(
                out,
                ",\n  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \
                 \"ts\": {}, \"dur\": {}",
                escape(&s.name),
                ts_us(s.start_ns),
                ts_us(s.dur_ns.max(1))
            )
            .unwrap();
            if s.parent.is_none() {
                write!(
                    out,
                    ", \"args\": {{\"trace_id\": {}, \"request_id\": {}, \"row\": {}, \
                     \"store_hits\": {}, \"store_misses\": {}, \"samples_reused\": {}, \
                     \"samples_fresh\": {}, \"invocations\": {}, \"degraded\": {}}}",
                    self.trace_id,
                    self.request_id,
                    self.row,
                    self.counters.store_hits,
                    self.counters.store_misses,
                    self.counters.samples_reused,
                    self.counters.samples_fresh,
                    self.counters.invocations,
                    self.degraded
                )
                .unwrap();
            }
            out.push('}');
        }
        out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
        out
    }
}

/// One stage measurement recorded by a worker deep in the engine (store
/// retrieval, classifier probe, surrogate fit / anchor search), keyed by
/// trace id in the [`TraceSink`] and reconciled into the request's span
/// tree by the server once the batch returns.
#[derive(Clone, Debug)]
pub struct StageSpan {
    pub name: &'static str,
    pub start: Instant,
    pub dur: Duration,
    /// Counter deltas attributable to this stage; summed into
    /// [`RequestTrace::counters`] at assembly.
    pub counters: TraceCounters,
}

/// A lock-striped mailbox of engine-side [`StageSpan`]s, keyed by trace
/// id. Workers [`TraceSink::push`] as they finish a stage; the server
/// [`TraceSink::take`]s everything for a trace when assembling its
/// [`RequestTrace`]. Striping by trace id keeps adjacent requests in a
/// batch off each other's locks.
pub struct TraceSink {
    stripes: [Mutex<HashMap<u64, Vec<StageSpan>>>; N_TRACE_STRIPES],
    dropped: AtomicU64,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    pub fn new() -> TraceSink {
        TraceSink {
            stripes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            dropped: AtomicU64::new(0),
        }
    }

    fn stripe(&self, trace_id: u64) -> &Mutex<HashMap<u64, Vec<StageSpan>>> {
        &self.stripes[(trace_id as usize) % N_TRACE_STRIPES]
    }

    /// Records one stage for `trace_id`. Spans for more than
    /// `SINK_IDS_PER_STRIPE` distinct unreconciled trace ids per stripe
    /// are dropped (and counted) instead of growing without bound.
    pub fn push(&self, trace_id: u64, span: StageSpan) {
        let mut map = self.stripe(trace_id).lock();
        if map.len() >= SINK_IDS_PER_STRIPE && !map.contains_key(&trace_id) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        map.entry(trace_id).or_default().push(span);
    }

    /// Removes and returns every stage recorded for `trace_id`, in push
    /// order per worker (stages of one request are recorded by one
    /// worker, so this is chronological).
    pub fn take(&self, trace_id: u64) -> Vec<StageSpan> {
        self.stripe(trace_id).lock().remove(&trace_id).unwrap_or_default()
    }

    /// Stage spans dropped by the per-stripe id bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Trace ids currently holding unreconciled stages.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Retention policy knobs for a [`TraceStore`].
#[derive(Clone, Copy, Debug)]
pub struct TraceStoreConfig {
    /// Total retained traces across all stripes (ring bound).
    pub capacity: usize,
    /// Probability of retaining a bulk-success trace (`--trace-sample`).
    pub sample: f64,
    /// Wall-time threshold above which a trace is always retained
    /// (`--trace-slow-ms`).
    pub slow: Duration,
    /// The K slowest traces of each window are retained even below the
    /// threshold; the window rolls on [`TraceStore::roll_window`]
    /// (driven by the serve monitor tick).
    pub slow_k: usize,
}

impl Default for TraceStoreConfig {
    fn default() -> Self {
        TraceStoreConfig {
            capacity: 512,
            sample: 0.01,
            slow: Duration::from_millis(100),
            slow_k: 8,
        }
    }
}

/// Deterministic per-trace-id sampling coin: hash the id through
/// splitmix64 and compare the top 53 bits against `rate`. No RNG state,
/// so retention decisions are reproducible for a fixed id sequence.
pub fn trace_sampled(trace_id: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    let mut x = trace_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64 / (1u64 << 53) as f64) < rate
}

/// Rolling top-K tracker of the slowest wall times seen this window.
struct SlowWindow {
    k: usize,
    /// Ascending wall times of the current window's top-K.
    slowest: Vec<u64>,
}

impl SlowWindow {
    /// True when `total_ns` belongs to the window's top-K (and records
    /// it).
    fn qualifies(&mut self, total_ns: u64) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.slowest.len() < self.k {
            let at = self.slowest.partition_point(|&v| v < total_ns);
            self.slowest.insert(at, total_ns);
            return true;
        }
        if total_ns > self.slowest[0] {
            self.slowest.remove(0);
            let at = self.slowest.partition_point(|&v| v < total_ns);
            self.slowest.insert(at, total_ns);
            return true;
        }
        false
    }
}

/// The bounded, lock-striped ring of retained [`RequestTrace`]s with
/// tail-based sampling (see the module docs for the policy).
pub struct TraceStore {
    stripes: [Mutex<VecDeque<Arc<RequestTrace>>>; N_TRACE_STRIPES],
    per_stripe_capacity: usize,
    config: TraceStoreConfig,
    window: Mutex<SlowWindow>,
    retained: AtomicU64,
    dropped: AtomicU64,
    evicted: AtomicU64,
}

impl TraceStore {
    pub fn new(config: TraceStoreConfig) -> TraceStore {
        TraceStore {
            stripes: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            per_stripe_capacity: config.capacity.div_ceil(N_TRACE_STRIPES).max(1),
            window: Mutex::new(SlowWindow {
                k: config.slow_k,
                slowest: Vec::new(),
            }),
            config,
            retained: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &TraceStoreConfig {
        &self.config
    }

    fn stripe(&self, trace_id: u64) -> &Mutex<VecDeque<Arc<RequestTrace>>> {
        &self.stripes[(trace_id as usize) % N_TRACE_STRIPES]
    }

    /// The tail-sampling decision: offers a finished trace for
    /// retention. Errors and quarantined requests are always kept;
    /// traces at or above the slow threshold and the window's slowest K
    /// are kept; the rest survive a deterministic `sample` coin. Returns
    /// whether the trace was retained.
    pub fn offer(&self, trace: RequestTrace) -> bool {
        let slow_ns = u64::try_from(self.config.slow.as_nanos()).unwrap_or(u64::MAX);
        let retain = trace.error
            || trace.quarantined
            || trace.total_ns >= slow_ns
            || self.window.lock().qualifies(trace.total_ns)
            || trace_sampled(trace.trace_id, self.config.sample);
        if !retain {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut ring = self.stripe(trace.trace_id).lock();
        if ring.len() >= self.per_stripe_capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(Arc::new(trace));
        self.retained.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Rolls the slowest-K window (the serve monitor calls this each
    /// tick, so "slowest K per window" means per monitor interval).
    pub fn roll_window(&self) {
        self.window.lock().slowest.clear();
    }

    /// Fetches a retained trace by id.
    pub fn get(&self, trace_id: u64) -> Option<Arc<RequestTrace>> {
        self.stripe(trace_id)
            .lock()
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// The `n` slowest retained traces, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<Arc<RequestTrace>> {
        let mut all = self.all();
        all.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.trace_id.cmp(&b.trace_id)));
        all.truncate(n);
        all
    }

    /// Every retained error/quarantined trace, oldest trace id first.
    pub fn errors(&self) -> Vec<Arc<RequestTrace>> {
        let mut out: Vec<Arc<RequestTrace>> = self
            .all()
            .into_iter()
            .filter(|t| t.error || t.quarantined)
            .collect();
        out.sort_by_key(|t| t.trace_id);
        out
    }

    fn all(&self) -> Vec<Arc<RequestTrace>> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            out.extend(stripe.lock().iter().cloned());
        }
        out
    }

    /// Retained traces currently in the ring.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traces retained since start (monotonic, unlike `len`).
    pub fn retained(&self) -> u64 {
        self.retained.load(Ordering::Relaxed)
    }

    /// Traces sampled out by the tail policy.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Retained traces later pushed out by the ring bound.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(trace_id: u64, total_ns: u64) -> RequestTrace {
        RequestTrace {
            trace_id,
            request_id: trace_id,
            row: 3,
            batch_id: Some(1),
            spans: vec![
                TraceSpan {
                    name: Arc::from("request"),
                    parent: None,
                    start_ns: 0,
                    dur_ns: total_ns,
                },
                TraceSpan {
                    name: Arc::from("queue"),
                    parent: Some(0),
                    start_ns: 0,
                    dur_ns: total_ns / 4,
                },
            ],
            counters: TraceCounters {
                store_hits: 2,
                store_misses: 1,
                samples_reused: 10,
                samples_fresh: 5,
                invocations: 6,
            },
            error: false,
            quarantined: false,
            degraded: false,
            total_ns,
            tenant: None,
        }
    }

    fn store(sample: f64, slow_ms: u64, slow_k: usize, capacity: usize) -> TraceStore {
        TraceStore::new(TraceStoreConfig {
            capacity,
            sample,
            slow: Duration::from_millis(slow_ms),
            slow_k,
        })
    }

    #[test]
    fn errors_and_quarantined_are_always_retained() {
        let s = store(0.0, 1_000, 0, 64);
        let mut t = trace(1, 10);
        t.error = true;
        assert!(s.offer(t));
        let mut q = trace(2, 10);
        q.error = true;
        q.quarantined = true;
        assert!(s.offer(q));
        assert!(!s.offer(trace(3, 10)), "fast success sampled out at 0.0");
        assert_eq!(s.retained(), 2);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.errors().len(), 2);
        assert!(s.get(1).is_some() && s.get(2).is_some() && s.get(3).is_none());
    }

    #[test]
    fn slow_threshold_and_window_topk_retain() {
        let s = store(0.0, 1, 2, 64);
        // Above the 1ms threshold: kept.
        assert!(s.offer(trace(1, 5_000_000)));
        // Below threshold but within the window's top-2: kept.
        assert!(s.offer(trace(2, 400_000)));
        assert!(s.offer(trace(3, 500_000)));
        // Slower than the current min of the top-2: replaces it.
        assert!(s.offer(trace(4, 600_000)));
        // Faster than both retained top-K entries: dropped.
        assert!(!s.offer(trace(5, 100_000)));
        s.roll_window();
        // Fresh window: top-K fills again.
        assert!(s.offer(trace(6, 100_000)));
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_calibrated() {
        let s = store(0.25, 1_000_000, 0, 100_000);
        let mut kept = 0usize;
        for id in 1..=4_000u64 {
            if s.offer(trace(id, 10)) {
                kept += 1;
            }
            // The same id must decide the same way every time.
            assert_eq!(trace_sampled(id, 0.25), trace_sampled(id, 0.25));
        }
        let rate = kept as f64 / 4_000.0;
        assert!((0.18..0.32).contains(&rate), "sample rate {rate} off 0.25");
        assert!(trace_sampled(7, 1.0));
        assert!(!trace_sampled(7, 0.0));
    }

    #[test]
    fn ring_bound_evicts_oldest() {
        let s = store(1.0, 1_000_000, 0, 16);
        for id in 1..=200u64 {
            assert!(s.offer(trace(id, 10)));
        }
        assert!(s.len() <= 16);
        assert_eq!(s.evicted(), 200 - s.len() as u64);
        // The newest id on its stripe survives; a long-evicted one is gone.
        assert!(s.get(200).is_some());
        assert!(s.get(1).is_none());
    }

    #[test]
    fn slowest_sorts_descending() {
        let s = store(1.0, 1_000_000_000, 0, 64);
        for (id, ns) in [(1u64, 100u64), (2, 900), (3, 500)] {
            s.offer(trace(id, ns));
        }
        let got: Vec<u64> = s.slowest(2).iter().map(|t| t.trace_id).collect();
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn sink_takes_stages_once_and_bounds_ids() {
        let sink = TraceSink::new();
        let t0 = Instant::now();
        sink.push(
            7,
            StageSpan {
                name: "retrieve",
                start: t0,
                dur: Duration::from_micros(5),
                counters: TraceCounters {
                    store_hits: 1,
                    ..TraceCounters::default()
                },
            },
        );
        sink.push(
            7,
            StageSpan {
                name: "explain",
                start: t0,
                dur: Duration::from_micros(50),
                counters: TraceCounters::default(),
            },
        );
        assert_eq!(sink.len(), 1);
        let stages = sink.take(7);
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].name, "retrieve");
        assert!(sink.take(7).is_empty());
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn trace_json_is_single_line_and_balanced() {
        let line = trace(42, 1234).to_json();
        assert!(!line.contains('\n'));
        for key in [
            "\"trace_id\": 42",
            "\"request_id\": 42",
            "\"row\": 3",
            "\"batch_id\": 1",
            "\"total_ns\": 1234",
            "\"store_hits\": 2",
            "\"invocations\": 6",
            "\"spans\": [",
            "\"name\": \"request\"",
            "\"parent\": null",
            "\"parent\": 0",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        let mut unbatched = trace(43, 1);
        unbatched.batch_id = None;
        assert!(unbatched.to_json().contains("\"batch_id\": null"));
    }

    #[test]
    fn tenant_is_serialized_only_when_present() {
        let single = trace(44, 10);
        assert!(!single.to_json().contains("\"tenant\""));
        let mut multi = trace(45, 10);
        multi.tenant = Some(Arc::from("acme"));
        let line = multi.to_json();
        assert!(line.contains("\"tenant\": \"acme\""), "got {line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn chrome_trace_has_metadata_and_one_event_per_span() {
        let doc = trace(9, 2_000_000).to_chrome_trace();
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("\"name\": \"trace 9\""));
        assert_eq!(doc.matches("\"ph\": \"X\"").count(), 2);
        // Root carries the counters; ts is microseconds with ns decimals.
        assert!(doc.contains("\"samples_reused\": 10"));
        assert!(doc.contains("\"ts\": 0.000"));
        assert!(doc.contains("\"dur\": 2000.000"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn context_reparenting_keeps_the_id() {
        let ctx = TraceContext::root(5);
        assert_eq!(ctx.parent, 0);
        let child = ctx.child(2);
        assert_eq!(child.trace_id, 5);
        assert_eq!(child.parent, 2);
    }
}
