//! Observability for the Shahin reproduction: see where every classifier
//! invocation and millisecond goes.
//!
//! The paper's whole value proposition is *accounting* — Figure 5 reports
//! bookkeeping overhead as a percentage of runtime and every experiment is
//! judged by classifier-invocation counts — so the repository carries a
//! first-class, zero-external-dependency metrics layer:
//!
//! * [`MetricsRegistry`] — a lock-striped, thread-safe registry of named
//!   [`Counter`]s, [`Gauge`]s and log2-bucketed latency [`Histogram`]s.
//!   Registration takes a stripe lock once; every subsequent update is a
//!   single relaxed atomic, so the hot paths never serialize on the
//!   registry.
//! * [`Span`] — a lightweight RAII timer ([`span!`]) recording wall time
//!   into a histogram when dropped (or explicitly [`Span::stop`]ped).
//!   Spans taken by parallel workers aggregate into the same histogram,
//!   so per-phase time is the *sum over workers*, the "where did the CPU
//!   go" number.
//! * [`MetricsSnapshot`] — a point-in-time copy of every metric, exported
//!   as a pretty console table ([`MetricsSnapshot::render_table`]) or
//!   machine-readable JSON ([`MetricsSnapshot::to_json`], the
//!   `--metrics-out` format of `shahin-cli` and the bench binaries).
//!
//! * [`EventSink`] — a bounded, lock-striped timeline-event buffer.
//!   Attach one with [`MetricsRegistry::attach_event_sink`] and every
//!   span also lands on a per-worker timeline, exported as Chrome
//!   trace-event JSON ([`EventSink::to_chrome_trace`], the `--trace-out`
//!   format, loadable in Perfetto).
//! * [`ProvenanceSink`] — per-explanation lineage: one
//!   [`ProvenanceRecord`] per tuple (matched itemsets, reused vs fresh
//!   samples, invocations, wall time), exported as JSONL
//!   (`--provenance-out`).
//! * [`TraceContext`] / [`RequestTrace`] / [`TraceStore`] —
//!   request-scoped tracing: a causal span tree per served request
//!   (queue wait, batch, store retrieval, classifier, explainer) with
//!   the key counters, retained in a bounded tail-sampled store (errors
//!   always, slowest K per window, sampled bulk) and renderable as
//!   single-request Chrome-trace JSON. Histogram buckets remember the
//!   last trace id that landed in them ([`Histogram::record_ns_traced`])
//!   as exemplars in both exports (see [`trace`]).
//! * [`WindowedAggregator`] / [`SloTracker`] — live views for
//!   long-running processes: a monitor thread snapshots the registry
//!   every tick and differences consecutive snapshots into a bounded
//!   ring of per-window deltas (counter rates, gauge last-values,
//!   windowed histogram quantiles), from which SLO burn-rate and
//!   error-budget gauges are derived (see [`window`]).
//! * Prometheus text exposition — [`MetricsSnapshot::to_prometheus`]
//!   renders the label-free `# TYPE`/`_total`/`_bucket` wire format for
//!   scrapers, alongside the JSON export (see [`prometheus`]).
//!
//! A registry can also be created [`MetricsRegistry::disabled`]: every
//! handle it vends is a no-op (a `None` inside, checked by one predictable
//! branch), which is how the `bench_obs` binary demonstrates that the
//! instrumentation stays inside the paper's <3% overhead budget.
//!
//! # Naming convention
//!
//! Metric names are dot-separated `phase.subphase` paths. Span histograms
//! are registered under a `span.` prefix (`span!(reg, "fim.mine")` records
//! into the histogram `span.fim.mine`), so exports can tell phase timers
//! from value histograms like `classifier.predict`.

pub mod events;
pub mod fsio;
pub mod json;
pub mod prometheus;
pub mod provenance;
pub mod registry;
pub mod snapshot;
pub mod trace;
pub mod window;

pub use events::{current_thread_id, EventRecord, EventSink, N_EVENT_STRIPES};
pub use fsio::write_atomic;
pub use json::Json;
pub use provenance::{ProvenanceRecord, ProvenanceSink, ProvenanceTotals, N_PROVENANCE_STRIPES};
pub use registry::{
    bucket_index, bucket_upper_ns, Counter, Gauge, Histogram, MetricsRegistry, Span,
    ValueHistogram, N_BUCKETS, N_STRIPES, SPAN_PREFIX,
};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
pub use trace::{
    trace_sampled, RequestTrace, StageSpan, TraceContext, TraceCounters, TraceSink, TraceSpan,
    TraceStore, TraceStoreConfig, N_TRACE_STRIPES,
};
pub use window::{SloConfig, SloStatus, SloTracker, WindowDelta, WindowedAggregator};

/// Starts an RAII span timer on a registry: `span!(reg, "fim.mine")`
/// records elapsed wall time into the histogram `span.fim.mine` when the
/// returned [`Span`] is dropped or [`Span::stop`]ped.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $registry.span($name)
    };
}
