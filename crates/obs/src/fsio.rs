//! Durable single-file writes.
//!
//! Every output file this workspace rewrites in place — `--metrics-out`
//! dumps, `--port-file`, benchmark artifacts, warm-state snapshots — goes
//! through [`write_atomic`]: the bytes land in a same-directory temp file,
//! are fsynced, and are renamed over the target. A concurrent reader sees
//! either the old document or the new one in full, and a crash mid-write
//! (power loss included, thanks to the fsync) can never corrupt the last
//! good copy.

use std::io::{self, Write};
use std::path::Path;

/// Writes `contents` to `path` atomically and durably.
///
/// The bytes are written to a temp file in the target's directory (rename
/// is only atomic within one filesystem), flushed to stable storage with
/// `fsync`, and renamed over `path`. Missing parent directories are
/// created first. The pid suffix on the temp name keeps concurrent
/// processes pointed at the same file from colliding; on any failure the
/// temp file is removed so no debris accumulates.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        // The rename only makes the *name* durable; the data must hit the
        // disk before the rename or a crash could publish an empty file.
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaces_whole_documents_and_leaves_no_debris() {
        let dir = std::env::temp_dir().join(format!("shahin_fsio_{}", std::process::id()));
        let path = dir.join("out.json");
        write_atomic(&path, b"{\"a\": 1}\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"a\": 1}\n");
        write_atomic(&path, b"{\"b\": 2}\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"b\": 2}\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not persist");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = std::env::temp_dir().join(format!("shahin_fsio_deep_{}", std::process::id()));
        let path = dir.join("a/b/out.bin");
        write_atomic(&path, b"x").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"x");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_directoryless_targets() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}
