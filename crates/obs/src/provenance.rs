//! Per-explanation provenance: which materialized itemsets served each
//! tuple, how many samples were reused versus freshly generated, and what
//! the explanation cost.
//!
//! Shahin's claim is an *accounting* claim — explanations get cheaper
//! because perturbations are reused — so every driver can emit one
//! [`ProvenanceRecord`] per explained tuple into a shared, lock-striped
//! [`ProvenanceSink`]. The sink exports JSONL (one record per line, the
//! `--provenance-out` format of `shahin-cli`) and folds totals back into
//! the metrics snapshot as `provenance.*` gauges, so the aggregate
//! counters and the per-tuple lineage can be reconciled against each
//! other (the `tests/obs_properties.rs` invariants).
//!
//! Collection is disabled by default: a registry without an attached sink
//! costs drivers one `Option` check per tuple.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::events::current_thread_id;

/// Stripe count; records are striped by the recording thread.
pub const N_PROVENANCE_STRIPES: usize = 16;

/// Default per-stripe record capacity (16 stripes × 65 536 ≈ 1M tuples).
pub const DEFAULT_RECORDS_PER_STRIPE: usize = 1 << 16;

/// Lineage of one explained tuple.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProvenanceRecord {
    /// Batch row index of the explained tuple.
    pub tuple: u32,
    /// Driver name, e.g. `Shahin-Batch` or `Shahin-Batch-Par4`.
    pub method: Arc<str>,
    /// Explainer name: `LIME`, `Anchor`, or `SHAP`.
    pub explainer: Arc<str>,
    /// Streaming refresh epoch the tuple was explained in (0 for batch).
    pub epoch: u64,
    /// Worker thread id ([`current_thread_id`]).
    pub thread: u64,
    /// Ids of the materialized frequent itemsets the tuple matched.
    pub matched_itemsets: Vec<u32>,
    /// Store index probes that found no materialized entry.
    pub store_misses: u64,
    /// Materialized samples available across the matched itemsets.
    pub samples_available: u64,
    /// Perturbations served from the store (no classifier call).
    pub samples_reused: u64,
    /// Perturbations generated and labeled for this tuple.
    pub samples_fresh: u64,
    /// The tuple's perturbation budget: `samples_reused + samples_fresh`.
    pub tau: u64,
    /// Classifier invocations consumed by this tuple (fresh samples plus
    /// the probe on the instance itself).
    pub invocations: u64,
    /// Anchor shard-cache hits while explaining this tuple (0 for
    /// LIME/SHAP).
    pub cache_hits: u64,
    /// Anchor shard-cache misses (bootstraps) for this tuple.
    pub cache_misses: u64,
    /// Wall time spent explaining this tuple, nanoseconds.
    pub wall_ns: u64,
    /// Whether the resilient classifier boundary degraded this tuple's
    /// explanation (absorbed retries, sanitized a non-probability
    /// output). The explanation is still deterministic for a fixed fault
    /// schedule, but it was produced under duress.
    pub degraded: bool,
    /// Serving request id that asked for this explanation (`shahin-serve`
    /// only; `None` — and omitted from the JSONL — for offline drivers).
    pub request: Option<u64>,
    /// Trace id of the serving request, joining this row against the
    /// retained [`crate::trace::RequestTrace`]s (`None` — and omitted
    /// from the JSONL — when the request was untraced or offline).
    pub trace_id: Option<u64>,
    /// Tenant the explaining engine belongs to (`None` — and omitted
    /// from the JSONL — for offline drivers and single-tenant serving).
    pub tenant: Option<Arc<str>>,
}

impl ProvenanceRecord {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        write!(
            out,
            "\"tuple\": {}, \"method\": \"{}\", \"explainer\": \"{}\", \"epoch\": {}, \"thread\": {}",
            self.tuple,
            escape(&self.method),
            escape(&self.explainer),
            self.epoch,
            self.thread
        )
        .unwrap();
        out.push_str(", \"matched_itemsets\": [");
        for (i, id) in self.matched_itemsets.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "{id}").unwrap();
        }
        write!(
            out,
            "], \"store_misses\": {}, \"samples_available\": {}, \"samples_reused\": {}, \
             \"samples_fresh\": {}, \"tau\": {}, \"invocations\": {}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"wall_ns\": {}, \"degraded\": {}}}",
            self.store_misses,
            self.samples_available,
            self.samples_reused,
            self.samples_fresh,
            self.tau,
            self.invocations,
            self.cache_hits,
            self.cache_misses,
            self.wall_ns,
            self.degraded
        )
        .unwrap();
        if let Some(request) = self.request {
            // Truncate the closing brace, append the optional key, re-close.
            out.pop();
            write!(out, ", \"request\": {request}}}").unwrap();
        }
        if let Some(trace_id) = self.trace_id {
            out.pop();
            write!(out, ", \"trace_id\": {trace_id}}}").unwrap();
        }
        if let Some(tenant) = &self.tenant {
            out.pop();
            write!(out, ", \"tenant\": \"{}\"}}", escape(tenant)).unwrap();
        }
        out
    }
}

/// Aggregate of every record in a sink; the numbers folded into the
/// metrics snapshot as `provenance.*` gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProvenanceTotals {
    pub records: u64,
    pub matched_itemsets: u64,
    pub store_misses: u64,
    pub samples_available: u64,
    pub samples_reused: u64,
    pub samples_fresh: u64,
    pub invocations: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Records with the `degraded` flag set.
    pub degraded: u64,
}

impl ProvenanceTotals {
    fn absorb(&mut self, r: &ProvenanceRecord) {
        self.records += 1;
        self.matched_itemsets += r.matched_itemsets.len() as u64;
        self.store_misses += r.store_misses;
        self.samples_available += r.samples_available;
        self.samples_reused += r.samples_reused;
        self.samples_fresh += r.samples_fresh;
        self.invocations += r.invocations;
        self.cache_hits += r.cache_hits;
        self.cache_misses += r.cache_misses;
        self.degraded += u64::from(r.degraded);
    }
}

/// A bounded, lock-striped collector of [`ProvenanceRecord`]s.
pub struct ProvenanceSink {
    stripes: [Mutex<Vec<ProvenanceRecord>>; N_PROVENANCE_STRIPES],
    per_stripe_capacity: usize,
    dropped: AtomicU64,
}

impl Default for ProvenanceSink {
    fn default() -> Self {
        ProvenanceSink::new()
    }
}

impl ProvenanceSink {
    /// A sink with the default capacity ([`DEFAULT_RECORDS_PER_STRIPE`]).
    pub fn new() -> ProvenanceSink {
        ProvenanceSink::with_capacity(DEFAULT_RECORDS_PER_STRIPE)
    }

    /// A sink holding at most `per_stripe_capacity` records per stripe;
    /// overflow is counted in [`ProvenanceSink::dropped`] and discarded.
    pub fn with_capacity(per_stripe_capacity: usize) -> ProvenanceSink {
        ProvenanceSink {
            stripes: std::array::from_fn(|_| Mutex::new(Vec::new())),
            per_stripe_capacity: per_stripe_capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records one tuple's lineage. Striped by the calling thread, so
    /// parallel workers rarely contend.
    pub fn push(&self, record: ProvenanceRecord) {
        let stripe = &self.stripes[(current_thread_id() as usize) % N_PROVENANCE_STRIPES];
        let mut buf = stripe.lock();
        if buf.len() >= self.per_stripe_capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.push(record);
        }
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records discarded because their stripe was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of every record, sorted by `(tuple, epoch)` so exports are
    /// deterministic regardless of worker interleaving.
    pub fn records(&self) -> Vec<ProvenanceRecord> {
        let mut out: Vec<ProvenanceRecord> = Vec::with_capacity(self.len());
        for stripe in &self.stripes {
            out.extend(stripe.lock().iter().cloned());
        }
        out.sort_by_key(|r| (r.tuple, r.epoch));
        out
    }

    /// Aggregate totals over every buffered record.
    pub fn totals(&self) -> ProvenanceTotals {
        let mut t = ProvenanceTotals::default();
        for stripe in &self.stripes {
            for r in stripe.lock().iter() {
                t.absorb(r);
            }
        }
        t
    }

    /// Renders every record as JSON Lines (one object per line, sorted by
    /// tuple), the `--provenance-out` file format.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

use crate::json::escape;

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tuple: u32, reused: u64, fresh: u64) -> ProvenanceRecord {
        ProvenanceRecord {
            tuple,
            method: Arc::from("Shahin-Batch"),
            explainer: Arc::from("LIME"),
            matched_itemsets: vec![1, 4],
            samples_available: reused,
            samples_reused: reused,
            samples_fresh: fresh,
            tau: reused + fresh,
            invocations: fresh + 1,
            wall_ns: 42,
            ..ProvenanceRecord::default()
        }
    }

    #[test]
    fn records_sort_by_tuple_and_totals_add_up() {
        let sink = ProvenanceSink::new();
        sink.push(record(5, 10, 20));
        sink.push(record(2, 7, 3));
        let recs = sink.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].tuple, 2);
        assert_eq!(recs[1].tuple, 5);
        let t = sink.totals();
        assert_eq!(t.records, 2);
        assert_eq!(t.samples_reused, 17);
        assert_eq!(t.samples_fresh, 23);
        assert_eq!(t.invocations, 25);
        assert_eq!(t.matched_itemsets, 4);
    }

    #[test]
    fn jsonl_has_one_line_per_record_with_required_keys() {
        let sink = ProvenanceSink::new();
        sink.push(record(0, 1, 2));
        sink.push(record(1, 3, 4));
        let jsonl = sink.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            for key in [
                "\"tuple\"",
                "\"method\"",
                "\"explainer\"",
                "\"epoch\"",
                "\"thread\"",
                "\"matched_itemsets\"",
                "\"store_misses\"",
                "\"samples_available\"",
                "\"samples_reused\"",
                "\"samples_fresh\"",
                "\"tau\"",
                "\"invocations\"",
                "\"cache_hits\"",
                "\"cache_misses\"",
                "\"wall_ns\"",
                "\"degraded\"",
            ] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn bounded_capacity_counts_drops() {
        let sink = ProvenanceSink::with_capacity(1);
        sink.push(record(0, 0, 1));
        sink.push(record(1, 0, 1));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn reuse_invariant_holds_by_construction() {
        let r = record(9, 12, 30);
        assert_eq!(r.samples_reused + r.samples_fresh, r.tau);
    }

    #[test]
    fn request_id_is_serialized_only_when_present() {
        let offline = record(0, 1, 2);
        assert!(!offline.to_json().contains("\"request\""));
        let mut served = record(1, 3, 4);
        served.request = Some(97);
        let line = served.to_json();
        assert!(line.ends_with(", \"request\": 97}"), "got {line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn trace_id_is_serialized_only_when_present() {
        let untraced = record(0, 1, 2);
        assert!(!untraced.to_json().contains("\"trace_id\""));
        let mut traced = record(1, 3, 4);
        traced.request = Some(97);
        traced.trace_id = Some(12);
        let line = traced.to_json();
        assert!(
            line.ends_with(", \"request\": 97, \"trace_id\": 12}"),
            "got {line}"
        );
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        // A traced record without a request id still serializes cleanly.
        let mut only_trace = record(2, 1, 1);
        only_trace.trace_id = Some(5);
        assert!(only_trace.to_json().ends_with(", \"trace_id\": 5}"));
    }

    #[test]
    fn tenant_is_serialized_only_when_present() {
        let single = record(0, 1, 2);
        assert!(!single.to_json().contains("\"tenant\""));
        let mut multi = record(1, 3, 4);
        multi.request = Some(8);
        multi.tenant = Some(Arc::from("acme"));
        let line = multi.to_json();
        assert!(
            line.ends_with(", \"request\": 8, \"tenant\": \"acme\"}"),
            "got {line}"
        );
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }
}
