//! Point-in-time exports of a [`crate::MetricsRegistry`]: JSON for
//! machines (`--metrics-out`), a console table for humans.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::{bucket_upper_ns, SPAN_PREFIX};

/// Frozen state of one histogram. `buckets` holds only the non-empty
/// buckets as `(bucket_index, count)` pairs; the upper bound of bucket `i`
/// is [`bucket_upper_ns`]`(i)`. The same shape freezes both kinds of
/// histogram: for a unitless value histogram the `_ns`-suffixed fields
/// carry plain values, and the exporters label them accordingly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_ns: u64,
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile `q` in [0, 1]: the upper bound of the bucket
    /// containing the q-th sample, or `None` when the histogram is empty
    /// (matching [`crate::registry::Histogram::quantile_ns`]). Log2
    /// buckets make this exact to within a factor of 2, which is plenty
    /// for latency tails.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_ns(i));
            }
        }
        self.buckets.last().map(|&(i, _)| bucket_upper_ns(i))
    }
}

/// A point-in-time copy of every metric in a registry. Maps are ordered
/// so exports are deterministic.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    /// Nanosecond-valued histograms (latency, wall time).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Unitless value histograms (batch sizes, counts); exported without
    /// time semantics.
    pub value_histograms: BTreeMap<String, HistogramSnapshot>,
    /// Per-histogram bucket exemplars: `(bucket_index, trace_id)` pairs
    /// recording the last trace id whose sample landed in each bucket
    /// (see [`crate::Histogram::record_ns_traced`]). Only histograms
    /// that saw at least one traced sample appear.
    pub exemplars: BTreeMap<String, Vec<(usize, u64)>>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Total wall seconds recorded under span `name` (summed over
    /// workers; 0 when the span never fired).
    pub fn span_secs(&self, name: &str) -> f64 {
        self.histograms
            .get(&format!("{SPAN_PREFIX}{name}"))
            .map_or(0.0, |h| h.sum_ns as f64 / 1e9)
    }

    /// Serializes the snapshot as JSON. Hand-rolled — metric names are
    /// dot-separated identifiers, never in need of escaping, and the repo
    /// carries no serde.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_map(&mut out, self.counters.iter().map(|(k, v)| (k, *v)));
        out.push_str("},\n  \"gauges\": {");
        push_map(&mut out, self.gauges.iter().map(|(k, v)| (k, *v)));
        out.push_str("},\n  \"histograms\": {");
        push_histograms(&mut out, &self.histograms, "ns");
        out.push_str("},\n  \"value_histograms\": {");
        push_histograms(&mut out, &self.value_histograms, "");
        out.push_str("},\n  \"exemplars\": {");
        self.push_exemplars(&mut out);
        out.push_str("}\n}\n");
        out
    }

    /// Serializes the exemplar map: per histogram, one object per
    /// stamped bucket with the bucket's upper bound (in the histogram's
    /// own unit) and the last trace id that landed there.
    fn push_exemplars(&self, out: &mut String) {
        let mut first = true;
        for (name, pairs) in &self.exemplars {
            if !first {
                out.push(',');
            }
            first = false;
            let suffix = if self.value_histograms.contains_key(name) {
                ""
            } else {
                "_ns"
            };
            write!(out, "\n    \"{}\": [", escape(name)).unwrap();
            for (j, &(i, id)) in pairs.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let le = bucket_upper_ns(i);
                if le == u64::MAX {
                    write!(out, "{{\"le{suffix}\": null, \"trace_id\": {id}}}").unwrap();
                } else {
                    write!(out, "{{\"le{suffix}\": {le}, \"trace_id\": {id}}}").unwrap();
                }
            }
            out.push(']');
        }
        if !first {
            out.push_str("\n  ");
        }
    }

    /// Renders the snapshot as aligned console tables: spans (phase wall
    /// time), counters, gauges, then value histograms.
    pub fn render_table(&self) -> String {
        let mut out = String::new();

        let spans: Vec<(&String, &HistogramSnapshot)> = self
            .histograms
            .iter()
            .filter(|(k, _)| k.starts_with(SPAN_PREFIX))
            .collect();
        if !spans.is_empty() {
            out.push_str("spans (wall time summed over workers)\n");
            out.push_str(&format!(
                "  {:<28} {:>8} {:>12} {:>12} {:>12}\n",
                "phase", "count", "total", "mean", "~p99"
            ));
            for (name, h) in &spans {
                out.push_str(&format!(
                    "  {:<28} {:>8} {:>12} {:>12} {:>12}\n",
                    &name[SPAN_PREFIX.len()..],
                    h.count,
                    fmt_ns(h.sum_ns),
                    fmt_ns(h.mean_ns()),
                    fmt_ns_opt(h.quantile_ns(0.99)),
                ));
            }
        }

        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<40} {v:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} {v:>12}\n"));
            }
        }

        let values: Vec<(&String, &HistogramSnapshot)> = self
            .histograms
            .iter()
            .filter(|(k, _)| !k.starts_with(SPAN_PREFIX))
            .collect();
        if !values.is_empty() {
            out.push_str("latency histograms\n");
            out.push_str(&format!(
                "  {:<28} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                "name", "count", "total", "mean", "~p50", "~p99"
            ));
            for (name, h) in &values {
                out.push_str(&format!(
                    "  {:<28} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                    name,
                    h.count,
                    fmt_ns(h.sum_ns),
                    fmt_ns(h.mean_ns()),
                    fmt_ns_opt(h.quantile_ns(0.5)),
                    fmt_ns_opt(h.quantile_ns(0.99)),
                ));
            }
        }

        if !self.value_histograms.is_empty() {
            out.push_str("value histograms (unitless)\n");
            out.push_str(&format!(
                "  {:<28} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                "name", "count", "total", "mean", "~p50", "~p99"
            ));
            for (name, h) in &self.value_histograms {
                out.push_str(&format!(
                    "  {:<28} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                    name,
                    h.count,
                    h.sum_ns,
                    h.mean_ns(),
                    fmt_plain_opt(h.quantile_ns(0.5)),
                    fmt_plain_opt(h.quantile_ns(0.99)),
                ));
            }
        }
        out
    }
}

/// Serializes one histogram map. `unit` suffixes the field names:
/// `"ns"` yields `sum_ns`/`mean_ns`/`le_ns` for time histograms, `""`
/// yields `sum`/`mean`/`le` for unitless value histograms.
fn push_histograms(out: &mut String, hists: &BTreeMap<String, HistogramSnapshot>, unit: &str) {
    let suffix = if unit.is_empty() {
        String::new()
    } else {
        format!("_{unit}")
    };
    let mut first = true;
    for (name, h) in hists {
        if !first {
            out.push(',');
        }
        first = false;
        write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"sum{suffix}\": {}, \"mean{suffix}\": {}, \"buckets\": [",
            escape(name),
            h.count,
            h.sum_ns,
            h.mean_ns()
        )
        .unwrap();
        for (j, &(i, n)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let le = bucket_upper_ns(i);
            if le == u64::MAX {
                write!(out, "{{\"le{suffix}\": null, \"count\": {n}}}").unwrap();
            } else {
                write!(out, "{{\"le{suffix}\": {le}, \"count\": {n}}}").unwrap();
            }
        }
        out.push_str("]}");
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, u64)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        write!(out, "\n    \"{}\": {}", escape(k), v).unwrap();
    }
    if !first {
        out.push_str("\n  ");
    }
}

// Metric names are plain identifiers, but escape defensively anyway.
use crate::json::escape;

/// Plain value rendering for unitless histograms (the catch-all bucket
/// still reads "inf").
fn fmt_plain(v: u64) -> String {
    if v == u64::MAX {
        "inf".to_string()
    } else {
        v.to_string()
    }
}

/// Quantile rendering: an empty histogram has no quantiles, shown as "-".
fn fmt_plain_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), fmt_plain)
}

fn fmt_ns_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), fmt_ns)
}

/// Human-scaled duration: ns → µs → ms → s.
fn fmt_ns(ns: u64) -> String {
    match ns {
        n if n == u64::MAX => "inf".to_string(),
        n if n < 1_000 => format!("{n}ns"),
        n if n < 1_000_000 => format!("{:.1}us", n as f64 / 1e3),
        n if n < 1_000_000_000 => format!("{:.1}ms", n as f64 / 1e6),
        n => format!("{:.2}s", n as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("store.hits").add(7);
        reg.counter("store.misses").add(3);
        reg.gauge("store.resident_bytes").set(4096);
        let h = reg.histogram("classifier.predict");
        h.record_ns(900);
        h.record_ns(1_500);
        h.record_ns(1_500_000);
        reg.span_histogram("fim.mine").record_ns(2_000_000);
        let v = reg.value_histogram("serve.batch_size");
        v.record(4);
        v.record(32);
        reg.snapshot()
    }

    #[test]
    fn json_has_all_sections_and_parses_shapewise() {
        let json = sample_snapshot().to_json();
        for needle in [
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"store.hits\": 7",
            "\"store.misses\": 3",
            "\"store.resident_bytes\": 4096",
            "\"classifier.predict\"",
            "\"span.fim.mine\"",
            "\"count\": 3",
            "\"le_ns\":",
            "\"value_histograms\"",
            "\"serve.batch_size\": {\"count\": 2, \"sum\": 36, \"mean\": 18",
            "\"le\": 7",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces/brackets — cheap structural sanity without a parser.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_snapshot_is_valid_json_shape() {
        let json = MetricsSnapshot::default().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
        assert!(json.contains("\"value_histograms\": {}"));
        assert!(json.contains("\"exemplars\": {}"));
    }

    #[test]
    fn exemplars_export_bucket_bounds_and_trace_ids() {
        let reg = MetricsRegistry::new();
        reg.histogram("serve.request_latency")
            .record_ns_traced(900, 17);
        reg.histogram("serve.request_latency")
            .record_ns_traced(u64::MAX, 23);
        reg.value_histogram("serve.batch_size").record(4);
        let json = reg.snapshot().to_json();
        // ns-unit bound for the time histogram; catch-all renders null.
        assert!(json.contains("\"exemplars\""), "{json}");
        assert!(
            json.contains("{\"le_ns\": 1023, \"trace_id\": 17}"),
            "{json}"
        );
        assert!(
            json.contains("{\"le_ns\": null, \"trace_id\": 23}"),
            "{json}"
        );
        // Untraced histograms contribute no exemplar entries.
        assert!(!json.contains("\"serve.batch_size\": ["), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn accessors_default_to_zero() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("store.hits"), 7);
        assert_eq!(snap.counter("nope"), 0);
        assert_eq!(snap.gauge("nope"), 0);
        assert_eq!(snap.span_secs("nope"), 0.0);
        assert!((snap.span_secs("fim.mine") - 0.002).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let snap = sample_snapshot();
        let h = &snap.histograms["classifier.predict"];
        assert_eq!(h.count, 3);
        assert!(h.quantile_ns(0.0).unwrap() >= 900);
        assert!(h.quantile_ns(1.0).unwrap() >= 1_500_000);
        let p50 = h.quantile_ns(0.5).unwrap();
        assert!((1_500..1_500_000).contains(&p50));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        // Matches registry::Histogram::quantile_ns: empty means None, not
        // a conjured 0 that downstream math would mistake for "fast".
        let h = HistogramSnapshot::default();
        assert_eq!(h.quantile_ns(0.0), None);
        assert_eq!(h.quantile_ns(0.5), None);
        assert_eq!(h.quantile_ns(1.0), None);
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn single_sample_quantiles_all_land_in_its_bucket() {
        let reg = MetricsRegistry::new();
        reg.histogram("solo").record_ns(900);
        let snap = reg.snapshot();
        let h = &snap.histograms["solo"];
        assert_eq!(h.count, 1);
        let expected = crate::registry::bucket_upper_ns(crate::registry::bucket_index(900));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), Some(expected), "q={q}");
        }
        // Non-finite q clamps rather than panicking, same as the registry.
        assert_eq!(h.quantile_ns(f64::NAN), Some(expected));
    }

    #[test]
    fn table_renders_all_sections() {
        let table = sample_snapshot().render_table();
        assert!(table.contains("spans"));
        assert!(table.contains("fim.mine"));
        assert!(table.contains("counters"));
        assert!(table.contains("store.hits"));
        assert!(table.contains("gauges"));
        assert!(table.contains("latency histograms"));
        assert!(table.contains("classifier.predict"));
        // Value histograms render unit-free: a batch size of 32 must not
        // pick up a nanosecond suffix.
        assert!(table.contains("value histograms (unitless)"));
        assert!(table.contains("serve.batch_size"));
        let batch_line = table
            .lines()
            .find(|l| l.contains("serve.batch_size"))
            .unwrap();
        assert!(!batch_line.contains("ns") && !batch_line.contains("us"));
    }

    #[test]
    fn escape_handles_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("plain.name"), "plain.name");
    }
}
