//! The lock-striped metrics registry and its metric handles.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! of the registered cell: callers resolve a name once (one stripe lock)
//! and update lock-free afterwards. Handles from a
//! [`MetricsRegistry::disabled`] registry carry no cell and every update
//! is a no-op behind a single predictable branch.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use crate::events::EventSink;
use crate::provenance::ProvenanceSink;
use crate::trace::TraceSink;

/// Number of name-keyed stripes. Registration is rare (handles are cached
/// by the instrumented structures), so this only needs to keep concurrent
/// *registration* bursts from serializing.
pub const N_STRIPES: usize = 16;

/// Number of log2 histogram buckets. Bucket `i ≥ 1` counts samples in
/// `[2^(i-1), 2^i)` nanoseconds; bucket 0 counts zeros; the last bucket is
/// a catch-all for everything at or above `2^(N_BUCKETS-2)`.
pub const N_BUCKETS: usize = 64;

/// Prefix under which [`MetricsRegistry::span`] registers its histograms.
pub const SPAN_PREFIX: &str = "span.";

/// The bucket a value falls into: its bit length, clamped to the catch-all.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(N_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i`, in nanoseconds.
#[inline]
pub fn bucket_upper_ns(i: usize) -> u64 {
    if i >= N_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The shared cell behind a [`Histogram`] handle.
pub(crate) struct HistogramCell {
    pub(crate) count: AtomicU64,
    pub(crate) sum_ns: AtomicU64,
    pub(crate) buckets: [AtomicU64; N_BUCKETS],
    /// Exemplars: per bucket, the last nonzero trace id whose sample
    /// landed there (0 = none yet). Written only by the traced record
    /// path, so untraced hot paths never touch this array.
    pub(crate) exemplars: [AtomicU64; N_BUCKETS],
}

impl HistogramCell {
    fn new() -> HistogramCell {
        HistogramCell {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A monotonically increasing counter. No-op when detached.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached handle: every update is a no-op, `get` returns 0.
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// True when updates actually land somewhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a detached handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(_) => write!(f, "Counter({})", self.get()),
            None => write!(f, "Counter(noop)"),
        }
    }
}

/// A last-value / high-watermark gauge. No-op when detached.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A detached handle.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// True when updates actually land somewhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if it is below (high-watermark semantics).
    #[inline]
    pub fn max(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a detached handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(_) => write!(f, "Gauge({})", self.get()),
            None => write!(f, "Gauge(noop)"),
        }
    }
}

/// The timeline-event context a span histogram carries when an
/// [`EventSink`] is attached to its registry: the sink plus the interned
/// phase name, resolved once at registration so span drops on the hot
/// path never touch the registry again.
#[derive(Clone)]
pub(crate) struct EventContext {
    pub(crate) sink: Arc<EventSink>,
    pub(crate) phase: Arc<str>,
}

/// A log2-bucketed histogram of nanosecond values. No-op when detached.
#[derive(Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
    /// Present only for span histograms from a registry with an attached
    /// [`EventSink`]; spans then also emit timeline events on drop.
    pub(crate) events: Option<EventContext>,
}

impl Histogram {
    /// A detached handle.
    pub fn noop() -> Histogram {
        Histogram {
            cell: None,
            events: None,
        }
    }

    /// True when samples actually land somewhere. Hot paths use this to
    /// skip even the `Instant::now` calls when observability is off.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Records one sample of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if let Some(cell) = &self.cell {
            cell.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Records one duration sample.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one sample and stamps `trace_id` as the exemplar of the
    /// bucket it lands in (a `trace_id` of 0 means "untraced" and only
    /// records the sample). Snapshots export the exemplars so operators
    /// can jump from a latency bucket to a concrete retained trace.
    #[inline]
    pub fn record_ns_traced(&self, ns: u64, trace_id: u64) {
        if let Some(cell) = &self.cell {
            let i = bucket_index(ns);
            cell.buckets[i].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum_ns.fetch_add(ns, Ordering::Relaxed);
            if trace_id != 0 {
                cell.exemplars[i].store(trace_id, Ordering::Relaxed);
            }
        }
    }

    /// Duration-flavored [`Histogram::record_ns_traced`].
    #[inline]
    pub fn record_traced(&self, d: Duration, trace_id: u64) {
        self.record_ns_traced(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX), trace_id);
    }

    /// Starts an RAII span recording into this histogram when dropped.
    /// Pre-resolving the histogram and calling `start()` per iteration
    /// avoids re-hashing the name on hot loops.
    #[inline]
    pub fn start(&self) -> Span {
        Span {
            hist: self.clone(),
            start: Instant::now(),
            armed: true,
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of all samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.sum_ns.load(Ordering::Relaxed))
    }

    /// Mean sample value in nanoseconds. An empty (or detached) histogram
    /// reports 0, never NaN — summaries must stay finite for JSON export.
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns().checked_div(self.count()).unwrap_or(0)
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the log2
    /// bucket holding the q-th sample, or `None` when the histogram is
    /// empty or detached (callers must not conjure a percentile out of
    /// zero samples). A non-finite `q` is treated as 0; samples in the
    /// saturating catch-all bucket report `u64::MAX` ("inf").
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let cell = self.cell.as_ref()?;
        let count = cell.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        let mut last_nonempty = 0usize;
        for (i, b) in cell.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                last_nonempty = i;
            }
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_ns(i));
            }
        }
        // Racing writers may have bumped `count` before their bucket:
        // fall back to the highest populated bucket.
        Some(bucket_upper_ns(last_nonempty))
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.cell {
            Some(_) => write!(f, "Histogram(n={}, sum_ns={})", self.count(), self.sum_ns()),
            None => write!(f, "Histogram(noop)"),
        }
    }
}

/// A log2-bucketed histogram of *unitless* values (counts, sizes) — the
/// same cell layout as [`Histogram`] but exported without nanosecond
/// semantics, so e.g. a batch-size distribution never renders with time
/// units. No-op when detached.
#[derive(Clone, Default)]
pub struct ValueHistogram(Option<Arc<HistogramCell>>);

impl ValueHistogram {
    /// A detached handle.
    pub fn noop() -> ValueHistogram {
        ValueHistogram(None)
    }

    /// True when samples actually land somewhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum_ns.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.sum_ns.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for ValueHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(_) => write!(f, "ValueHistogram(n={}, sum={})", self.count(), self.sum()),
            None => write!(f, "ValueHistogram(noop)"),
        }
    }
}

/// An RAII wall-time span. Records its elapsed time into the backing
/// histogram on drop; [`Span::stop`] records eagerly and returns the
/// elapsed duration (which is measured even for a detached histogram, so
/// callers can reuse the span as their local timer).
pub struct Span {
    hist: Histogram,
    start: Instant,
    armed: bool,
}

impl Span {
    /// Elapsed time so far, without stopping the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stops the span, records the sample, and returns the elapsed time.
    pub fn stop(mut self) -> Duration {
        self.armed = false;
        self.finish()
    }

    /// Records into the histogram and, when the backing registry has an
    /// attached [`EventSink`], pushes one complete timeline event. With no
    /// sink attached this is the same single-branch cost as before.
    fn finish(&mut self) -> Duration {
        let d = self.start.elapsed();
        self.hist.record(d);
        if let Some(ev) = &self.hist.events {
            ev.sink.complete(
                &ev.phase,
                ev.sink.ns_since_epoch(self.start),
                u64::try_from(d.as_nanos()).unwrap_or(u64::MAX),
            );
        }
        d
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            self.finish();
        }
    }
}

/// What a name is registered as. Mixing kinds under one name is a
/// programming error and panics at registration time.
#[derive(Clone)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
    ValueHistogram(Arc<HistogramCell>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
            Slot::ValueHistogram(_) => "value histogram",
        }
    }
}

struct Inner {
    enabled: bool,
    stripes: [Mutex<HashMap<String, Slot>>; N_STRIPES],
    /// Timeline-event sink; spans emit trace events only while attached.
    events: RwLock<Option<Arc<EventSink>>>,
    /// Per-tuple provenance sink; drivers record lineage only while
    /// attached.
    provenance: RwLock<Option<Arc<ProvenanceSink>>>,
    /// Per-request stage-span sink; engine workers record trace stages
    /// only while attached.
    traces: RwLock<Option<Arc<TraceSink>>>,
}

/// A lock-striped, thread-safe registry of named metrics. Cloning shares
/// the underlying storage (`Arc` semantics), so one registry can be handed
/// to every phase of a run and snapshotted at the end.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n: usize = self.inner.stripes.iter().map(|s| s.lock().len()).sum();
        write!(
            f,
            "MetricsRegistry(enabled={}, metrics={n})",
            self.inner.enabled
        )
    }
}

impl MetricsRegistry {
    fn with_enabled(enabled: bool) -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(Inner {
                enabled,
                stripes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
                events: RwLock::new(None),
                provenance: RwLock::new(None),
                traces: RwLock::new(None),
            }),
        }
    }

    /// A live registry: handles record, snapshots see everything.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_enabled(true)
    }

    /// A no-op registry: every handle it vends is detached, snapshots are
    /// empty. This is the "instrumentation compiled out" arm of the
    /// `bench_obs` overhead comparison.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry::with_enabled(false)
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    fn stripe(&self, name: &str) -> &Mutex<HashMap<String, Slot>> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.inner.stripes[h.finish() as usize % N_STRIPES]
    }

    fn slot(&self, name: &str, make: impl FnOnce() -> Slot) -> Option<Slot> {
        if !self.inner.enabled {
            return None;
        }
        let mut stripe = self.stripe(name).lock();
        let slot = stripe.entry(name.to_string()).or_insert_with(make);
        Some(slot.clone())
    }

    /// The counter registered under `name`, creating it on first use.
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.slot(name, || Slot::Counter(Arc::new(AtomicU64::new(0)))) {
            Some(Slot::Counter(cell)) => Counter(Some(cell)),
            Some(other) => panic!("metric '{name}' is a {}, not a counter", other.kind()),
            None => Counter::noop(),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.slot(name, || Slot::Gauge(Arc::new(AtomicU64::new(0)))) {
            Some(Slot::Gauge(cell)) => Gauge(Some(cell)),
            Some(other) => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
            None => Gauge::noop(),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.slot(name, || Slot::Histogram(Arc::new(HistogramCell::new()))) {
            Some(Slot::Histogram(cell)) => Histogram {
                cell: Some(cell),
                events: None,
            },
            Some(other) => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
            None => Histogram::noop(),
        }
    }

    /// The unitless value histogram registered under `name`, creating it
    /// on first use. Distinct from [`MetricsRegistry::histogram`]: its
    /// samples are plain values (batch sizes, counts), and snapshots
    /// export it without nanosecond semantics.
    pub fn value_histogram(&self, name: &str) -> ValueHistogram {
        match self.slot(name, || {
            Slot::ValueHistogram(Arc::new(HistogramCell::new()))
        }) {
            Some(Slot::ValueHistogram(cell)) => ValueHistogram(Some(cell)),
            Some(other) => panic!(
                "metric '{name}' is a {}, not a value histogram",
                other.kind()
            ),
            None => ValueHistogram::noop(),
        }
    }

    /// The histogram backing span `name` (registered as `span.{name}`,
    /// the `phase.subphase` convention). Resolve once outside hot loops,
    /// then [`Histogram::start`] per iteration. When an [`EventSink`] is
    /// attached, the handle also carries the timeline-event context, so
    /// every span started from it lands on the trace with no further
    /// registry traffic.
    pub fn span_histogram(&self, name: &str) -> Histogram {
        let mut h = self.histogram(&format!("{SPAN_PREFIX}{name}"));
        if h.is_enabled() {
            if let Some(sink) = self.event_sink() {
                h.events = Some(EventContext {
                    sink,
                    phase: Arc::from(name),
                });
            }
        }
        h
    }

    /// Attaches a timeline-event sink: from now on, span histograms
    /// resolved from this registry emit trace events (see
    /// [`EventSink::to_chrome_trace`]). Attach *before* drivers resolve
    /// their span handles; ignored on a disabled registry.
    pub fn attach_event_sink(&self, sink: Arc<EventSink>) {
        if self.inner.enabled {
            *self.inner.events.write() = Some(sink);
        }
    }

    /// The attached event sink, if any (always `None` when disabled).
    pub fn event_sink(&self) -> Option<Arc<EventSink>> {
        if !self.inner.enabled {
            return None;
        }
        self.inner.events.read().clone()
    }

    /// Attaches a provenance sink: drivers that see it record one
    /// [`crate::ProvenanceRecord`] per explained tuple. Ignored on a
    /// disabled registry.
    pub fn attach_provenance_sink(&self, sink: Arc<ProvenanceSink>) {
        if self.inner.enabled {
            *self.inner.provenance.write() = Some(sink);
        }
    }

    /// The attached provenance sink, if any (always `None` when disabled).
    pub fn provenance_sink(&self) -> Option<Arc<ProvenanceSink>> {
        if !self.inner.enabled {
            return None;
        }
        self.inner.provenance.read().clone()
    }

    /// Attaches a request-trace stage sink: engine workers that see it
    /// record per-stage [`crate::trace::StageSpan`]s for traced
    /// requests. Ignored on a disabled registry.
    pub fn attach_trace_sink(&self, sink: Arc<TraceSink>) {
        if self.inner.enabled {
            *self.inner.traces.write() = Some(sink);
        }
    }

    /// The attached trace sink, if any (always `None` when disabled).
    pub fn trace_sink(&self) -> Option<Arc<TraceSink>> {
        if !self.inner.enabled {
            return None;
        }
        self.inner.traces.read().clone()
    }

    /// Starts an RAII span recording into `span.{name}` when dropped.
    pub fn span(&self, name: &str) -> Span {
        self.span_histogram(name).start()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> crate::MetricsSnapshot {
        let mut snap = crate::MetricsSnapshot::default();
        for stripe in &self.inner.stripes {
            let stripe = stripe.lock();
            for (name, slot) in stripe.iter() {
                match slot {
                    Slot::Counter(c) => {
                        snap.counters
                            .insert(name.clone(), c.load(Ordering::Relaxed));
                    }
                    Slot::Gauge(g) => {
                        snap.gauges.insert(name.clone(), g.load(Ordering::Relaxed));
                    }
                    Slot::Histogram(h) => {
                        snap.histograms.insert(name.clone(), freeze_histogram(h));
                        let ex = freeze_exemplars(h);
                        if !ex.is_empty() {
                            snap.exemplars.insert(name.clone(), ex);
                        }
                    }
                    Slot::ValueHistogram(h) => {
                        snap.value_histograms
                            .insert(name.clone(), freeze_histogram(h));
                        let ex = freeze_exemplars(h);
                        if !ex.is_empty() {
                            snap.exemplars.insert(name.clone(), ex);
                        }
                    }
                }
            }
        }
        snap
    }
}

/// Point-in-time copy of one histogram cell (shared by the ns and the
/// unitless kinds; the snapshot's field names stay ns-flavored, the
/// exporters attach the right units).
fn freeze_histogram(h: &HistogramCell) -> crate::HistogramSnapshot {
    let buckets: Vec<(usize, u64)> = h
        .buckets
        .iter()
        .enumerate()
        .filter_map(|(i, b)| {
            let n = b.load(Ordering::Relaxed);
            (n > 0).then_some((i, n))
        })
        .collect();
    crate::HistogramSnapshot {
        count: h.count.load(Ordering::Relaxed),
        sum_ns: h.sum_ns.load(Ordering::Relaxed),
        buckets,
    }
}

/// The `(bucket_index, last_trace_id)` exemplar pairs of one histogram
/// cell; buckets that never saw a traced sample are omitted.
fn freeze_exemplars(h: &HistogramCell) -> Vec<(usize, u64)> {
    h.exemplars
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            let id = e.load(Ordering::Relaxed);
            (id != 0).then_some((i, id))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same cell.
        assert_eq!(reg.counter("a.b").get(), 5);
        assert!(c.is_enabled());
    }

    #[test]
    fn disabled_registry_is_noop() {
        let reg = MetricsRegistry::disabled();
        let c = reg.counter("x");
        let g = reg.gauge("y");
        let h = reg.histogram("z");
        c.add(10);
        g.set(3);
        h.record_ns(100);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        assert!(!c.is_enabled() && !g.is_enabled() && !h.is_enabled());
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn gauge_set_and_watermark() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("bytes");
        g.set(10);
        g.max(5);
        assert_eq!(g.get(), 10);
        g.max(20);
        assert_eq!(g.get(), 20);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_upper_ns(0), 0);
        assert_eq!(bucket_upper_ns(10), 1023);
        assert_eq!(bucket_upper_ns(N_BUCKETS - 1), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 7, 1000, 123_456_789, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_ns(i), "{v} above bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper_ns(i - 1), "{v} below bucket {i}");
            }
        }
    }

    #[test]
    fn histogram_records_count_and_sum() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for ns in [3u64, 100, 100_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 100_103);
        let snap = reg.snapshot();
        let hs = snap.histograms.get("lat").expect("registered");
        assert_eq!(hs.count, 3);
        assert_eq!(hs.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 3);
    }

    #[test]
    fn spans_record_on_drop_and_stop() {
        let reg = MetricsRegistry::new();
        {
            let _s = reg.span("phase.sub");
        }
        let d = reg.span("phase.sub").stop();
        assert!(d >= Duration::ZERO);
        assert_eq!(reg.span_histogram("phase.sub").count(), 2);
        // Spans live under the span. prefix.
        assert_eq!(reg.histogram("span.phase.sub").count(), 2);
    }

    #[test]
    fn span_stop_measures_even_when_detached() {
        let h = Histogram::noop();
        let s = h.start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(s.stop() >= Duration::from_millis(2));
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("dual");
        reg.gauge("dual");
    }

    #[test]
    fn value_histograms_record_and_snapshot_separately() {
        let reg = MetricsRegistry::new();
        let v = reg.value_histogram("serve.batch_size");
        for size in [1u64, 8, 32] {
            v.record(size);
        }
        assert_eq!(v.count(), 3);
        assert_eq!(v.sum(), 41);
        let snap = reg.snapshot();
        let hs = snap
            .value_histograms
            .get("serve.batch_size")
            .expect("snapshots into the value_histograms section");
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum_ns, 41);
        assert!(!snap.histograms.contains_key("serve.batch_size"));
        // Detached handles are no-ops.
        let off = MetricsRegistry::disabled().value_histogram("x");
        off.record(5);
        assert_eq!(off.count(), 0);
        assert!(!off.is_enabled());
    }

    #[test]
    #[should_panic(expected = "is a histogram, not a value histogram")]
    fn value_histogram_kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.histogram("dual");
        reg.value_histogram("dual");
    }

    #[test]
    fn empty_histogram_summaries_are_zero_and_none_not_nan() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("never.recorded");
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.quantile_ns(0.5), None);
        assert_eq!(h.quantile_ns(0.99), None);
        // Detached handles behave identically.
        let noop = Histogram::noop();
        assert_eq!(noop.mean_ns(), 0);
        assert_eq!(noop.quantile_ns(0.5), None);
    }

    #[test]
    fn single_sample_histogram_summaries() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("one");
        h.record_ns(1000);
        assert_eq!(h.mean_ns(), 1000);
        // Every quantile of one sample is that sample's bucket bound.
        let expected = bucket_upper_ns(bucket_index(1000));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), Some(expected));
        }
        // Degenerate q values must not panic or go non-finite.
        assert_eq!(h.quantile_ns(f64::NAN), Some(expected));
        assert_eq!(h.quantile_ns(f64::INFINITY), Some(expected));
        assert_eq!(h.quantile_ns(-3.0), Some(expected));
    }

    #[test]
    fn saturating_bucket_quantile_reports_max() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("sat");
        h.record_ns(10);
        h.record_ns(u64::MAX); // lands in the catch-all bucket
        assert_eq!(h.quantile_ns(1.0), Some(u64::MAX));
        assert!(h.quantile_ns(0.25).unwrap() < u64::MAX);
        // Sum saturates gracefully rather than being meaningful here;
        // mean must still be finite.
        let _ = h.mean_ns();
    }

    #[test]
    fn spans_emit_complete_events_when_sink_attached() {
        let reg = MetricsRegistry::new();
        let sink = Arc::new(crate::EventSink::new());
        reg.attach_event_sink(Arc::clone(&sink));
        {
            let _s = reg.span("fim.mine");
        }
        reg.span("retrieve.match").stop();
        assert_eq!(sink.len(), 2);
        let recs = sink.records();
        let phases: Vec<&str> = recs.iter().map(|r| &*r.phase).collect();
        assert!(phases.contains(&"fim.mine"));
        assert!(phases.contains(&"retrieve.match"));
        // Histograms recorded too — events ride along, they don't replace.
        assert_eq!(reg.span_histogram("fim.mine").count(), 1);
    }

    #[test]
    fn no_sink_means_no_events_and_disabled_ignores_attach() {
        let reg = MetricsRegistry::new();
        {
            let _s = reg.span("quiet.phase");
        }
        assert!(reg.event_sink().is_none());
        assert!(reg.provenance_sink().is_none());

        let off = MetricsRegistry::disabled();
        off.attach_event_sink(Arc::new(crate::EventSink::new()));
        off.attach_provenance_sink(Arc::new(crate::ProvenanceSink::new()));
        assert!(off.event_sink().is_none());
        assert!(off.provenance_sink().is_none());
    }

    #[test]
    fn provenance_sink_round_trips_through_registry() {
        let reg = MetricsRegistry::new();
        let sink = Arc::new(crate::ProvenanceSink::new());
        reg.attach_provenance_sink(Arc::clone(&sink));
        let got = reg.provenance_sink().expect("attached");
        got.push(crate::ProvenanceRecord {
            tuple: 3,
            ..Default::default()
        });
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn traced_records_stamp_bucket_exemplars() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("serve.request_latency");
        h.record_ns(500); // untraced: no exemplar
        h.record_ns_traced(600, 41); // same bucket, traced
        h.record_ns_traced(600, 42); // last writer wins
        h.record_ns_traced(1 << 20, 7);
        h.record_ns_traced(900, 0); // trace id 0 = untraced
        let snap = reg.snapshot();
        let ex = snap.exemplars.get("serve.request_latency").expect("stamped");
        assert_eq!(ex.len(), 2);
        assert!(ex.contains(&(bucket_index(600), 42)));
        assert!(ex.contains(&(bucket_index(1 << 20), 7)));
        // Counts unaffected by tracing.
        assert_eq!(h.count(), 5);
        // Histograms that never saw a traced sample export no entry.
        reg.histogram("quiet").record_ns(3);
        assert!(!reg.snapshot().exemplars.contains_key("quiet"));
        // Detached handles stay no-ops.
        let off = Histogram::noop();
        off.record_ns_traced(5, 9);
        assert_eq!(off.count(), 0);
    }

    #[test]
    fn trace_sink_round_trips_through_registry() {
        let reg = MetricsRegistry::new();
        assert!(reg.trace_sink().is_none());
        let sink = Arc::new(crate::trace::TraceSink::new());
        reg.attach_trace_sink(Arc::clone(&sink));
        let got = reg.trace_sink().expect("attached");
        got.push(
            3,
            crate::trace::StageSpan {
                name: "retrieve",
                start: Instant::now(),
                dur: Duration::from_micros(1),
                counters: crate::trace::TraceCounters::default(),
            },
        );
        assert_eq!(sink.len(), 1);
        // Disabled registries ignore the attachment.
        let off = MetricsRegistry::disabled();
        off.attach_trace_sink(Arc::new(crate::trace::TraceSink::new()));
        assert!(off.trace_sink().is_none());
    }

    #[test]
    fn clones_share_storage() {
        let reg = MetricsRegistry::new();
        let reg2 = reg.clone();
        reg.counter("shared").add(7);
        assert_eq!(reg2.counter("shared").get(), 7);
        assert_eq!(reg2.snapshot().counter("shared"), 7);
    }
}
