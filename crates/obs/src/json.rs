//! Shared hand-rolled JSON helpers: one escape/serialize implementation
//! and one minimal reader for every machine-written artifact in the
//! workspace (metrics snapshots, Chrome traces, provenance JSONL,
//! `BENCH_*.json`, and the serve wire protocol).
//!
//! The workspace deliberately carries no serde; the artifacts are small,
//! machine-written and schema-stable, so a recursive-descent parser over a
//! few hundred bytes plus a string escaper is all the exporters, the
//! `bench_compare` gate and the `shahin-serve` protocol need. Before this
//! module, `snapshot.rs`, `events.rs` and `provenance.rs` each carried a
//! private copy of the escaper — they now share this one.

use std::collections::BTreeMap;

/// Maximum container nesting [`Json::parse`] accepts. The parser is
/// recursive-descent and now reads untrusted socket input (the serve
/// wire protocol), so unbounded nesting would overflow the thread
/// stack; every artifact and request frame in this workspace nests a
/// handful of levels at most.
pub const MAX_DEPTH: usize = 64;

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through).
pub fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders an `f64` as a JSON value. Rust's shortest round-trip `Display`
/// is already valid JSON for finite values; non-finite values (which JSON
/// cannot carry) become `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the decimal point for whole numbers; keep that
        // (still valid JSON) but make -0.0 deterministic.
        if s == "-0" {
            "0".to_string()
        } else {
            s
        }
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as f64; the artifacts stay well inside
    /// the 2^53 exact-integer range).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap: deterministic iteration for stable reports.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Member of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Walks a path of object keys.
    pub fn at(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |v, k| v.get(k))
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object's map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            byte as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 sequences pass through unmodified.
                let len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or("invalid UTF-8 in string")?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    check_depth(depth, *pos)?;
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn check_depth(depth: usize, pos: usize) -> Result<(), String> {
    if depth >= MAX_DEPTH {
        Err(format!(
            "nesting deeper than {MAX_DEPTH} levels at byte {pos}"
        ))
    } else {
        Ok(())
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    check_depth(depth, *pos)?;
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\u000ab");
        assert_eq!(escape("dé"), "dé");
    }

    #[test]
    fn fmt_f64_round_trips_and_maps_nonfinite_to_null() {
        for v in [0.0, -0.0, 1.5, -3.25e-7, 1e18, f64::MIN_POSITIVE] {
            let s = fmt_f64(v);
            let parsed = Json::parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), if v == 0.0 { 0 } else { v.to_bits() });
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn escaped_strings_round_trip_through_the_parser() {
        let original = "he said \"hi\\\" \n\t<done>";
        let doc = format!("{{\"s\": \"{}\"}}", escape(original));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn parses_bench_shaped_document() {
        let doc = r#"{
  "dataset": "Census-Income (KDD)",
  "batch": 400,
  "overhead_pct": -0.123,
  "within_budget": true,
  "explainers": {
    "LIME": {"sequential": {"wall_s": 1.5, "invocations": 42},
             "threads": {"2": {"speedup": 1.9e0}}}
  },
  "empty_arr": [], "arr": [1, "two", null, false]
}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("batch").unwrap().as_u64(), Some(400));
        assert_eq!(v.get("overhead_pct").unwrap().as_f64(), Some(-0.123));
        assert_eq!(v.get("within_budget").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("dataset").unwrap().as_str(),
            Some("Census-Income (KDD)")
        );
        assert_eq!(
            v.at(&["explainers", "LIME", "sequential", "invocations"])
                .unwrap()
                .as_u64(),
            Some(42)
        );
        assert_eq!(
            v.at(&["explainers", "LIME", "threads", "2", "speedup"])
                .unwrap()
                .as_f64(),
            Some(1.9)
        );
        assert_eq!(v.get("empty_arr").unwrap().as_arr(), Some(&[][..]));
        let arr = v.get("arr").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[2], Json::Null);
    }

    #[test]
    fn decodes_escapes() {
        let v = Json::parse(r#"{"s": "a\"b\\c\ndé"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndé"));
    }

    #[test]
    fn nesting_is_capped_not_stack_overflowed() {
        // A hostile frame of deeply nested containers must come back as
        // a parse error, not abort the process.
        for open in ["[", "{\"k\":"] {
            let doc = open.repeat(100_000);
            let err = Json::parse(&doc).unwrap_err();
            assert!(err.contains("nesting"), "got: {err}");
        }
        // The boundary: MAX_DEPTH containers parse, one more does not.
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        let too_deep = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(Json::parse(&too_deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("tru").is_err());
    }
}
