//! Prometheus text-format exposition of a [`MetricsSnapshot`]:
//! label-free v1 of the `/metrics` wire format, rendered on demand by
//! the serve `metrics` admin frame and writable next to the JSON export.
//!
//! Mapping from the registry's model:
//!
//! * counters → `name_total` with a `# TYPE name_total counter` header;
//! * gauges → `name` with `# TYPE name gauge`;
//! * nanosecond histograms → `name_ns` families: cumulative
//!   `name_ns_bucket{le="..."}` rows (one per occupied log2 bucket, the
//!   catch-all rendered as `le="+Inf"`, plus an explicit `+Inf` row so
//!   the family is always well-formed), `name_ns_sum`, `name_ns_count`;
//! * unitless value histograms → the same shape without the `_ns`
//!   suffix.
//!
//! Dotted metric names are sanitized to `[a-zA-Z0-9_]` (dots and dashes
//! become underscores). The registry's naming convention keeps sanitized
//! names collision-free; exposition is deterministic (BTreeMap order).

use std::fmt::Write as _;

use crate::registry::bucket_upper_ns;
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// Sanitizes a dotted metric name into a Prometheus-legal identifier.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Emits one `# EXEMPLAR` comment per stamped bucket, after the family's
/// sample lines (comment placement matters: a `# TYPE` header must be
/// followed immediately by a sample of its family). The label-free v1
/// exposition has no native exemplar syntax, so these ride as comments a
/// human or the check scripts can join against retained traces.
fn push_exemplar_comments(out: &mut String, base: &str, exemplars: &[(usize, u64)]) {
    for &(i, trace_id) in exemplars {
        let le = bucket_upper_ns(i);
        if le == u64::MAX {
            writeln!(out, "# EXEMPLAR {base}_bucket{{le=\"+Inf\"}} trace_id={trace_id}").unwrap();
        } else {
            writeln!(out, "# EXEMPLAR {base}_bucket{{le=\"{le}\"}} trace_id={trace_id}").unwrap();
        }
    }
}

fn push_histogram_family(out: &mut String, base: &str, h: &HistogramSnapshot) {
    writeln!(out, "# TYPE {base} histogram").unwrap();
    let mut cumulative = 0u64;
    for &(i, n) in &h.buckets {
        cumulative += n;
        let le = bucket_upper_ns(i);
        if le == u64::MAX {
            // The catch-all bucket *is* +Inf; the explicit row below
            // would duplicate the series, so let it carry the total.
            break;
        }
        writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cumulative}").unwrap();
    }
    writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", h.count).unwrap();
    writeln!(out, "{base}_sum {}", h.sum_ns).unwrap();
    writeln!(out, "{base}_count {}", h.count).unwrap();
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    /// Every emitted family carries a `# TYPE` header followed by at
    /// least one sample line; series names are unique by construction.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, &v) in &self.counters {
            let base = sanitize_name(name);
            writeln!(out, "# TYPE {base}_total counter").unwrap();
            writeln!(out, "{base}_total {v}").unwrap();
        }
        for (name, &v) in &self.gauges {
            let base = sanitize_name(name);
            writeln!(out, "# TYPE {base} gauge").unwrap();
            writeln!(out, "{base} {v}").unwrap();
        }
        for (name, h) in &self.histograms {
            let base = format!("{}_ns", sanitize_name(name));
            push_histogram_family(&mut out, &base, h);
            if let Some(ex) = self.exemplars.get(name) {
                push_exemplar_comments(&mut out, &base, ex);
            }
        }
        for (name, h) in &self.value_histograms {
            let base = sanitize_name(name);
            push_histogram_family(&mut out, &base, h);
            if let Some(ex) = self.exemplars.get(name) {
                push_exemplar_comments(&mut out, &base, ex);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests").add(42);
        reg.gauge("serve.queue_depth").set(3);
        let h = reg.histogram("serve.request_latency");
        h.record_ns(900);
        h.record_ns(1_500);
        h.record_ns(u64::MAX); // saturates into the catch-all bucket
        reg.value_histogram("serve.batch_size").record(8);
        reg.snapshot()
    }

    #[test]
    fn sanitization_maps_dots_and_leading_digits() {
        assert_eq!(
            sanitize_name("serve.request_latency"),
            "serve_request_latency"
        );
        assert_eq!(sanitize_name("a-b.c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn families_have_types_and_samples() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE serve_requests_total counter\nserve_requests_total 42\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 3\n"));
        assert!(text.contains("# TYPE serve_request_latency_ns histogram\n"));
        assert!(text.contains("serve_request_latency_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("serve_request_latency_ns_count 3\n"));
        assert!(text.contains("# TYPE serve_batch_size histogram\n"));
        assert!(text.contains("serve_batch_size_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("serve_batch_size_sum 8\n"));
    }

    #[test]
    fn buckets_are_cumulative_and_inf_is_unique() {
        let text = sample().to_prometheus();
        let buckets: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("serve_request_latency_ns_bucket"))
            .collect();
        // 900 and 1500 land in finite buckets; u64::MAX lands in the
        // catch-all, which the explicit +Inf row accounts for.
        let counts: Vec<u64> = buckets
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 3);
        assert_eq!(
            buckets.iter().filter(|l| l.contains("+Inf")).count(),
            1,
            "exactly one +Inf row:\n{text}"
        );
    }

    #[test]
    fn series_names_are_unique() {
        let text = sample().to_prometheus();
        let mut seen = std::collections::BTreeSet::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let series = line.rsplit_once(' ').unwrap().0;
            assert!(seen.insert(series.to_string()), "duplicate series {series}");
        }
    }

    #[test]
    fn every_type_header_is_followed_by_samples() {
        let text = sample().to_prometheus();
        for (i, line) in text.lines().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let fam = rest.split(' ').next().unwrap();
                let next = text.lines().nth(i + 1).unwrap_or("");
                assert!(next.starts_with(fam), "family {fam} has no samples");
            }
        }
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(MetricsSnapshot::default().to_prometheus(), "");
    }

    #[test]
    fn exemplar_comments_follow_their_family_samples() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("serve.request_latency");
        h.record_ns_traced(900, 17);
        h.record_ns_traced(u64::MAX, 23);
        let text = reg.snapshot().to_prometheus();
        assert!(
            text.contains(
                "# EXEMPLAR serve_request_latency_ns_bucket{le=\"1023\"} trace_id=17\n"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "# EXEMPLAR serve_request_latency_ns_bucket{le=\"+Inf\"} trace_id=23\n"
            ),
            "{text}"
        );
        // Comments come after the family's sample lines, never directly
        // after a # TYPE header.
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.starts_with("# EXEMPLAR") {
                assert!(
                    !lines[i - 1].starts_with("# TYPE"),
                    "exemplar comment directly after a TYPE header:\n{text}"
                );
            }
        }
        // Untraced snapshots emit no exemplar comments.
        assert!(!sample().to_prometheus().contains("# EXEMPLAR"));
    }
}
