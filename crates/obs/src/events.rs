//! Bounded event-timeline collection and Chrome trace-event export.
//!
//! An [`EventSink`] is a lock-striped, bounded buffer of timeline events.
//! Phase spans ([`crate::Span`]) push one *complete* record at drop time —
//! phase name, worker thread id, start offset, duration — and drivers can
//! mark point-in-time occurrences (store refresh, eviction bursts) with
//! [`EventSink::instant`]. Buffering complete records rather than separate
//! begin/end pairs means the bounded drop policy can never strand an
//! unbalanced begin: either both ends of a span survive or neither does.
//!
//! [`EventSink::to_chrome_trace`] renders everything as Chrome
//! trace-event JSON (the `{"traceEvents": [...]}` dialect understood by
//! Perfetto and `chrome://tracing`), reconstructing balanced `B`/`E`
//! event pairs per thread and emitting `M` metadata records naming each
//! worker lane.
//!
//! The sink is deliberately decoupled from the metrics registry: a
//! registry without an attached sink costs the hot path exactly one
//! `Option` branch per span (see [`crate::MetricsRegistry::attach_event_sink`]).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Stripe count for the event buffers. Events are striped by the worker's
/// thread id, so parallel drivers mostly touch distinct stripes.
pub const N_EVENT_STRIPES: usize = 16;

/// Default per-stripe capacity. 16 stripes × 65 536 records ≈ 1M events,
/// ~48 bytes each — a hard ~50 MB ceiling on trace memory.
pub const DEFAULT_EVENTS_PER_STRIPE: usize = 1 << 16;

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// A small, stable, process-wide id for the calling thread (1-based,
/// assigned on first use). Used as the `tid` lane in exported traces and
/// as the `thread` field of provenance records.
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// One buffered timeline event.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Phase name, e.g. `fim.mine` (span) or `streaming.refresh` (instant).
    pub phase: Arc<str>,
    /// Worker lane ([`current_thread_id`]).
    pub tid: u64,
    /// Start offset from the sink's epoch, nanoseconds.
    pub start_ns: u64,
    /// Span duration; `None` marks an instant event.
    pub dur_ns: Option<u64>,
    /// Global admission order, tie-breaker for equal timestamps.
    pub seq: u64,
    /// Free-form `key=value` annotations (instants only in practice).
    pub args: Vec<(String, String)>,
}

/// A lock-striped, bounded buffer of timeline events with a Chrome
/// trace-event exporter. See the module docs for the design.
pub struct EventSink {
    epoch: Instant,
    stripes: [Mutex<Vec<EventRecord>>; N_EVENT_STRIPES],
    per_stripe_capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl Default for EventSink {
    fn default() -> Self {
        EventSink::new()
    }
}

impl EventSink {
    /// A sink with the default capacity ([`DEFAULT_EVENTS_PER_STRIPE`]).
    pub fn new() -> EventSink {
        EventSink::with_capacity(DEFAULT_EVENTS_PER_STRIPE)
    }

    /// A sink holding at most `per_stripe_capacity` events per stripe.
    /// Once a stripe is full further events on it are counted in
    /// [`EventSink::dropped`] and discarded (drop-newest policy: the
    /// preserved prefix keeps its balanced spans, and the exporter reports
    /// the loss in `otherData`).
    pub fn with_capacity(per_stripe_capacity: usize) -> EventSink {
        EventSink {
            epoch: Instant::now(),
            stripes: std::array::from_fn(|_| Mutex::new(Vec::new())),
            per_stripe_capacity: per_stripe_capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Nanoseconds from the sink's creation to `t` (0 if `t` predates it).
    pub fn ns_since_epoch(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// Nanoseconds from the sink's creation to now.
    pub fn now_ns(&self) -> u64 {
        self.ns_since_epoch(Instant::now())
    }

    fn push(&self, rec: EventRecord) {
        let stripe = &self.stripes[(rec.tid as usize) % N_EVENT_STRIPES];
        let mut buf = stripe.lock();
        if buf.len() >= self.per_stripe_capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.push(rec);
        }
    }

    /// Records a completed span (`phase` ran on the calling thread from
    /// `start_ns` for `dur_ns`). Called by [`crate::Span`] on drop.
    pub fn complete(&self, phase: &Arc<str>, start_ns: u64, dur_ns: u64) {
        self.push(EventRecord {
            phase: Arc::clone(phase),
            tid: current_thread_id(),
            start_ns,
            dur_ns: Some(dur_ns),
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            args: Vec::new(),
        });
    }

    /// Records a point-in-time event with `key=value` annotations.
    pub fn instant(&self, name: &str, args: &[(&str, String)]) {
        self.push(EventRecord {
            phase: Arc::from(name),
            tid: current_thread_id(),
            start_ns: self.now_ns(),
            dur_ns: None,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Events currently buffered (across all stripes).
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because their stripe was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of every buffered event, ordered by `(start_ns, seq)`.
    pub fn records(&self) -> Vec<EventRecord> {
        let mut out: Vec<EventRecord> = Vec::with_capacity(self.len());
        for stripe in &self.stripes {
            out.extend(stripe.lock().iter().cloned());
        }
        out.sort_by_key(|r| (r.start_ns, r.seq));
        out
    }

    /// Renders the buffer as Chrome trace-event JSON, loadable in
    /// Perfetto or `chrome://tracing`.
    ///
    /// Buffered complete spans are re-expanded into balanced `B`/`E`
    /// pairs: per thread, spans are sorted by start (outermost first) and
    /// walked with an open-span stack, which yields a begin/end stream
    /// that is properly nested and timestamp-monotonic within the lane.
    /// The per-lane streams are then merged with a stable sort on
    /// timestamp, preserving each lane's internal order, so the whole
    /// `traceEvents` array has non-decreasing `ts` *and* balanced pairs.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace(&self.records(), self.dropped())
    }
}

/// One flattened trace-event line, pre-JSON.
struct TraceLine {
    ts_ns: u64,
    tid: u64,
    json: String,
}

use crate::json::escape as json_escape;

fn args_json(args: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        // Values that look numeric are emitted as numbers for Perfetto's
        // aggregation panes; everything else is a string.
        if v.parse::<i64>().is_ok() || v.parse::<f64>().is_ok() {
            write!(out, "\"{}\": {}", json_escape(k), v).unwrap();
        } else {
            write!(out, "\"{}\": \"{}\"", json_escape(k), json_escape(v)).unwrap();
        }
    }
    out.push('}');
    out
}

fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Builds the Chrome trace JSON from a set of records (see
/// [`EventSink::to_chrome_trace`]).
fn chrome_trace(records: &[EventRecord], dropped: u64) -> String {
    let mut tids: Vec<u64> = records.iter().map(|r| r.tid).collect();
    tids.sort_unstable();
    tids.dedup();

    let mut lines: Vec<TraceLine> = Vec::with_capacity(records.len() * 2);
    for &tid in &tids {
        let mut spans: Vec<&EventRecord> = records
            .iter()
            .filter(|r| r.tid == tid && r.dur_ns.is_some())
            .collect();
        // Outermost-first at equal starts: longer spans open earlier.
        spans.sort_by_key(|r| {
            (
                r.start_ns,
                std::cmp::Reverse(r.start_ns.saturating_add(r.dur_ns.unwrap_or(0))),
                r.seq,
            )
        });
        // Open-span stack of end timestamps; clamping a child's end to its
        // parent's guarantees proper nesting even if clock reads raced.
        let mut open: Vec<u64> = Vec::new();
        for r in spans {
            let start = r.start_ns;
            let mut end = start.saturating_add(r.dur_ns.unwrap_or(0));
            while open.last().is_some_and(|&e| e <= start) {
                let e = open.pop().unwrap();
                lines.push(TraceLine {
                    ts_ns: e,
                    tid,
                    json: format!(
                        "{{\"ph\": \"E\", \"ts\": {}, \"pid\": 1, \"tid\": {tid}}}",
                        ts_us(e)
                    ),
                });
            }
            if let Some(&parent_end) = open.last() {
                end = end.min(parent_end);
            }
            lines.push(TraceLine {
                ts_ns: start,
                tid,
                json: format!(
                    "{{\"name\": \"{}\", \"cat\": \"shahin\", \"ph\": \"B\", \"ts\": {}, \"pid\": 1, \"tid\": {tid}}}",
                    json_escape(&r.phase),
                    ts_us(start)
                ),
            });
            open.push(end);
        }
        while let Some(e) = open.pop() {
            lines.push(TraceLine {
                ts_ns: e,
                tid,
                json: format!(
                    "{{\"ph\": \"E\", \"ts\": {}, \"pid\": 1, \"tid\": {tid}}}",
                    ts_us(e)
                ),
            });
        }
        for r in records
            .iter()
            .filter(|r| r.tid == tid && r.dur_ns.is_none())
        {
            lines.push(TraceLine {
                ts_ns: r.start_ns,
                tid,
                json: format!(
                    "{{\"name\": \"{}\", \"cat\": \"shahin\", \"ph\": \"i\", \"ts\": {}, \"pid\": 1, \"tid\": {tid}, \"s\": \"t\", \"args\": {}}}",
                    json_escape(&r.phase),
                    ts_us(r.start_ns),
                    args_json(&r.args)
                ),
            });
        }
        // Instants were appended after the span stream; restore lane-local
        // timestamp order without disturbing B/E relative order.
        let lane_start = lines
            .iter()
            .position(|l| l.tid == tid)
            .unwrap_or(lines.len());
        lines[lane_start..].sort_by_key(|l| l.ts_ns);
    }

    // Stable merge across lanes: global ts is non-decreasing, each lane's
    // balanced order survives.
    lines.sort_by_key(|l| l.ts_ns);

    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    for &tid in &tids {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        write!(
            out,
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"args\": {{\"name\": \"worker-{tid}\"}}}}"
        )
        .unwrap();
    }
    for line in &lines {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line.json);
    }
    write!(
        out,
        "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {{\"dropped_events\": {dropped}}}}}\n"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(phase: &str, tid: u64, start: u64, dur: u64, seq: u64) -> EventRecord {
        EventRecord {
            phase: Arc::from(phase),
            tid,
            start_ns: start,
            dur_ns: Some(dur),
            seq,
            args: Vec::new(),
        }
    }

    fn count(hay: &str, needle: &str) -> usize {
        hay.matches(needle).count()
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let a = current_thread_id();
        assert_eq!(a, current_thread_id());
        let b = std::thread::spawn(current_thread_id).join().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn complete_and_instant_buffer_and_count() {
        let sink = EventSink::new();
        let phase: Arc<str> = Arc::from("fim.mine");
        sink.complete(&phase, 10, 5);
        sink.instant("refresh", &[("epoch", "3".to_string())]);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 0);
        let recs = sink.records();
        assert_eq!(&*recs[0].phase, "fim.mine");
        assert_eq!(recs[0].dur_ns, Some(5));
        assert!(recs[1].dur_ns.is_none());
    }

    #[test]
    fn bounded_capacity_drops_newest_and_counts() {
        let sink = EventSink::with_capacity(2);
        let phase: Arc<str> = Arc::from("p");
        for i in 0..5 {
            sink.complete(&phase, i, 1);
        }
        // All from one thread → one stripe → capacity 2.
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let trace = sink.to_chrome_trace();
        assert!(trace.contains("\"dropped_events\": 3"));
        // Drops never unbalance: pairs still match.
        assert_eq!(
            count(&trace, "\"ph\": \"B\""),
            count(&trace, "\"ph\": \"E\"")
        );
    }

    #[test]
    fn nested_spans_export_balanced_and_nested() {
        // parent [0, 100], child [10, 40], sibling [50, 90] — all one tid.
        let recs = vec![
            span("parent", 1, 0, 100, 0),
            span("child", 1, 10, 30, 1),
            span("sibling", 1, 50, 40, 2),
        ];
        let trace = chrome_trace(&recs, 0);
        assert_eq!(count(&trace, "\"ph\": \"B\""), 3);
        assert_eq!(count(&trace, "\"ph\": \"E\""), 3);
        // Balance check: running depth never goes negative and ends at 0.
        let mut depth = 0i64;
        for line in trace.lines() {
            if line.contains("\"ph\": \"B\"") {
                depth += 1;
            }
            if line.contains("\"ph\": \"E\"") {
                depth -= 1;
                assert!(depth >= 0, "E before B in:\n{trace}");
            }
        }
        assert_eq!(depth, 0);
        // Parent opens before child.
        assert!(trace.find("parent").unwrap() < trace.find("child").unwrap());
    }

    #[test]
    fn multi_thread_merge_keeps_ts_monotonic() {
        let recs = vec![
            span("a", 1, 0, 50, 0),
            span("b", 2, 5, 10, 1),
            span("c", 1, 10, 20, 2),
            span("d", 2, 40, 10, 3),
        ];
        let trace = chrome_trace(&recs, 0);
        let mut last_ts = -1.0f64;
        for line in trace.lines() {
            if line.contains("\"ph\": \"M\"") || !line.contains("\"ts\": ") {
                continue;
            }
            let ts: f64 = line
                .split("\"ts\": ")
                .nth(1)
                .unwrap()
                .split(&[',', '}'][..])
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(ts >= last_ts, "ts went backwards in:\n{trace}");
            last_ts = ts;
        }
        // Both lanes got named.
        assert!(trace.contains("worker-1") && trace.contains("worker-2"));
    }

    #[test]
    fn child_end_clamps_to_parent() {
        // Child claims to outlive the parent (raced clock reads): clamp.
        let recs = vec![span("parent", 1, 0, 50, 0), span("child", 1, 10, 100, 1)];
        let trace = chrome_trace(&recs, 0);
        let mut depth = 0i64;
        for line in trace.lines() {
            if line.contains("\"ph\": \"B\"") {
                depth += 1;
            }
            if line.contains("\"ph\": \"E\"") {
                depth -= 1;
                assert!(depth >= 0);
            }
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn instant_args_render_numeric_and_string() {
        let sink = EventSink::new();
        sink.instant(
            "streaming.refresh",
            &[("epoch", "2".to_string()), ("mode", "full".to_string())],
        );
        let trace = sink.to_chrome_trace();
        assert!(trace.contains("\"epoch\": 2"));
        assert!(trace.contains("\"mode\": \"full\""));
        assert!(trace.contains("\"ph\": \"i\""));
    }

    #[test]
    fn ts_renders_microseconds_with_ns_precision() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(1_234), "1.234");
        assert_eq!(ts_us(1_000_007), "1000.007");
    }

    #[test]
    fn empty_sink_exports_valid_shape() {
        let trace = EventSink::new().to_chrome_trace();
        assert!(trace.contains("\"traceEvents\": ["));
        assert!(trace.contains("\"dropped_events\": 0"));
        assert_eq!(count(&trace, "{"), count(&trace, "}"));
    }

    #[test]
    fn concurrent_drop_newest_reconciles_exactly() {
        // 8 writers push far past a tiny per-stripe capacity. Whatever
        // mix of stripe collisions the thread-id assignment produces,
        // the invariant must hold exactly: every push either landed in a
        // stripe or bumped the dropped counter — nothing double-counted,
        // nothing lost silently.
        const WRITERS: usize = 8;
        const PER_WRITER: usize = 200;
        const CAP: usize = 50;

        let sink = Arc::new(EventSink::with_capacity(CAP));
        let barrier = Arc::new(std::sync::Barrier::new(WRITERS));
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let sink = Arc::clone(&sink);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let phase: Arc<str> = Arc::from(format!("writer.{w}"));
                barrier.wait();
                for i in 0..PER_WRITER {
                    sink.complete(&phase, i as u64, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let pushed = (WRITERS * PER_WRITER) as u64;
        let retained = sink.len() as u64;
        let dropped = sink.dropped();
        assert_eq!(
            dropped,
            pushed - retained,
            "dropped must reconcile with pushed - retained (pushed={pushed}, retained={retained})"
        );
        // Capacity is a hard per-stripe bound, and 8 writers into a
        // 50-slot cap must actually exercise the drop path.
        assert!(retained <= (N_EVENT_STRIPES * CAP) as u64);
        assert!(retained >= CAP as u64, "at least one stripe fills");
        assert!(dropped > 0, "test must exercise drop-newest");
        for stripe_len in sink.records().iter().fold(
            std::collections::BTreeMap::<u64, usize>::new(),
            |mut acc, r| {
                *acc.entry(r.tid % N_EVENT_STRIPES as u64).or_default() += 1;
                acc
            },
        ) {
            assert!(stripe_len.1 <= CAP, "stripe over capacity: {stripe_len:?}");
        }
    }
}
