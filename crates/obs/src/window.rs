//! Windowed views of a [`crate::MetricsRegistry`] for long-running
//! processes, plus SLO error-budget tracking on top of them.
//!
//! Every metric in the registry is cumulative since process start, which
//! is the right shape for end-of-run artifacts but useless for a server
//! that never exits: "12 million requests served" says nothing about the
//! last ten seconds. A [`WindowedAggregator`] turns the cumulative
//! registry into a live view by snapshotting it every monitor tick and
//! *differencing* consecutive snapshots into [`WindowDelta`]s kept in a
//! bounded ring:
//!
//! * counters — monotonic, so `fresh - prev` is the per-window increment.
//!   A counter *below* its baseline means the process restarted under a
//!   persistent scraper: the aggregator counts the reset
//!   ([`WindowedAggregator::counter_resets`], published as the
//!   `obs.counter_resets` counter by the serve monitor), re-baselines on
//!   the fresh snapshot, and emits no bogus window for that tick;
//! * gauges — instantaneous, so the window keeps the *last value*;
//! * histograms — per-bucket counts are monotonic, so bucket-wise
//!   differencing yields a histogram of only the samples recorded inside
//!   the window, from which windowed p50/p95/p99 fall out of the same
//!   log2-bucket quantile math the cumulative export uses.
//!
//! [`SloTracker`] consumes the merged ring to maintain burn-rate and
//! budget-remaining gauges per objective (see its docs for the math).
//! Both types are plain single-threaded state — the serve monitor thread
//! owns them behind a mutex and everything else reads through it.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::registry::{bucket_upper_ns, MetricsRegistry};
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// The difference between two consecutive registry snapshots: what
/// happened during one monitor window.
#[derive(Clone, Debug, Default)]
pub struct WindowDelta {
    /// Monotonic window sequence number (1 for the first differenced
    /// window).
    pub seq: u64,
    /// Wall-clock length of the window.
    pub duration: Duration,
    /// Counter increments during the window.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at the *end* of the window (last value wins).
    pub gauges: BTreeMap<String, u64>,
    /// Nanosecond histograms restricted to samples recorded during the
    /// window.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Unitless value histograms restricted to the window.
    pub value_histograms: BTreeMap<String, HistogramSnapshot>,
}

impl WindowDelta {
    /// Counter increment by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge last-value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Counter rate in events/second over this window (0 when the window
    /// has no measurable duration).
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.counter(name) as f64 / secs
    }

    /// Windowed quantile of a nanosecond histogram (`None` when the
    /// histogram recorded nothing during the window).
    pub fn quantile_ns(&self, name: &str, q: f64) -> Option<u64> {
        self.histograms.get(name).and_then(|h| h.quantile_ns(q))
    }
}

/// Bucket-wise difference `fresh - prev` of two cumulative histogram
/// snapshots. Buckets only ever grow, so saturating subtraction is exact
/// in steady state and degrades to an empty delta on reset.
fn diff_histogram(fresh: &HistogramSnapshot, prev: &HistogramSnapshot) -> HistogramSnapshot {
    let mut prev_buckets: BTreeMap<usize, u64> = BTreeMap::new();
    for &(i, n) in &prev.buckets {
        prev_buckets.insert(i, n);
    }
    let mut buckets = Vec::new();
    for &(i, n) in &fresh.buckets {
        let d = n.saturating_sub(prev_buckets.get(&i).copied().unwrap_or(0));
        if d > 0 {
            buckets.push((i, d));
        }
    }
    HistogramSnapshot {
        count: fresh.count.saturating_sub(prev.count),
        sum_ns: fresh.sum_ns.saturating_sub(prev.sum_ns),
        buckets,
    }
}

fn diff_histogram_map(
    fresh: &BTreeMap<String, HistogramSnapshot>,
    prev: &BTreeMap<String, HistogramSnapshot>,
) -> BTreeMap<String, HistogramSnapshot> {
    let empty = HistogramSnapshot::default();
    let mut out = BTreeMap::new();
    for (name, f) in fresh {
        let d = diff_histogram(f, prev.get(name).unwrap_or(&empty));
        if d.count > 0 {
            out.insert(name.clone(), d);
        }
    }
    out
}

/// Merge `delta` into an accumulating histogram (bucket-wise sum).
fn merge_histogram(acc: &mut HistogramSnapshot, delta: &HistogramSnapshot) {
    acc.count += delta.count;
    acc.sum_ns = acc.sum_ns.saturating_add(delta.sum_ns);
    let mut merged: BTreeMap<usize, u64> = acc.buckets.iter().copied().collect();
    for &(i, n) in &delta.buckets {
        *merged.entry(i).or_insert(0) += n;
    }
    acc.buckets = merged.into_iter().collect();
}

/// A bounded ring of [`WindowDelta`]s fed by differencing consecutive
/// registry snapshots. See the module docs for the model.
pub struct WindowedAggregator {
    capacity: usize,
    ring: std::collections::VecDeque<WindowDelta>,
    prev: Option<(Instant, MetricsSnapshot)>,
    next_seq: u64,
    counter_resets: u64,
}

impl WindowedAggregator {
    /// A ring holding the most recent `windows` deltas (clamped to ≥ 1).
    pub fn new(windows: usize) -> Self {
        Self {
            capacity: windows.max(1),
            ring: std::collections::VecDeque::new(),
            prev: None,
            next_seq: 1,
            counter_resets: 0,
        }
    }

    /// Times a counter regressed below its baseline (process restart
    /// under a persistent scraper); each one re-baselined the aggregator.
    pub fn counter_resets(&self) -> u64 {
        self.counter_resets
    }

    /// Maximum number of windows retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of complete windows currently in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Feeds one monitor tick. The first call only establishes the
    /// baseline snapshot and produces no window; every later call pushes
    /// one delta (evicting the oldest past capacity) and returns a
    /// reference to it.
    pub fn tick(&mut self, snapshot: MetricsSnapshot) -> Option<&WindowDelta> {
        self.tick_at(Instant::now(), snapshot)
    }

    /// [`Self::tick`] with an explicit timestamp, for deterministic tests.
    /// A timestamp earlier than the previous tick yields a zero-length
    /// window rather than panicking.
    pub fn tick_at(&mut self, at: Instant, snapshot: MetricsSnapshot) -> Option<&WindowDelta> {
        let Some((prev_at, prev_snap)) = self.prev.take() else {
            self.prev = Some((at, snapshot));
            return None;
        };
        // A counter below its baseline can only mean the process behind
        // the snapshots restarted: re-baseline on the fresh snapshot and
        // skip the window instead of reporting a silent all-zero delta
        // (the restart gap is unknowable, not zero).
        if snapshot
            .counters
            .iter()
            .any(|(name, &v)| v < prev_snap.counter(name))
        {
            self.counter_resets += 1;
            self.prev = Some((at, snapshot));
            return None;
        }
        let mut counters = BTreeMap::new();
        for (name, &v) in &snapshot.counters {
            let d = v.saturating_sub(prev_snap.counter(name));
            if d > 0 {
                counters.insert(name.clone(), d);
            }
        }
        let delta = WindowDelta {
            seq: self.next_seq,
            duration: at.saturating_duration_since(prev_at),
            counters,
            gauges: snapshot.gauges.clone(),
            histograms: diff_histogram_map(&snapshot.histograms, &prev_snap.histograms),
            value_histograms: diff_histogram_map(
                &snapshot.value_histograms,
                &prev_snap.value_histograms,
            ),
        };
        self.next_seq += 1;
        self.prev = Some((at, snapshot));
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(delta);
        self.ring.back()
    }

    /// The most recent complete window, if any.
    pub fn latest(&self) -> Option<&WindowDelta> {
        self.ring.back()
    }

    /// Iterates the retained windows oldest-first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowDelta> {
        self.ring.iter()
    }

    /// Collapses the whole ring into one delta spanning every retained
    /// window: counters and histogram buckets sum, gauges keep the most
    /// recent value, `duration` is the total covered wall time. An empty
    /// ring merges to an all-zero delta.
    pub fn merged(&self) -> WindowDelta {
        let mut out = WindowDelta::default();
        for w in &self.ring {
            out.seq = w.seq;
            out.duration += w.duration;
            for (name, &d) in &w.counters {
                *out.counters.entry(name.clone()).or_insert(0) += d;
            }
            for (name, &v) in &w.gauges {
                out.gauges.insert(name.clone(), v);
            }
            for (name, h) in &w.histograms {
                merge_histogram(out.histograms.entry(name.clone()).or_default(), h);
            }
            for (name, h) in &w.value_histograms {
                merge_histogram(out.value_histograms.entry(name.clone()).or_default(), h);
            }
        }
        out
    }
}

/// One service-level objective over a request target: a latency goal
/// ("p99 ≤ objective") and an error-rate goal ("errors / requests ≤
/// objective"), both evaluated over the aggregator's retained windows.
#[derive(Clone, Debug)]
pub struct SloConfig {
    /// Dotted target name the gauges are published under, e.g.
    /// `serve.request` → `slo.serve.request.burn_rate`.
    pub target: String,
    /// Nanosecond histogram holding per-request latencies.
    pub latency_histogram: String,
    /// Latency objective: quantile `latency_quantile` must sit at or
    /// below this duration.
    pub latency_objective: Duration,
    /// Which quantile the latency objective constrains (e.g. 0.99).
    pub latency_quantile: f64,
    /// Counter of successfully served requests.
    pub requests_counter: String,
    /// Counters whose increments count as errors against the error
    /// budget (rejections, timeouts, quarantines).
    pub error_counters: Vec<String>,
    /// Allowed error fraction, e.g. 0.001 for a 99.9% availability goal.
    pub error_rate_objective: f64,
}

/// Computed state of one objective for one evaluation window.
#[derive(Clone, Copy, Debug, Default)]
pub struct SloStatus {
    /// Latency samples observed in the window.
    pub latency_samples: u64,
    /// Samples whose bucket upper bound exceeds the latency objective.
    pub latency_violations: u64,
    /// Served requests in the window.
    pub requests: u64,
    /// Error events in the window.
    pub errors: u64,
    /// max(latency burn, error burn): 1.0 = spending the budget exactly
    /// as fast as allowed, >1 = on track to blow the objective.
    pub burn_rate: f64,
    /// Fraction of the window's error budget left, in [0, 1].
    pub budget_remaining: f64,
}

/// Gauge name for a target's burn rate, stored in milli-units
/// (burn × 1000) because gauges are integers; 1000 means "burning the
/// budget exactly as fast as allowed".
pub fn burn_rate_gauge(target: &str) -> String {
    format!("slo.{target}.burn_rate")
}

/// Gauge name for a target's remaining error budget, stored in parts per
/// million of the window's budget (1_000_000 = untouched).
pub fn budget_remaining_gauge(target: &str) -> String {
    format!("slo.{target}.budget_remaining")
}

/// Evaluates [`SloConfig`]s against a [`WindowedAggregator`] and
/// publishes the results as `slo.*` gauges.
///
/// # The math
///
/// Over the merged ring (the whole retained look-back period):
///
/// * latency — the objective "q-th quantile ≤ T" allows a fraction
///   `1 - q` of samples to exceed T. The observed bad fraction is the
///   share of windowed samples in buckets strictly above T's bucket.
///   `burn = observed_bad_fraction / (1 - q)`.
/// * errors — the objective allows `error_rate_objective` of traffic to
///   fail. Observed fraction is `errors / (requests + errors)`.
///   `burn = observed / objective`.
///
/// The published burn rate is the worse of the two; budget remaining is
/// `max(0, 1 - burn)` — how much of this look-back period's budget is
/// still unspent. Windows with no traffic burn nothing.
pub struct SloTracker {
    configs: Vec<SloConfig>,
}

impl SloTracker {
    pub fn new(configs: Vec<SloConfig>) -> Self {
        Self { configs }
    }

    pub fn configs(&self) -> &[SloConfig] {
        &self.configs
    }

    /// Computes one objective's status from a merged window delta.
    pub fn evaluate(config: &SloConfig, merged: &WindowDelta) -> SloStatus {
        let mut status = SloStatus {
            budget_remaining: 1.0,
            ..SloStatus::default()
        };

        // Latency dimension: count samples landing in buckets whose
        // upper bound exceeds the objective. Bucket granularity means a
        // sample is only charged when its whole bucket is above the
        // objective — consistent with how the quantile export rounds up.
        let objective_ns = config
            .latency_objective
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let mut latency_burn = 0.0;
        if let Some(h) = merged.histograms.get(&config.latency_histogram) {
            status.latency_samples = h.count;
            status.latency_violations = h
                .buckets
                .iter()
                .filter(|&&(i, _)| bucket_upper_ns(i) > objective_ns)
                .map(|&(_, n)| n)
                .sum();
            let allowed = (1.0 - config.latency_quantile).max(1e-9);
            if status.latency_samples > 0 {
                let observed = status.latency_violations as f64 / status.latency_samples as f64;
                latency_burn = observed / allowed;
            }
        }

        // Error dimension: errors over total attempted traffic.
        status.requests = merged.counter(&config.requests_counter);
        status.errors = config
            .error_counters
            .iter()
            .map(|c| merged.counter(c))
            .sum();
        let mut error_burn = 0.0;
        let attempts = status.requests + status.errors;
        if attempts > 0 && config.error_rate_objective > 0.0 {
            let observed = status.errors as f64 / attempts as f64;
            error_burn = observed / config.error_rate_objective;
        }

        status.burn_rate = latency_burn.max(error_burn);
        status.budget_remaining = (1.0 - status.burn_rate).max(0.0);
        status
    }

    /// Evaluates every objective against the aggregator's merged ring and
    /// publishes `slo.<target>.burn_rate` (milli-units) and
    /// `slo.<target>.budget_remaining` (ppm) gauges on `registry`.
    /// Returns the statuses in config order.
    pub fn update(&self, agg: &WindowedAggregator, registry: &MetricsRegistry) -> Vec<SloStatus> {
        let merged = agg.merged();
        let mut out = Vec::with_capacity(self.configs.len());
        for config in &self.configs {
            let status = Self::evaluate(config, &merged);
            let burn_milli = (status.burn_rate * 1e3).min(u64::MAX as f64) as u64;
            let budget_ppm = (status.budget_remaining * 1e6).round() as u64;
            registry
                .gauge(&burn_rate_gauge(&config.target))
                .set(burn_milli);
            registry
                .gauge(&budget_remaining_gauge(&config.target))
                .set(budget_ppm);
            out.push(status);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::bucket_index;

    fn reg_with(reqs: u64, errs: u64, lat_ns: &[u64]) -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests").add(reqs);
        reg.counter("serve.rejected_overloaded").add(errs);
        let h = reg.histogram("serve.request_latency");
        for &ns in lat_ns {
            h.record_ns(ns);
        }
        reg
    }

    fn slo_config() -> SloConfig {
        SloConfig {
            target: "serve.request".into(),
            latency_histogram: "serve.request_latency".into(),
            latency_objective: Duration::from_micros(100),
            latency_quantile: 0.99,
            requests_counter: "serve.requests".into(),
            error_counters: vec!["serve.rejected_overloaded".into()],
            error_rate_objective: 0.01,
        }
    }

    #[test]
    fn first_tick_is_baseline_only() {
        let mut agg = WindowedAggregator::new(4);
        let reg = reg_with(10, 0, &[1_000]);
        assert!(agg.tick(reg.snapshot()).is_none());
        assert_eq!(agg.len(), 0);
        // Second tick with no movement: a window exists but is all-zero.
        let w = agg.tick(reg.snapshot()).unwrap();
        assert_eq!(w.counter("serve.requests"), 0);
        assert!(w.histograms.is_empty());
        assert_eq!(agg.len(), 1);
    }

    #[test]
    fn differencing_isolates_per_window_activity() {
        let mut agg = WindowedAggregator::new(4);
        let reg = reg_with(5, 0, &[1_000, 1_000]);
        let t0 = Instant::now();
        agg.tick_at(t0, reg.snapshot());

        reg.counter("serve.requests").add(7);
        reg.histogram("serve.request_latency").record_ns(1 << 20);
        reg.gauge("serve.queue_depth").set(3);
        let w = agg
            .tick_at(t0 + Duration::from_secs(2), reg.snapshot())
            .unwrap()
            .clone();
        assert_eq!(w.counter("serve.requests"), 7);
        assert_eq!(w.gauge("serve.queue_depth"), 3);
        assert!((w.rate_per_sec("serve.requests") - 3.5).abs() < 1e-9);
        let h = &w.histograms["serve.request_latency"];
        // Only the in-window sample survives the difference.
        assert_eq!(h.count, 1);
        assert_eq!(h.buckets, vec![(bucket_index(1 << 20), 1)]);
        assert_eq!(
            w.quantile_ns("serve.request_latency", 0.99),
            Some(crate::registry::bucket_upper_ns(bucket_index(1 << 20)))
        );
        // Cumulative snapshot still sees all three samples.
        assert_eq!(reg.snapshot().histograms["serve.request_latency"].count, 3);
    }

    #[test]
    fn ring_is_bounded_and_merged_spans_it() {
        let mut agg = WindowedAggregator::new(3);
        let reg = reg_with(0, 0, &[]);
        let t0 = Instant::now();
        agg.tick_at(t0, reg.snapshot());
        for i in 1..=5u64 {
            reg.counter("serve.requests").add(10);
            reg.histogram("serve.request_latency").record_ns(1_000);
            agg.tick_at(t0 + Duration::from_secs(i), reg.snapshot());
        }
        assert_eq!(agg.len(), 3); // capacity bound held
        let merged = agg.merged();
        // Only the last 3 of 5 windows are retained.
        assert_eq!(merged.counter("serve.requests"), 30);
        assert_eq!(merged.histograms["serve.request_latency"].count, 3);
        assert_eq!(merged.duration, Duration::from_secs(3));
        let seqs: Vec<u64> = agg.windows().map(|w| w.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
    }

    #[test]
    fn counter_reset_rebaselines_and_is_counted() {
        let mut agg = WindowedAggregator::new(2);
        let big = reg_with(100, 0, &[]);
        let t0 = Instant::now();
        agg.tick_at(t0, big.snapshot());
        assert_eq!(agg.counter_resets(), 0);
        // Simulate a restart: a fresh registry with a smaller cumulative
        // value. The tick must not produce a window (the gap is
        // unknowable), must count the reset, and must re-baseline.
        let small = reg_with(40, 0, &[]);
        assert!(agg
            .tick_at(t0 + Duration::from_secs(1), small.snapshot())
            .is_none());
        assert_eq!(agg.counter_resets(), 1);
        assert_eq!(agg.len(), 0);
        // Post-restart progress diffs against the *new* baseline.
        small.counter("serve.requests").add(5);
        let w = agg
            .tick_at(t0 + Duration::from_secs(2), small.snapshot())
            .unwrap();
        assert_eq!(w.counter("serve.requests"), 5);
        assert_eq!(agg.counter_resets(), 1);
    }

    #[test]
    fn disappearing_counter_is_not_a_reset() {
        // A restarted process that has not yet re-registered a counter
        // simply omits it from the snapshot; only an observed regression
        // (present but smaller) re-baselines.
        let mut agg = WindowedAggregator::new(2);
        let reg = reg_with(10, 0, &[]);
        let t0 = Instant::now();
        agg.tick_at(t0, reg.snapshot());
        let empty = MetricsRegistry::new();
        assert!(agg
            .tick_at(t0 + Duration::from_secs(1), empty.snapshot())
            .is_some());
        assert_eq!(agg.counter_resets(), 0);
    }

    #[test]
    fn slo_quiet_window_burns_nothing() {
        let agg = WindowedAggregator::new(2);
        let status = SloTracker::evaluate(&slo_config(), &agg.merged());
        assert_eq!(status.burn_rate, 0.0);
        assert_eq!(status.budget_remaining, 1.0);
    }

    #[test]
    fn slo_error_burn_and_gauges() {
        let mut agg = WindowedAggregator::new(4);
        let reg = reg_with(0, 0, &[]);
        let t0 = Instant::now();
        agg.tick_at(t0, reg.snapshot());
        // 98 served + 2 errors = 2% error rate against a 1% objective:
        // burn 2.0, budget exhausted.
        reg.counter("serve.requests").add(98);
        reg.counter("serve.rejected_overloaded").add(2);
        agg.tick_at(t0 + Duration::from_secs(1), reg.snapshot());

        let tracker = SloTracker::new(vec![slo_config()]);
        let statuses = tracker.update(&agg, &reg);
        assert_eq!(statuses.len(), 1);
        let s = statuses[0];
        assert_eq!(s.requests, 98);
        assert_eq!(s.errors, 2);
        assert!((s.burn_rate - 2.0).abs() < 1e-9);
        assert_eq!(s.budget_remaining, 0.0);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("slo.serve.request.burn_rate"), 2000);
        assert_eq!(snap.gauge("slo.serve.request.budget_remaining"), 0);
    }

    #[test]
    fn slo_latency_burn_counts_bucketed_violations() {
        let mut agg = WindowedAggregator::new(4);
        let reg = reg_with(0, 0, &[]);
        let t0 = Instant::now();
        agg.tick_at(t0, reg.snapshot());
        // 99 fast samples, 1 sample far above the 100µs objective: the
        // observed bad fraction 1% equals the allowed 1% → burn 1.0.
        let h = reg.histogram("serve.request_latency");
        for _ in 0..99 {
            h.record_ns(1_000);
        }
        h.record_ns(10_000_000);
        reg.counter("serve.requests").add(100);
        agg.tick_at(t0 + Duration::from_secs(1), reg.snapshot());

        let s = SloTracker::evaluate(&slo_config(), &agg.merged());
        assert_eq!(s.latency_samples, 100);
        assert_eq!(s.latency_violations, 1);
        assert!((s.burn_rate - 1.0).abs() < 1e-6, "burn={}", s.burn_rate);
        assert!(s.budget_remaining.abs() < 1e-6);
    }

    #[test]
    fn gauge_names_follow_the_slo_prefix() {
        assert_eq!(
            burn_rate_gauge("serve.request"),
            "slo.serve.request.burn_rate"
        );
        assert_eq!(
            budget_remaining_gauge("serve.request"),
            "slo.serve.request.budget_remaining"
        );
    }
}
