//! Shahin-Batch: the paper's Algorithms 1 (LIME), 2 (Anchor), 3 (SHAP).
//!
//! All three drivers share the same preparation phase: discretize the
//! batch, mine frequent itemsets over a `max(1000, 1%)` sample, and
//! materialize `τ` labeled perturbations per itemset in the
//! [`PerturbationStore`]. Per tuple, they retrieve the matching
//! materialized samples and hand them to the (unmodified) explainer's
//! reuse-aware entry point.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin_explain::{
    AnchorExplainer, AnchorExplanation, ExplainContext, FeatureWeights, KernelShapExplainer,
    LimeExplainer,
};
use shahin_fim::{apriori, fpgrowth, sample_rows, AprioriParams, Itemset, MatchScratch};
use shahin_model::{Classifier, CountingClassifier};
use shahin_tabular::{Dataset, DiscreteTable};

use crate::anchor_cache::{CachingRuleSampler, SharedAnchorCaches};
use crate::config::{BatchConfig, Miner};
use crate::metrics::{BatchReport, BatchResult, OverheadBreakdown, RunMetrics};
use crate::obs::{names, ProvenanceCtx};
use crate::quarantine::{guard_tuple, QuarantineObs, TupleOutcome};
use crate::runner::per_tuple_seed;
use crate::shap_source::StoreCoalitionSource;
use crate::store::PerturbationStore;
use shahin_obs::MetricsRegistry;

/// The batch-mode optimizer.
#[derive(Clone, Debug)]
pub struct ShahinBatch {
    /// Configuration.
    pub config: BatchConfig,
    /// Metrics registry the drivers record into. Disabled (all handles
    /// no-ops) unless set via [`ShahinBatch::with_obs`].
    pub(crate) obs: MetricsRegistry,
}

impl Default for ShahinBatch {
    fn default() -> Self {
        ShahinBatch::new(BatchConfig::default())
    }
}

/// Output of the shared preparation phase.
pub(crate) struct Prepared {
    pub(crate) table: DiscreteTable,
    pub(crate) store: PerturbationStore,
    pub(crate) fim_time: Duration,
    pub(crate) materialization_time: Duration,
}

impl ShahinBatch {
    /// Creates a batch optimizer (with observability disabled).
    pub fn new(config: BatchConfig) -> ShahinBatch {
        ShahinBatch {
            config,
            obs: MetricsRegistry::disabled(),
        }
    }

    /// Records spans, counters and gauges into `registry` during every
    /// subsequent run (see [`crate::obs`] for the name schema).
    pub fn with_obs(mut self, registry: &MetricsRegistry) -> ShahinBatch {
        self.obs = registry.clone();
        self
    }

    /// Lines 2–4 of each algorithm: sample, mine, materialize.
    /// `n_target` is the explainer's per-tuple sample budget, used by the
    /// automatic τ selection. Materialization runs on
    /// [`BatchConfig::n_threads`] workers seeded per itemset from `seed`,
    /// so the store is identical at every thread count.
    pub(crate) fn prepare<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &C,
        batch: &Dataset,
        n_target: usize,
        seed: u64,
        rng: &mut StdRng,
    ) -> Prepared {
        let table = ctx.discretizer().encode_dataset(batch);

        let fim_span = self.obs.span(names::SPAN_FIM_MINE);
        let sample = sample_rows(&table, rng);
        let fim_params = AprioriParams {
            min_support: self.config.min_support,
            max_len: self.config.max_itemset_len,
            max_itemsets: self.config.max_itemsets,
        };
        let frequent = match self.config.miner {
            Miner::Apriori => apriori(&sample, &fim_params).frequent,
            Miner::FpGrowth => fpgrowth(&sample, &fim_params),
        };
        // Expected number of materialized itemsets a random batch tuple
        // contains = Σ_f support(f); a tuple pools ~τ·E[matched] samples.
        let n_sample_rows = sample.n_rows() as f64;
        let expected_matched: f64 = frequent
            .iter()
            .map(|(_, c)| *c as f64 / n_sample_rows)
            .sum::<f64>()
            .max(1e-9);
        let itemsets: Vec<Itemset> = frequent.into_iter().map(|(s, _)| s).collect();
        let fim_time = fim_span.stop();

        let fill_span = self.obs.span(names::SPAN_MATERIALIZE_FILL);
        let mut store = PerturbationStore::new(itemsets, self.config.cache_budget_bytes);
        store.set_match_engine(self.config.match_engine);
        store.attach_obs(&self.obs);
        // "The parameter τ is set automatically by Shahin based on the
        // resource constraints" (§3.1): τ only pays off up to the point
        // where pooled samples cover the explainer's per-tuple budget
        // (`n_target / E[matched]`), and the up-front cost must stay below
        // what reuse can ever recover (a quarter of the batch per itemset).
        let mut tau = self.config.tau.min((batch.n_rows() / 4).max(1));
        if self.config.auto_tau {
            let coverage_tau = (1.25 * n_target as f64 / expected_matched).ceil() as usize;
            tau = tau.min(coverage_tau.max(1));
        }
        store.materialize_parallel(ctx, clf, tau, seed, self.config.resolved_n_threads());
        let materialization_time = fill_span.stop();

        Prepared {
            table,
            store,
            fim_time,
            materialization_time,
        }
    }

    /// Algorithm 1: LIME for the EMP problem.
    pub fn explain_lime<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        batch: &Dataset,
        lime: &LimeExplainer,
        seed: u64,
    ) -> BatchResult<FeatureWeights> {
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prep = self.prepare(ctx, clf, batch, lime.params.n_samples, seed, &mut rng);
        let retrieve_hist = self.obs.span_histogram(names::SPAN_RETRIEVE_MATCH);
        let surrogate_hist = self.obs.span_histogram(names::SPAN_SURROGATE_FIT);
        let prov = ProvenanceCtx::new(&self.obs, "Shahin-Batch", "LIME");

        let quarantine = QuarantineObs::new(&self.obs);
        let mut retrieval = Duration::ZERO;
        let mut scratch = MatchScratch::new();
        let mut explanations = Vec::with_capacity(batch.n_rows());
        let mut report = BatchReport::default();
        for row in 0..batch.n_rows() {
            let outcome = guard_tuple(row as u32, &quarantine, |incidents0| {
                let t0 = prov.start();
                let mut tuple_rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
                let codes = prep.table.row(row);
                let retrieve = retrieve_hist.start();
                let (matched, lookup) = prep.store.matching_stats(&codes, &mut scratch);
                retrieval += retrieve.stop();
                let store = &prep.store;
                let pooled = matched.iter().flat_map(|&id| store.samples(id).iter());
                let instance = batch.instance(row);
                let _fit = surrogate_hist.start();
                let (weights, reuse) =
                    lime.explain_with_reused_counted(ctx, clf, &instance, pooled, &mut tuple_rng);
                let degraded = reuse.clamped > 0 || shahin_model::degraded_incidents() > incidents0;
                prov.record(
                    row as u32,
                    0,
                    &matched,
                    lookup,
                    reuse.reused,
                    reuse.fresh,
                    reuse.invocations,
                    (0, 0),
                    degraded,
                    t0,
                );
                (weights, degraded)
            });
            match outcome {
                TupleOutcome::Ok(weights) => explanations.push(weights),
                TupleOutcome::Degraded(weights) => {
                    explanations.push(weights);
                    report.degraded.push(row as u32);
                }
                TupleOutcome::Failed(failure) => report.failures.push(failure),
            }
        }

        BatchResult {
            explanations,
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                overhead: OverheadBreakdown {
                    fim: prep.fim_time,
                    materialization: prep.materialization_time,
                    retrieval,
                },
                store_bytes: prep.store.peak_bytes(),
                n_frequent: prep.store.len(),
                n_tuples: batch.n_rows(),
            },
            report,
        }
    }

    /// Algorithm 2: Anchor for the EMP problem.
    pub fn explain_anchor<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        batch: &Dataset,
        anchor: &AnchorExplainer,
        seed: u64,
    ) -> BatchResult<AnchorExplanation> {
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        // Anchor has no fixed per-tuple sample count; 400 approximates the
        // bandit's typical rule-conditioned draw budget per tuple.
        let mut prep = self.prepare(ctx, clf, batch, 400, seed, &mut rng);
        let caches = SharedAnchorCaches::with_obs(&self.obs);
        let anchor = anchor.clone().with_obs(&self.obs);
        let retrieve_hist = self.obs.span_histogram(names::SPAN_RETRIEVE_MATCH);
        let prov = ProvenanceCtx::new(&self.obs, "Shahin-Batch", "Anchor");

        let quarantine = QuarantineObs::new(&self.obs);
        let mut retrieval = Duration::ZERO;
        let mut scratch = MatchScratch::new();
        let mut explanations = Vec::with_capacity(batch.n_rows());
        let mut report = BatchReport::default();
        for row in 0..batch.n_rows() {
            let outcome = guard_tuple(row as u32, &quarantine, |incidents0| {
                let t0 = prov.start();
                let codes = prep.table.row(row);
                let retrieve = retrieve_hist.start();
                let (matched, lookup) = prep.store.matching_stats(&codes, &mut scratch);
                retrieval += retrieve.stop();
                let instance = batch.instance(row);
                let inv0 = clf.invocations();
                let target = clf.predict(&instance);
                let mut sampler = CachingRuleSampler::new(
                    ctx,
                    clf,
                    &prep.store,
                    &matched,
                    &caches,
                    per_tuple_seed(seed, row),
                );
                let explanation = anchor.explain_with_sampler(&codes, target, &mut sampler);
                let stats = sampler.stats();
                let degraded = shahin_model::degraded_incidents() > incidents0;
                prov.record(
                    row as u32,
                    0,
                    &matched,
                    lookup,
                    stats.reused,
                    stats.fresh,
                    clf.invocations() - inv0,
                    (stats.cache_hits, stats.cache_misses),
                    degraded,
                    t0,
                );
                (explanation, degraded)
            });
            match outcome {
                TupleOutcome::Ok(explanation) => explanations.push(explanation),
                TupleOutcome::Degraded(explanation) => {
                    explanations.push(explanation);
                    report.degraded.push(row as u32);
                }
                TupleOutcome::Failed(failure) => report.failures.push(failure),
            }
        }

        BatchResult {
            explanations,
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                overhead: OverheadBreakdown {
                    fim: prep.fim_time,
                    materialization: prep.materialization_time,
                    retrieval,
                },
                store_bytes: prep.store.peak_bytes() + caches.approx_bytes(),
                n_frequent: prep.store.len(),
                n_tuples: batch.n_rows(),
            },
            report,
        }
    }

    /// Algorithm 3: KernelSHAP for the EMP problem. `base_samples`
    /// classifier invocations estimate the null prediction once for the
    /// whole batch (as the reference implementation's background set does).
    pub fn explain_shap<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        batch: &Dataset,
        shap: &KernelShapExplainer,
        base_samples: usize,
        seed: u64,
    ) -> BatchResult<FeatureWeights> {
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prep = self.prepare(ctx, clf, batch, shap.params.n_samples, seed, &mut rng);
        let quarantine = QuarantineObs::new(&self.obs);
        let base = estimate_base_value_guarded(ctx, clf, base_samples, &mut rng, &quarantine);
        let retrieve_hist = self.obs.span_histogram(names::SPAN_RETRIEVE_MATCH);
        let surrogate_hist = self.obs.span_histogram(names::SPAN_SURROGATE_FIT);
        let prov = ProvenanceCtx::new(&self.obs, "Shahin-Batch", "SHAP");

        let mut retrieval = Duration::ZERO;
        let mut scratch = MatchScratch::new();
        let mut explanations = Vec::with_capacity(batch.n_rows());
        let mut report = BatchReport::default();
        for row in 0..batch.n_rows() {
            let outcome = guard_tuple(row as u32, &quarantine, |incidents0| {
                let t0 = prov.start();
                let mut tuple_rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
                let codes = prep.table.row(row);
                let retrieve = retrieve_hist.start();
                let (matched, lookup) = prep.store.matching_stats(&codes, &mut scratch);
                // Line 7–8: pool the perturbations of contained frequent
                // itemsets as coalitions over their attributes (round-robin
                // for mask diversity, half of the budget).
                let pooled = crate::shap_source::pool_coalitions(
                    &prep.store,
                    &matched,
                    shap.params.n_samples / 2,
                );
                let mut source = StoreCoalitionSource::new(&prep.store, matched.clone());
                retrieval += retrieve.stop();
                let instance = batch.instance(row);
                let _fit = surrogate_hist.start();
                let (weights, reuse) = shap.explain_with_counted(
                    ctx,
                    clf,
                    &instance,
                    base,
                    pooled,
                    &mut source,
                    &mut tuple_rng,
                );
                let degraded = reuse.clamped > 0 || shahin_model::degraded_incidents() > incidents0;
                prov.record(
                    row as u32,
                    0,
                    &matched,
                    lookup,
                    reuse.reused,
                    reuse.fresh,
                    reuse.invocations,
                    (0, 0),
                    degraded,
                    t0,
                );
                (weights, degraded)
            });
            match outcome {
                TupleOutcome::Ok(weights) => explanations.push(weights),
                TupleOutcome::Degraded(weights) => {
                    explanations.push(weights);
                    report.degraded.push(row as u32);
                }
                TupleOutcome::Failed(failure) => report.failures.push(failure),
            }
        }

        BatchResult {
            explanations,
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                overhead: OverheadBreakdown {
                    fim: prep.fim_time,
                    materialization: prep.materialization_time,
                    retrieval,
                },
                store_bytes: prep.store.peak_bytes(),
                n_frequent: prep.store.len(),
                n_tuples: batch.n_rows(),
            },
            report,
        }
    }
}

/// Estimates the SHAP base value, falling back to `0.5` when a classifier
/// panic unwinds out of the estimation loop. The base value is shared by
/// the whole batch, so losing it must not kill every tuple — the fallback
/// keeps the efficiency constraint intact (the surrogate re-anchors on
/// it) and the contained panic is counted in
/// `resilience.panics_isolated`.
pub(crate) fn estimate_base_value_guarded<C: Classifier>(
    ctx: &ExplainContext,
    clf: &C,
    n_samples: usize,
    rng: &mut StdRng,
    quarantine: &QuarantineObs,
) -> f64 {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    match catch_unwind(AssertUnwindSafe(|| {
        shahin_explain::estimate_base_value(ctx, clf, n_samples, rng)
    })) {
        // `estimate_base_value` clamps non-finite model outputs itself, so
        // an Ok value is always usable.
        Ok(base) => base,
        Err(_) => {
            quarantine.note_contained_panic();
            0.5
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shahin_model::MajorityClass;
    use shahin_tabular::{train_test_split, DatasetPreset};

    fn setup(
        scale: f64,
        seed: u64,
    ) -> (ExplainContext, CountingClassifier<MajorityClass>, Dataset) {
        let (data, labels) = DatasetPreset::CensusIncome.spec(scale).generate(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
        let ctx = ExplainContext::fit(&split.train, 500, &mut rng);
        let clf = CountingClassifier::new(MajorityClass::fit(&split.train_labels));
        let n = split.test.n_rows().min(40);
        let rows: Vec<usize> = (0..n).collect();
        (ctx, clf, split.test.select(&rows))
    }

    #[test]
    fn lime_batch_beats_sequential_on_invocations() {
        let (ctx, clf, batch) = setup(0.02, 1);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 200,
            ..Default::default()
        });
        // Sequential cost: N per tuple.
        let seq_cost = 200u64 * batch.n_rows() as u64;
        let shahin = ShahinBatch::new(BatchConfig {
            tau: 50,
            ..Default::default()
        });
        let res = shahin.explain_lime(&ctx, &clf, &batch, &lime, 7);
        assert_eq!(res.explanations.len(), batch.n_rows());
        assert_eq!(res.metrics.n_tuples, batch.n_rows());
        assert!(
            res.metrics.invocations < seq_cost,
            "no savings: {} vs {}",
            res.metrics.invocations,
            seq_cost
        );
        assert!(res.metrics.n_frequent > 0, "no frequent itemsets mined");
    }

    #[test]
    fn lime_batch_is_deterministic() {
        let (ctx, clf, batch) = setup(0.02, 2);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 100,
            ..Default::default()
        });
        let shahin = ShahinBatch::default();
        let a = shahin.explain_lime(&ctx, &clf, &batch, &lime, 9);
        let b = shahin.explain_lime(&ctx, &clf, &batch, &lime, 9);
        assert_eq!(a.explanations, b.explanations);
        assert_eq!(a.metrics.invocations, b.metrics.invocations);
    }

    #[test]
    fn shap_batch_runs_and_saves() {
        let (ctx, clf, batch) = setup(0.02, 3);
        let shap = KernelShapExplainer::new(shahin_explain::ShapParams {
            n_samples: 128,
            ..Default::default()
        });
        let shahin = ShahinBatch::new(BatchConfig {
            tau: 50,
            ..Default::default()
        });
        let res = shahin.explain_shap(&ctx, &clf, &batch, &shap, 50, 11);
        assert_eq!(res.explanations.len(), batch.n_rows());
        let seq_cost = (128 + 1) * batch.n_rows() as u64 + 50;
        assert!(
            res.metrics.invocations < seq_cost,
            "no savings: {} vs {}",
            res.metrics.invocations,
            seq_cost
        );
        // Efficiency constraint survives the reuse path.
        for e in &res.explanations {
            let total: f64 = e.weights.iter().sum();
            assert!(
                (total - (e.local_prediction - e.intercept)).abs() < 1e-6,
                "efficiency violated: {total}"
            );
        }
    }

    #[test]
    fn anchor_batch_runs_and_saves() {
        let (ctx, clf, batch) = setup(0.02, 4);
        // A classifier keyed on one attribute so anchors exist.
        struct Key;
        impl Classifier for Key {
            fn predict_proba(&self, inst: &[shahin_tabular::Feature]) -> f64 {
                f64::from(inst[0].cat().is_multiple_of(2))
            }
        }
        let clf2 = CountingClassifier::new(Key);
        let _ = clf;
        let anchor = AnchorExplainer::default();
        let shahin = ShahinBatch::new(BatchConfig {
            tau: 50,
            ..Default::default()
        });
        let res = shahin.explain_anchor(&ctx, &clf2, &batch, &anchor, 13);
        assert_eq!(res.explanations.len(), batch.n_rows());
        // Every explanation anchors the tuple's own predicted class, and
        // the rule predicates come from the tuple itself.
        let table = ctx.discretizer().encode_dataset(&batch);
        for (row, e) in res.explanations.iter().enumerate() {
            let codes = table.row(row);
            assert!(
                e.rule.contained_in(&codes),
                "rule {} not contained in its tuple",
                e.rule
            );
            let inst = batch.instance(row);
            assert_eq!(e.anchored_class, clf2.predict(&inst));
        }
        // Shared caches should have kicked in: far fewer invocations than
        // a from-scratch bandit per tuple.
        let per_tuple = res.metrics.invocations as f64 / batch.n_rows() as f64;
        assert!(per_tuple < 1000.0, "per-tuple invocations {per_tuple}");
    }

    #[test]
    fn cache_budget_bounds_store_bytes() {
        let (ctx, clf, batch) = setup(0.02, 5);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 100,
            ..Default::default()
        });
        let budget = 64 * 1024;
        let shahin = ShahinBatch::new(BatchConfig {
            cache_budget_bytes: budget,
            tau: 1000,
            ..Default::default()
        });
        let res = shahin.explain_lime(&ctx, &clf, &batch, &lime, 17);
        assert!(
            res.metrics.store_bytes <= budget + 4096,
            "store grew past budget: {}",
            res.metrics.store_bytes
        );
    }

    #[test]
    fn obs_registry_sees_every_phase() {
        let (ctx, clf, batch) = setup(0.02, 7);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 100,
            ..Default::default()
        });
        let reg = MetricsRegistry::new();
        let shahin = ShahinBatch::default().with_obs(&reg);
        let res = shahin.explain_lime(&ctx, &clf, &batch, &lime, 23);
        let snap = reg.snapshot();
        // One span per phase, one retrieve + one fit per tuple.
        assert_eq!(snap.histograms["span.fim.mine"].count, 1);
        assert_eq!(snap.histograms["span.materialize.fill"].count, 1);
        let n = batch.n_rows() as u64;
        assert_eq!(snap.histograms["span.retrieve.match"].count, n);
        assert_eq!(snap.histograms["span.surrogate.fit"].count, n);
        // The recorded spans agree with the RunMetrics durations.
        assert_eq!(
            snap.histograms["span.fim.mine"].sum_ns,
            res.metrics.overhead.fim.as_nanos() as u64
        );
        assert_eq!(snap.counter("store.lookups"), n);
        assert!(snap.gauge("store.peak_bytes") > 0);
    }

    #[test]
    fn provenance_records_one_per_tuple_and_reconcile_with_counters() {
        use crate::obs::fold_provenance;
        use shahin_obs::ProvenanceSink;
        use std::sync::Arc;

        let (ctx, clf, batch) = setup(0.02, 9);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 100,
            ..Default::default()
        });
        let reg = MetricsRegistry::new();
        let sink = Arc::new(ProvenanceSink::new());
        reg.attach_provenance_sink(Arc::clone(&sink));
        let shahin = ShahinBatch::default().with_obs(&reg);
        let res = shahin.explain_lime(&ctx, &clf, &batch, &lime, 31);

        let recs = sink.records();
        assert_eq!(recs.len(), batch.n_rows(), "one record per tuple");
        for (row, r) in recs.iter().enumerate() {
            assert_eq!(r.tuple, row as u32);
            assert_eq!(&*r.method, "Shahin-Batch");
            assert_eq!(&*r.explainer, "LIME");
            assert_eq!(r.epoch, 0);
            assert_eq!(r.samples_reused + r.samples_fresh, r.tau);
        }

        fold_provenance(&reg);
        let snap = reg.snapshot();
        let totals = sink.totals();
        assert_eq!(totals.records, batch.n_rows() as u64);
        assert_eq!(snap.counter("store.lookups"), totals.records);
        assert_eq!(snap.counter("store.hits"), totals.matched_itemsets);
        assert_eq!(snap.counter("store.misses"), totals.store_misses);
        assert_eq!(
            snap.counter("store.samples_reused"),
            totals.samples_available
        );
        assert_eq!(snap.gauge("provenance.records"), totals.records);
        assert_eq!(snap.gauge("provenance.samples_fresh"), totals.samples_fresh);
        // The per-tuple invocation counts sum to the classifier's measured
        // delta for the explanation loop (prep invocations excluded).
        assert!(totals.invocations <= res.metrics.invocations);
        assert!(totals.samples_fresh > 0 && totals.samples_reused > 0);
    }

    #[test]
    fn obs_is_inert_by_default() {
        let (ctx, clf, batch) = setup(0.02, 8);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 50,
            ..Default::default()
        });
        let shahin = ShahinBatch::default();
        assert!(!shahin.obs.is_enabled());
        // Phase durations still flow into RunMetrics through detached spans.
        let res = shahin.explain_lime(&ctx, &clf, &batch, &lime, 29);
        assert!(res.metrics.overhead.materialization > Duration::ZERO);
    }

    #[test]
    fn overhead_is_small_fraction() {
        let (ctx, clf, batch) = setup(0.02, 6);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 200,
            ..Default::default()
        });
        let shahin = ShahinBatch::default();
        let res = shahin.explain_lime(&ctx, &clf, &batch, &lime, 19);
        let frac = res.metrics.overhead_fraction();
        assert!(frac < 0.5, "bookkeeping overhead {frac} too high");
    }
}
