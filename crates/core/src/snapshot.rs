//! Versioned, checksummed binary snapshots of warm serving state.
//!
//! Shahin's speedup lives in accumulated warm state — the materialized
//! [`crate::PerturbationStore`] and the shared Anchor caches — and that
//! state normally dies with the process. This module defines the on-disk
//! format that makes it durable and the validation that makes loading it
//! safe:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic  b"SHAHINWS"                                   8 bytes │
//! │ format version   u32 LE                              4 bytes │
//! │ config fingerprint  u64 LE                           8 bytes │
//! ├───────────────── repeated, one per section ──────────────────┤
//! │ tag u32 │ payload len u64 │ payload crc32 u32 │ payload ...  │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Everything is little-endian; payloads are raw contiguous vector dumps
//! (a length prefix, then elements) in the style of the typed-vector
//! `load_from`/`write_to` io of route-planning engines. Sections appear
//! in a fixed order: [`TAG_META`], [`TAG_STORE`], [`TAG_CACHES`].
//!
//! **Validation order on load**: magic → format version → config
//! fingerprint → per-section framing (a length running past the buffer is
//! [`SnapshotError::Truncated`]) → per-section CRC32
//! ([`SnapshotError::CrcMismatch`]) → structural checks inside the
//! payload ([`SnapshotError::Corrupt`]). Every failure is typed so
//! callers can log and count it, then degrade to a cold start — a bad
//! snapshot must never panic, and never serve.
//!
//! Writes never go through this module directly: callers serialize with
//! [`SnapshotWriter`] and persist via `shahin_obs::write_atomic`
//! (temp file + fsync + rename), so a crash mid-snapshot leaves the last
//! good file untouched.
//!
//! The [`fault`] submodule is the seeded fault injector the recovery
//! tests (and the CI metrics drill) use to manufacture each corruption
//! class deterministically.

use std::fmt;

/// First bytes of every warm-state snapshot.
pub const MAGIC: [u8; 8] = *b"SHAHINWS";

/// Current snapshot format version. Bump on any layout change; loaders
/// reject other versions rather than guessing.
pub const FORMAT_VERSION: u32 = 1;

/// Section tag: run metadata (seed, base value, explainer, warm dims).
pub(crate) const TAG_META: u32 = 1;
/// Section tag: the perturbation store (itemsets, samples, LRU state,
/// embedded bitset dictionary).
pub(crate) const TAG_STORE: u32 = 2;
/// Section tag: the shared Anchor caches.
pub(crate) const TAG_CACHES: u32 = 3;

/// Why a snapshot was rejected. Every variant maps to a stable
/// [`SnapshotError::kind`] string used for logging and `persist.*`
/// metric attribution.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written at all.
    Io(std::io::Error),
    /// The first 8 bytes are not [`MAGIC`] — not a snapshot.
    BadMagic,
    /// The snapshot was written by a different format version.
    WrongVersion {
        /// Version found in the header.
        found: u32,
        /// Version this binary writes and reads.
        expected: u32,
    },
    /// The snapshot was taken under a different configuration (config,
    /// seed, warm set, or explainer differ) — its state would be wrong,
    /// not merely stale.
    FingerprintMismatch {
        /// Fingerprint found in the header.
        found: u64,
        /// Fingerprint of the running configuration.
        expected: u64,
    },
    /// The file ends before the advertised data does (torn write, partial
    /// copy, truncation).
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A section's checksum does not match its payload (bit rot, torn
    /// overwrite).
    CrcMismatch {
        /// Which section failed.
        section: &'static str,
    },
    /// The payload passed its CRC but violates a structural invariant
    /// (should only happen for snapshots corrupted *before* checksumming,
    /// i.e. writer bugs — still rejected, never served).
    Corrupt {
        /// Which invariant failed.
        context: &'static str,
    },
}

impl SnapshotError {
    /// Stable short name of the rejection class, for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotError::Io(_) => "io",
            SnapshotError::BadMagic => "bad_magic",
            SnapshotError::WrongVersion { .. } => "wrong_version",
            SnapshotError::FingerprintMismatch { .. } => "fingerprint_mismatch",
            SnapshotError::Truncated { .. } => "truncated",
            SnapshotError::CrcMismatch { .. } => "crc_mismatch",
            SnapshotError::Corrupt { .. } => "corrupt",
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a Shahin snapshot (bad magic)"),
            SnapshotError::WrongVersion { found, expected } => {
                write!(f, "snapshot format version {found} (this binary reads {expected})")
            }
            SnapshotError::FingerprintMismatch { found, expected } => write!(
                f,
                "snapshot config fingerprint {found:#018x} does not match the running \
                 configuration {expected:#018x}"
            ),
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::CrcMismatch { section } => {
                write!(f, "snapshot section '{section}' failed its checksum")
            }
            SnapshotError::Corrupt { context } => {
                write!(f, "snapshot is structurally corrupt: {context}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant), table-driven.
/// Implemented locally — the workspace is dependency-free by policy.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

// ---------------------------------------------------------------------
// Payload primitives: a little-endian encoder/decoder pair shared by the
// store, cache, and engine dump/load methods (which live in their own
// modules, next to the private fields they serialize).
// ---------------------------------------------------------------------

/// Little-endian payload encoder.
#[derive(Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc::default()
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed raw bytes.
    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub(crate) fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// An itemset as item count + per-item `(attr, code)` pairs. Items
    /// are already sorted and deduped inside `Itemset`, so the encoding
    /// is canonical.
    pub(crate) fn itemset(&mut self, set: &shahin_fim::Itemset) {
        self.u32(set.len() as u32);
        for item in set.items() {
            self.u32(u32::from(item.attr));
            self.u32(item.code);
        }
    }
}

/// Bounds-checked little-endian payload decoder. Every read failure is a
/// typed [`SnapshotError::Truncated`] carrying the caller's context.
pub(crate) struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Context for truncation errors ("store section", "caches section").
    context: &'static str,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(bytes: &'a [u8], context: &'static str) -> Dec<'a> {
        Dec {
            bytes,
            pos: 0,
            context,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Truncated {
                context: self.context,
            })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length prefix (bytes or element count — every element is at
    /// least one byte), bounded by the remaining payload so a corrupted
    /// length can never trigger a huge allocation.
    pub(crate) fn len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u64()? as usize;
        if n > self.bytes.len() - self.pos {
            return Err(SnapshotError::Truncated {
                context: self.context,
            });
        }
        Ok(n)
    }

    /// Length-prefixed raw bytes.
    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.len()?;
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub(crate) fn str(&mut self) -> Result<String, SnapshotError> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| SnapshotError::Corrupt {
            context: "non-UTF-8 string",
        })
    }

    pub(crate) fn itemset(&mut self) -> Result<shahin_fim::Itemset, SnapshotError> {
        let n = self.u32()? as usize;
        // The bitset engine stores itemset sizes in a u8; anything wider
        // is not a value this codebase can have written.
        if n > usize::from(u8::MAX) {
            return Err(SnapshotError::Corrupt {
                context: "itemset longer than the supported maximum",
            });
        }
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            let attr = self.u32()?;
            let code = self.u32()?;
            if attr > u32::from(u16::MAX) {
                return Err(SnapshotError::Corrupt {
                    context: "itemset attribute exceeds u16",
                });
            }
            items.push(shahin_fim::Item::new(attr as usize, code));
        }
        Ok(shahin_fim::Itemset::new(items))
    }

    /// True once every payload byte has been consumed; dump/load pairs
    /// assert this so silent trailing garbage cannot hide a version skew.
    pub(crate) fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    pub(crate) fn finish(self) -> Result<(), SnapshotError> {
        if self.done() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt {
                context: "trailing bytes after payload",
            })
        }
    }
}

// ---------------------------------------------------------------------
// File-level framing.
// ---------------------------------------------------------------------

/// Serializes a whole snapshot: header, then checksummed sections.
pub(crate) struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    pub(crate) fn new(fingerprint: u64) -> SnapshotWriter {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&fingerprint.to_le_bytes());
        SnapshotWriter { buf }
    }

    /// Appends one `[tag][len][crc][payload]` section.
    pub(crate) fn section(&mut self, tag: u32, payload: &[u8]) {
        self.buf.extend_from_slice(&tag.to_le_bytes());
        self.buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Validating reader over a whole snapshot. [`SnapshotReader::open`]
/// checks magic, version, and fingerprint; each
/// [`SnapshotReader::section`] call checks framing and the payload CRC
/// before handing the payload out.
#[derive(Debug)]
pub(crate) struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    pub(crate) fn open(
        bytes: &'a [u8],
        expected_fingerprint: u64,
    ) -> Result<SnapshotReader<'a>, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            // Too short to even carry a header: classify by what *is*
            // there so a torn write of the first bytes still reads as
            // "not a snapshot" when the magic itself is wrong.
            if !MAGIC.starts_with(&bytes[..bytes.len().min(MAGIC.len())]) {
                return Err(SnapshotError::BadMagic);
            }
            return Err(SnapshotError::Truncated { context: "header" });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(SnapshotError::WrongVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let fingerprint = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        if fingerprint != expected_fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                found: fingerprint,
                expected: expected_fingerprint,
            });
        }
        Ok(SnapshotReader { bytes, pos: 20 })
    }

    /// Reads the next section, which must carry `tag`, and returns its
    /// CRC-verified payload.
    pub(crate) fn section(
        &mut self,
        tag: u32,
        name: &'static str,
    ) -> Result<&'a [u8], SnapshotError> {
        let header_end = self.pos.checked_add(16).filter(|&e| e <= self.bytes.len());
        let Some(header_end) = header_end else {
            return Err(SnapshotError::Truncated {
                context: "section header",
            });
        };
        let found_tag = u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().unwrap());
        if found_tag != tag {
            return Err(SnapshotError::Corrupt {
                context: "unexpected section tag",
            });
        }
        let len =
            u64::from_le_bytes(self.bytes[self.pos + 4..self.pos + 12].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(self.bytes[self.pos + 12..header_end].try_into().unwrap());
        let end = header_end.checked_add(len).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(SnapshotError::Truncated { context: name });
        };
        let payload = &self.bytes[header_end..end];
        if crc32(payload) != crc {
            return Err(SnapshotError::CrcMismatch { section: name });
        }
        self.pos = end;
        Ok(payload)
    }
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

/// Seeded corruption of snapshot bytes, one constructor per failure class
/// the recovery path must survive. Deterministic — the same `(bytes,
/// corruption, seed)` triple always yields the same damaged file — so
/// recovery tests reproduce exactly. Extends the PR-4 chaos approach
/// (deterministic injected faults, typed observable outcomes) from the
/// classifier boundary to the persistence boundary.
pub mod fault {
    /// One class of snapshot damage.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Corruption {
        /// The tail of the file never made it to disk: the bytes are cut
        /// at a seeded point in the second half (as if the writer died
        /// mid-`write`). Detected as `Truncated`.
        TornWrite,
        /// The file is cut to a seeded point anywhere, including inside
        /// the header. Detected as `Truncated` (or `BadMagic` for cuts
        /// inside the magic itself).
        Truncation,
        /// A single seeded bit is flipped somewhere in a section payload.
        /// Detected as `CrcMismatch`.
        BitFlip,
        /// The header's format version is rewritten to a future version
        /// (a downgrade scenario). Detected as `WrongVersion`.
        StaleVersion,
    }

    impl Corruption {
        /// All classes, for exhaustive test sweeps.
        pub const ALL: [Corruption; 4] = [
            Corruption::TornWrite,
            Corruption::Truncation,
            Corruption::BitFlip,
            Corruption::StaleVersion,
        ];
    }

    /// SplitMix64 step — the same generator the store uses for stream
    /// splitting; good enough to pick damage sites uniformly.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a damaged copy of `bytes` exhibiting `corruption`.
    pub fn corrupt(bytes: &[u8], corruption: Corruption, seed: u64) -> Vec<u8> {
        let mut state = seed ^ 0xC0FF_EE00_5EED_D00D;
        let mut out = bytes.to_vec();
        match corruption {
            Corruption::TornWrite => {
                // Cut in the second half: the header survives, data does
                // not — the classic power-loss-mid-write shape.
                let lo = bytes.len() / 2;
                let cut = lo + (splitmix(&mut state) as usize) % (bytes.len() - lo).max(1);
                out.truncate(cut);
            }
            Corruption::Truncation => {
                let cut = (splitmix(&mut state) as usize) % bytes.len().max(1);
                out.truncate(cut);
            }
            Corruption::BitFlip => {
                // Flip past the 20-byte header so the damage lands in a
                // section (header damage is the other classes' job).
                let lo = 20.min(bytes.len().saturating_sub(1));
                let idx = lo + (splitmix(&mut state) as usize) % (bytes.len() - lo).max(1);
                let bit = splitmix(&mut state) % 8;
                out[idx] ^= 1u8 << bit;
            }
            Corruption::StaleVersion => {
                if out.len() >= 12 {
                    let future = super::FORMAT_VERSION + 1 + (splitmix(&mut state) as u32 % 7);
                    out[8..12].copy_from_slice(&future.to_le_bytes());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn enc_dec_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.f64(std::f64::consts::PI);
        e.bytes(b"abc");
        e.str("warm");
        let set = shahin_fim::Itemset::new(vec![
            shahin_fim::Item::new(3, 9),
            shahin_fim::Item::new(1, 2),
        ]);
        e.itemset(&set);
        let mut d = Dec::new(&e.buf, "test");
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.f64().unwrap(), std::f64::consts::PI);
        assert_eq!(d.bytes().unwrap(), b"abc");
        assert_eq!(d.str().unwrap(), "warm");
        assert_eq!(d.itemset().unwrap(), set);
        d.finish().unwrap();
    }

    #[test]
    fn dec_truncation_is_typed() {
        let mut d = Dec::new(&[1, 2], "unit");
        let err = d.u32().unwrap_err();
        assert_eq!(err.kind(), "truncated");
        assert!(err.to_string().contains("unit"));
    }

    fn sample_snapshot(fingerprint: u64) -> Vec<u8> {
        let mut w = SnapshotWriter::new(fingerprint);
        let mut meta = Enc::new();
        meta.u64(42);
        meta.str("LIME");
        w.section(TAG_META, &meta.buf);
        let mut store = Enc::new();
        store.bytes(&[9u8; 100]);
        w.section(TAG_STORE, &store.buf);
        w.section(TAG_CACHES, &[]);
        w.finish()
    }

    #[test]
    fn writer_reader_round_trip() {
        let bytes = sample_snapshot(0xFEED);
        let mut r = SnapshotReader::open(&bytes, 0xFEED).unwrap();
        let meta = r.section(TAG_META, "meta").unwrap();
        let mut d = Dec::new(meta, "meta");
        assert_eq!(d.u64().unwrap(), 42);
        assert_eq!(d.str().unwrap(), "LIME");
        let store = r.section(TAG_STORE, "store").unwrap();
        assert_eq!(store.len(), 108);
        assert!(r.section(TAG_CACHES, "caches").unwrap().is_empty());
    }

    #[test]
    fn open_rejects_wrong_magic_version_and_fingerprint() {
        let bytes = sample_snapshot(1);
        let mut not_ours = bytes.clone();
        not_ours[0] = b'X';
        assert_eq!(
            SnapshotReader::open(&not_ours, 1).unwrap_err().kind(),
            "bad_magic"
        );
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&(FORMAT_VERSION + 3).to_le_bytes());
        match SnapshotReader::open(&future, 1).unwrap_err() {
            SnapshotError::WrongVersion { found, expected } => {
                assert_eq!(found, FORMAT_VERSION + 3);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected WrongVersion, got {other:?}"),
        }
        match SnapshotReader::open(&bytes, 2).unwrap_err() {
            SnapshotError::FingerprintMismatch { found, expected } => {
                assert_eq!(found, 1);
                assert_eq!(expected, 2);
            }
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
    }

    #[test]
    fn every_fault_class_is_rejected_with_its_typed_error() {
        let bytes = sample_snapshot(7);
        for seed in 0..50u64 {
            for class in fault::Corruption::ALL {
                let damaged = fault::corrupt(&bytes, class, seed);
                let result = SnapshotReader::open(&damaged, 7).and_then(|mut r| {
                    r.section(TAG_META, "meta")?;
                    r.section(TAG_STORE, "store")?;
                    r.section(TAG_CACHES, "caches")?;
                    Ok(())
                });
                let err = match result {
                    // A bit flip can land in unread trailing slack only if
                    // sections didn't cover the file; here they do, so
                    // every class must error.
                    Ok(()) => panic!("{class:?} seed {seed} was not detected"),
                    Err(e) => e,
                };
                let kind = err.kind();
                match class {
                    fault::Corruption::TornWrite => {
                        assert!(
                            kind == "truncated" || kind == "crc_mismatch",
                            "{class:?} seed {seed} -> {kind}"
                        );
                    }
                    fault::Corruption::Truncation => {
                        assert!(
                            kind == "truncated" || kind == "bad_magic" || kind == "crc_mismatch",
                            "{class:?} seed {seed} -> {kind}"
                        );
                    }
                    fault::Corruption::BitFlip => {
                        // A flip in a section header reads as framing
                        // damage; anywhere else the CRC catches it.
                        assert!(
                            kind == "crc_mismatch" || kind == "truncated" || kind == "corrupt",
                            "{class:?} seed {seed} -> {kind}"
                        );
                    }
                    fault::Corruption::StaleVersion => {
                        assert_eq!(kind, "wrong_version", "{class:?} seed {seed}");
                    }
                }
            }
        }
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let bytes = sample_snapshot(3);
        for class in fault::Corruption::ALL {
            assert_eq!(
                fault::corrupt(&bytes, class, 11),
                fault::corrupt(&bytes, class, 11)
            );
        }
    }
}
