//! Per-tuple panic isolation for the batch drivers.
//!
//! A production batch must not lose hours of materialized perturbation
//! work because one tuple's classifier call misbehaved. Every driver
//! wraps its per-tuple body in [`guard_tuple`]: a panic unwinding out of
//! the tuple (either a raw panic from the model or a typed
//! [`shahin_model::PredictError`] escalated by the resilient wrapper) is
//! caught, classified, and turned into a
//! [`crate::metrics::TupleFailure`] — the batch finishes without the
//! tuple, and shared state (the perturbation store, the metrics registry,
//! the Anchor caches) stays usable because it is all lock-free or guarded
//! by non-poisoning `parking_lot` locks.

use std::panic::{catch_unwind, AssertUnwindSafe};

use shahin_model::{degraded_incidents, payload_message, PredictError};
use shahin_obs::{Counter, MetricsRegistry};

use crate::metrics::{BatchReport, FailureKind, TupleFailure};
use crate::obs::names;

/// Resolved handles for the driver-level `resilience.*` counters.
#[derive(Clone)]
pub(crate) struct QuarantineObs {
    panics_isolated: Counter,
    tuples_failed: Counter,
    tuples_degraded: Counter,
}

impl QuarantineObs {
    pub(crate) fn new(reg: &MetricsRegistry) -> QuarantineObs {
        QuarantineObs {
            panics_isolated: reg.counter(names::RESILIENCE_PANICS_ISOLATED),
            tuples_failed: reg.counter(names::RESILIENCE_TUPLES_FAILED),
            tuples_degraded: reg.counter(names::RESILIENCE_TUPLES_DEGRADED),
        }
    }

    /// Counts one contained unwind that did not kill a tuple (itemset
    /// materialization, base-value estimation, streaming refresh).
    pub(crate) fn note_contained_panic(&self) {
        self.panics_isolated.inc();
    }

    pub(crate) fn note_degraded(&self) {
        self.tuples_degraded.inc();
    }

    fn note_failed(&self) {
        self.panics_isolated.inc();
        self.tuples_failed.inc();
    }
}

/// Maps a caught panic payload to the failure taxonomy: a typed
/// [`PredictError`] keeps its kind, anything else is an unclassified
/// panic.
pub(crate) fn classify_payload(payload: Box<dyn std::any::Any + Send>) -> (FailureKind, String) {
    let kind = match payload.downcast_ref::<PredictError>() {
        Some(PredictError::Transient { .. }) => FailureKind::Transient,
        Some(PredictError::Timeout { .. }) => FailureKind::Timeout,
        Some(PredictError::InvalidOutput { .. }) => FailureKind::InvalidOutput,
        Some(PredictError::Fatal { .. }) => FailureKind::Fatal,
        None => FailureKind::Panic,
    };
    (kind, payload_message(&*payload))
}

/// Outcome of one guarded tuple.
pub(crate) enum TupleOutcome<T> {
    /// Explained cleanly.
    Ok(T),
    /// Explained, but the resilient boundary absorbed incidents
    /// (retries, sanitized outputs) along the way.
    Degraded(T),
    /// A panic unwound out of the tuple; it is quarantined.
    Failed(TupleFailure),
}

/// Runs one tuple's explanation body with panic isolation and degraded
/// detection. `body` must run entirely on the calling thread (every
/// driver in this crate explains a tuple on exactly one worker), because
/// degradation is detected via a thread-local incident counter delta.
/// The body receives the baseline incident count, so it can compute the
/// tuple's degraded flag itself (for the provenance record) via
/// `degraded_incidents() > baseline`, and returns `(value, degraded)` —
/// the flag is OR-ed with the final delta check.
pub(crate) fn guard_tuple<T>(
    row: u32,
    obs: &QuarantineObs,
    body: impl FnOnce(u64) -> (T, bool),
) -> TupleOutcome<T> {
    let incidents0 = degraded_incidents();
    match catch_unwind(AssertUnwindSafe(|| body(incidents0))) {
        Ok((value, extra_degraded)) => {
            if extra_degraded || degraded_incidents() > incidents0 {
                obs.note_degraded();
                TupleOutcome::Degraded(value)
            } else {
                TupleOutcome::Ok(value)
            }
        }
        Err(payload) => {
            obs.note_failed();
            let (kind, message) = classify_payload(payload);
            TupleOutcome::Failed(TupleFailure { row, kind, message })
        }
    }
}

/// Folds the per-row outcome slots of a parallel driver (index == row)
/// into the surviving explanations and the batch report. Failures and
/// degraded rows come out in row order because the slots are walked in
/// order.
pub(crate) fn collect_outcomes<T>(slots: Vec<Option<TupleOutcome<T>>>) -> (Vec<T>, BatchReport) {
    let mut explanations = Vec::with_capacity(slots.len());
    let mut report = BatchReport::default();
    for (row, slot) in slots.into_iter().enumerate() {
        match slot.expect("every row visited") {
            TupleOutcome::Ok(v) => explanations.push(v),
            TupleOutcome::Degraded(v) => {
                explanations.push(v);
                report.degraded.push(row as u32);
            }
            TupleOutcome::Failed(f) => report.failures.push(f),
        }
    }
    (explanations, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> (MetricsRegistry, QuarantineObs) {
        let reg = MetricsRegistry::new();
        let q = QuarantineObs::new(&reg);
        (reg, q)
    }

    #[test]
    fn clean_body_is_ok() {
        let (reg, q) = obs();
        match guard_tuple(0, &q, |_| (42, false)) {
            TupleOutcome::Ok(42) => {}
            _ => panic!("expected clean outcome"),
        }
        assert_eq!(reg.snapshot().counter(names::RESILIENCE_TUPLES_FAILED), 0);
    }

    #[test]
    fn extra_degraded_flag_marks_the_tuple() {
        let (reg, q) = obs();
        match guard_tuple(1, &q, |_| ("x", true)) {
            TupleOutcome::Degraded("x") => {}
            _ => panic!("expected degraded outcome"),
        }
        assert_eq!(reg.snapshot().counter(names::RESILIENCE_TUPLES_DEGRADED), 1);
    }

    #[test]
    fn raw_panics_classify_as_panic_kind() {
        let (reg, q) = obs();
        let outcome = guard_tuple(7, &q, |_| -> (u32, bool) { panic!("model exploded") });
        match outcome {
            TupleOutcome::Failed(f) => {
                assert_eq!(f.row, 7);
                assert_eq!(f.kind, FailureKind::Panic);
                assert!(f.message.contains("model exploded"));
            }
            _ => panic!("expected failure"),
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter(names::RESILIENCE_TUPLES_FAILED), 1);
        assert_eq!(snap.counter(names::RESILIENCE_PANICS_ISOLATED), 1);
    }

    #[test]
    fn typed_payloads_keep_their_kind() {
        let (_reg, q) = obs();
        let outcome = guard_tuple(3, &q, |_| -> (u32, bool) {
            std::panic::panic_any(PredictError::Fatal {
                message: "retry budget exhausted".into(),
            })
        });
        match outcome {
            TupleOutcome::Failed(f) => {
                assert_eq!(f.kind, FailureKind::Fatal);
                assert!(f.message.contains("retry budget exhausted"));
            }
            _ => panic!("expected failure"),
        }
    }

    #[test]
    fn incident_delta_marks_degraded_without_explicit_flag() {
        use shahin_model::{FallibleClassifier, ResilientClassifier, RetryPolicy};
        use shahin_tabular::Feature;
        struct Nan;
        impl FallibleClassifier for Nan {
            fn try_predict_proba(&self, _i: &[Feature]) -> Result<f64, shahin_model::PredictError> {
                Ok(f64::NAN)
            }
        }
        let (_reg, q) = obs();
        let clf = ResilientClassifier::new(Nan, RetryPolicy::default());
        let outcome = guard_tuple(0, &q, |_| {
            use shahin_model::Classifier;
            (clf.predict_proba(&[Feature::Cat(0)]), false)
        });
        match outcome {
            TupleOutcome::Degraded(p) => assert_eq!(p, 0.5),
            _ => panic!("sanitized output must mark the tuple degraded"),
        }
    }
}
