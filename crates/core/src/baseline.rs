//! The paper's baseline approaches: Sequential, Dist-k, and GREEDY (§4.1).

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin_explain::anchor::RuleSampler;
use shahin_explain::{
    estimate_base_value, labeled_perturbation, AnchorExplainer, AnchorExplanation, CoalitionSample,
    ExplainContext, FeatureWeights, KernelShapExplainer, LabeledSample, LimeExplainer, NoSource,
};
use shahin_fim::Itemset;
use shahin_model::{Classifier, CountingClassifier};
use shahin_tabular::{Dataset, Feature};

use crate::greedy_cache::TaggedLruCache;
use crate::metrics::{BatchReport, BatchResult, RunMetrics};
use crate::runner::per_tuple_seed;

// ---------------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------------

/// Explains the batch one tuple at a time with plain LIME.
pub fn sequential_lime<C: Classifier>(
    ctx: &ExplainContext,
    clf: &CountingClassifier<C>,
    batch: &Dataset,
    lime: &LimeExplainer,
    seed: u64,
) -> BatchResult<FeatureWeights> {
    let start_inv = clf.invocations();
    let wall0 = Instant::now();
    let explanations = (0..batch.n_rows())
        .map(|row| {
            let mut rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
            lime.explain(ctx, clf, &batch.instance(row), &mut rng)
        })
        .collect();
    BatchResult {
        explanations,
        report: BatchReport::default(),
        metrics: RunMetrics {
            invocations: clf.invocations() - start_inv,
            wall: wall0.elapsed(),
            n_tuples: batch.n_rows(),
            ..Default::default()
        },
    }
}

/// Explains the batch one tuple at a time with plain Anchor.
pub fn sequential_anchor<C: Classifier>(
    ctx: &ExplainContext,
    clf: &CountingClassifier<C>,
    batch: &Dataset,
    anchor: &AnchorExplainer,
    seed: u64,
) -> BatchResult<AnchorExplanation> {
    let start_inv = clf.invocations();
    let wall0 = Instant::now();
    let explanations = (0..batch.n_rows())
        .map(|row| {
            let mut rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
            anchor.explain(ctx, clf, &batch.instance(row), &mut rng)
        })
        .collect();
    BatchResult {
        explanations,
        report: BatchReport::default(),
        metrics: RunMetrics {
            invocations: clf.invocations() - start_inv,
            wall: wall0.elapsed(),
            n_tuples: batch.n_rows(),
            ..Default::default()
        },
    }
}

/// Explains the batch one tuple at a time with plain KernelSHAP. The base
/// value is estimated once (`base_samples` invocations), exactly as the
/// reference implementation's fixed background set.
pub fn sequential_shap<C: Classifier>(
    ctx: &ExplainContext,
    clf: &CountingClassifier<C>,
    batch: &Dataset,
    shap: &KernelShapExplainer,
    base_samples: usize,
    seed: u64,
) -> BatchResult<FeatureWeights> {
    let start_inv = clf.invocations();
    let wall0 = Instant::now();
    let mut base_rng = StdRng::seed_from_u64(seed ^ 0xBA5E);
    let base = estimate_base_value(ctx, clf, base_samples, &mut base_rng);
    let explanations = (0..batch.n_rows())
        .map(|row| {
            let mut rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
            shap.explain(ctx, clf, &batch.instance(row), base, &mut rng)
        })
        .collect();
    BatchResult {
        explanations,
        report: BatchReport::default(),
        metrics: RunMetrics {
            invocations: clf.invocations() - start_inv,
            wall: wall0.elapsed(),
            n_tuples: batch.n_rows(),
            ..Default::default()
        },
    }
}

// ---------------------------------------------------------------------------
// Dist-k
// ---------------------------------------------------------------------------

/// Simulates spreading `work(row)` over `k` machines: the rows are split
/// into `k` contiguous shards, each shard is executed (and timed) in
/// isolation, and the *average* shard time is reported — exactly the
/// metric the paper uses ("we report the average time taken by the 8
/// machines as the runtime"). Returns the results in row order, the
/// average shard time, and the maximum (true makespan).
///
/// Executing shards one after another on this machine measures what `k`
/// isolated machines would each spend, minus any coordination overhead —
/// i.e. it *flatters* the Dist-k baseline, making Shahin's wins
/// conservative.
pub fn dist_k<T>(
    n_rows: usize,
    k: usize,
    mut work: impl FnMut(usize) -> T,
) -> (Vec<T>, Duration, Duration) {
    assert!(k >= 1, "need at least one worker");
    let k = k.min(n_rows.max(1));
    let chunk = n_rows.div_ceil(k);
    let mut results: Vec<T> = Vec::with_capacity(n_rows);
    let mut durations = Vec::with_capacity(k);
    let mut row = 0usize;
    while row < n_rows {
        let end = (row + chunk).min(n_rows);
        let t0 = Instant::now();
        for r in row..end {
            results.push(work(r));
        }
        durations.push(t0.elapsed());
        row = end;
    }
    let total: Duration = durations.iter().sum();
    let avg = total / durations.len().max(1) as u32;
    let max = durations.iter().max().copied().unwrap_or_default();
    (results, avg, max)
}

/// Dist-k LIME: the batch split over `k` threads, each running the
/// sequential algorithm on its shard.
pub fn dist_k_lime<C: Classifier>(
    ctx: &ExplainContext,
    clf: &CountingClassifier<C>,
    batch: &Dataset,
    lime: &LimeExplainer,
    k: usize,
    seed: u64,
) -> BatchResult<FeatureWeights> {
    let start_inv = clf.invocations();
    let (explanations, avg, _max) = dist_k(batch.n_rows(), k, |row| {
        let mut rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
        lime.explain(ctx, clf, &batch.instance(row), &mut rng)
    });
    BatchResult {
        explanations,
        report: BatchReport::default(),
        metrics: RunMetrics {
            invocations: clf.invocations() - start_inv,
            wall: avg,
            n_tuples: batch.n_rows(),
            ..Default::default()
        },
    }
}

/// Dist-k Anchor.
pub fn dist_k_anchor<C: Classifier>(
    ctx: &ExplainContext,
    clf: &CountingClassifier<C>,
    batch: &Dataset,
    anchor: &AnchorExplainer,
    k: usize,
    seed: u64,
) -> BatchResult<AnchorExplanation> {
    let start_inv = clf.invocations();
    let (explanations, avg, _max) = dist_k(batch.n_rows(), k, |row| {
        let mut rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
        anchor.explain(ctx, clf, &batch.instance(row), &mut rng)
    });
    BatchResult {
        explanations,
        report: BatchReport::default(),
        metrics: RunMetrics {
            invocations: clf.invocations() - start_inv,
            wall: avg,
            n_tuples: batch.n_rows(),
            ..Default::default()
        },
    }
}

/// Dist-k KernelSHAP.
pub fn dist_k_shap<C: Classifier>(
    ctx: &ExplainContext,
    clf: &CountingClassifier<C>,
    batch: &Dataset,
    shap: &KernelShapExplainer,
    base_samples: usize,
    k: usize,
    seed: u64,
) -> BatchResult<FeatureWeights> {
    let start_inv = clf.invocations();
    let mut base_rng = StdRng::seed_from_u64(seed ^ 0xBA5E);
    let base = estimate_base_value(ctx, clf, base_samples, &mut base_rng);
    let (explanations, avg, _max) = dist_k(batch.n_rows(), k, |row| {
        let mut rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
        shap.explain(ctx, clf, &batch.instance(row), base, &mut rng)
    });
    BatchResult {
        explanations,
        report: BatchReport::default(),
        metrics: RunMetrics {
            invocations: clf.invocations() - start_inv,
            wall: avg,
            n_tuples: batch.n_rows(),
            ..Default::default()
        },
    }
}

// ---------------------------------------------------------------------------
// GREEDY
// ---------------------------------------------------------------------------

/// Wraps a classifier and records every invocation as a discretized
/// [`LabeledSample`], so GREEDY can persist whatever perturbations the
/// (unmodified) explainer happened to generate.
struct RecordingClassifier<'a, C> {
    inner: &'a C,
    ctx: &'a ExplainContext,
    log: Mutex<Vec<LabeledSample>>,
}

impl<'a, C: Classifier> RecordingClassifier<'a, C> {
    fn new(inner: &'a C, ctx: &'a ExplainContext) -> Self {
        RecordingClassifier {
            inner,
            ctx,
            log: Mutex::new(Vec::new()),
        }
    }

    fn take_log(&self) -> Vec<LabeledSample> {
        std::mem::take(&mut self.log.lock())
    }
}

impl<C: Classifier> Classifier for RecordingClassifier<'_, C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        let proba = self.inner.predict_proba(instance);
        let codes = self.ctx.discretizer().encode_instance(instance);
        self.log.lock().push(LabeledSample {
            codes: codes.into_boxed_slice(),
            proba,
        });
        proba
    }
}

/// The GREEDY baseline: an LRU perturbation cache with no planning. Stores
/// every perturbation any explanation generated; reuses whatever fits.
#[derive(Clone, Debug)]
pub struct Greedy {
    /// Cache byte budget (paper default: 10× the batch bytes).
    pub budget_bytes: usize,
}

impl Greedy {
    /// Creates a GREEDY baseline with the given cache budget.
    pub fn new(budget_bytes: usize) -> Greedy {
        Greedy { budget_bytes }
    }

    /// The paper's default budget: 10× the (discretized) batch size.
    pub fn default_budget(batch: &Dataset) -> usize {
        10 * batch.n_rows() * batch.n_attrs() * std::mem::size_of::<u32>()
    }

    /// GREEDY LIME: reuse cached samples, record and cache fresh ones.
    pub fn explain_lime<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        batch: &Dataset,
        lime: &LimeExplainer,
        seed: u64,
    ) -> BatchResult<FeatureWeights> {
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut cache = TaggedLruCache::new(self.budget_bytes);
        let table = ctx.discretizer().encode_dataset(batch);
        let mut explanations = Vec::with_capacity(batch.n_rows());
        for row in 0..batch.n_rows() {
            let mut rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
            let codes = table.row(row);
            let hits: Vec<LabeledSample> = cache
                .lookup(&codes, lime.params.n_samples.saturating_sub(1))
                .into_iter()
                .cloned()
                .collect();
            let recorder = RecordingClassifier::new(clf, ctx);
            let e = lime.explain_with_reused(
                ctx,
                &recorder,
                &batch.instance(row),
                hits.iter(),
                &mut rng,
            );
            // First recorded call is the instance itself; cache the rest.
            for s in recorder.take_log().into_iter().skip(1) {
                cache.insert(&codes, s);
            }
            explanations.push(e);
        }
        BatchResult {
            explanations,
            report: BatchReport::default(),
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                store_bytes: cache.used_bytes(),
                n_tuples: batch.n_rows(),
                ..Default::default()
            },
        }
    }

    /// GREEDY KernelSHAP: cached samples re-enter as coalitions over their
    /// full agreement set with the current tuple; fresh perturbations are
    /// recorded and cached.
    #[allow(clippy::too_many_arguments)]
    pub fn explain_shap<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        batch: &Dataset,
        shap: &KernelShapExplainer,
        base_samples: usize,
        seed: u64,
    ) -> BatchResult<FeatureWeights> {
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut base_rng = StdRng::seed_from_u64(seed ^ 0xBA5E);
        let base = estimate_base_value(ctx, clf, base_samples, &mut base_rng);
        let mut cache = TaggedLruCache::new(self.budget_bytes);
        let table = ctx.discretizer().encode_dataset(batch);
        let mut explanations = Vec::with_capacity(batch.n_rows());
        for row in 0..batch.n_rows() {
            let mut rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
            let codes = table.row(row);
            let pooled: Vec<CoalitionSample> = cache
                .lookup(&codes, shap.params.n_samples / 2)
                .into_iter()
                .map(|s| CoalitionSample {
                    coalition: s
                        .codes
                        .iter()
                        .enumerate()
                        .filter(|&(a, &c)| codes[a] == c)
                        .map(|(a, _)| a as u16)
                        .collect(),
                    proba: s.proba,
                })
                .collect();
            let recorder = RecordingClassifier::new(clf, ctx);
            let e = shap.explain_with(
                ctx,
                &recorder,
                &batch.instance(row),
                base,
                pooled,
                &mut NoSource,
                &mut rng,
            );
            for s in recorder.take_log().into_iter().skip(1) {
                cache.insert(&codes, s);
            }
            explanations.push(e);
        }
        BatchResult {
            explanations,
            report: BatchReport::default(),
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                store_bytes: cache.used_bytes(),
                n_tuples: batch.n_rows(),
                ..Default::default()
            },
        }
    }

    /// GREEDY Anchor: per-rule precision counts are kept and reused across
    /// tuples, but there is no frequent-itemset bootstrap and no coverage
    /// memoization.
    pub fn explain_anchor<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        batch: &Dataset,
        anchor: &AnchorExplainer,
        seed: u64,
    ) -> BatchResult<AnchorExplanation> {
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let table = ctx.discretizer().encode_dataset(batch);
        let mut counts: std::collections::HashMap<Itemset, (u64, u64)> =
            std::collections::HashMap::new();
        let mut explanations = Vec::with_capacity(batch.n_rows());
        for row in 0..batch.n_rows() {
            let instance = batch.instance(row);
            let target = clf.predict(&instance);
            let codes = table.row(row);
            let mut sampler = GreedyRuleSampler {
                ctx,
                clf,
                counts: &mut counts,
                rng: StdRng::seed_from_u64(per_tuple_seed(seed, row)),
            };
            explanations.push(anchor.explain_with_sampler(&codes, target, &mut sampler));
        }
        BatchResult {
            explanations,
            report: BatchReport::default(),
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                n_tuples: batch.n_rows(),
                ..Default::default()
            },
        }
    }
}

/// Greedy Anchor sampler: exact-rule count reuse only.
struct GreedyRuleSampler<'a, C> {
    ctx: &'a ExplainContext,
    clf: &'a C,
    counts: &'a mut std::collections::HashMap<Itemset, (u64, u64)>,
    rng: StdRng,
}

impl<C: Classifier> RuleSampler for GreedyRuleSampler<'_, C> {
    fn draw(&mut self, rule: &Itemset, k: usize) -> (u64, u64) {
        let mut pos = 0u64;
        for _ in 0..k {
            let s = labeled_perturbation(self.ctx, self.clf, rule, &mut self.rng);
            pos += u64::from(s.proba >= 0.5);
        }
        let e = self.counts.entry(rule.clone()).or_insert((0, 0));
        e.0 += k as u64;
        e.1 += pos;
        (k as u64, pos)
    }

    fn prior(&mut self, rule: &Itemset) -> (u64, u64) {
        self.counts.get(rule).copied().unwrap_or((0, 0))
    }

    fn coverage(&mut self, rule: &Itemset) -> f64 {
        shahin_explain::anchor::rule_coverage(self.ctx.coverage_sample(), rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shahin_model::MajorityClass;
    use shahin_tabular::{train_test_split, DatasetPreset};

    fn setup(seed: u64) -> (ExplainContext, CountingClassifier<MajorityClass>, Dataset) {
        let (data, labels) = DatasetPreset::Recidivism.spec(0.05).generate(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
        let ctx = ExplainContext::fit(&split.train, 300, &mut rng);
        let clf = CountingClassifier::new(MajorityClass::fit(&split.train_labels));
        let rows: Vec<usize> = (0..split.test.n_rows().min(30)).collect();
        (ctx, clf, split.test.select(&rows))
    }

    #[test]
    fn sequential_lime_costs_n_per_tuple() {
        let (ctx, clf, batch) = setup(0);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 50,
            ..Default::default()
        });
        let res = sequential_lime(&ctx, &clf, &batch, &lime, 3);
        assert_eq!(res.metrics.invocations, 50 * batch.n_rows() as u64);
        assert_eq!(res.explanations.len(), batch.n_rows());
    }

    #[test]
    fn dist_k_matches_sequential_results() {
        let (ctx, clf, batch) = setup(1);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 50,
            ..Default::default()
        });
        let seq = sequential_lime(&ctx, &clf, &batch, &lime, 5);
        let dist = dist_k_lime(&ctx, &clf, &batch, &lime, 4, 5);
        // Same per-tuple seeds → identical explanations regardless of the
        // thread split.
        assert_eq!(seq.explanations, dist.explanations);
        assert_eq!(seq.metrics.invocations, dist.metrics.invocations);
    }

    #[test]
    fn dist_k_avg_time_scales_down() {
        let (explanations, avg, max) = dist_k(100, 4, |row| {
            // Simulate uniform work.
            std::thread::sleep(Duration::from_micros(200));
            row * 2
        });
        assert_eq!(explanations.len(), 100);
        assert_eq!(explanations[7], 14);
        // Each worker slept ~25 × 200µs = 5ms; well below the 20ms a single
        // worker would take.
        assert!(avg < Duration::from_millis(16), "avg {avg:?}");
        assert!(max >= avg);
    }

    #[test]
    fn dist_k_single_worker_is_sequential() {
        let (r, avg, max) = dist_k(10, 1, |row| row);
        assert_eq!(r, (0..10).collect::<Vec<_>>());
        assert_eq!(avg, max);
    }

    #[test]
    fn greedy_lime_saves_invocations_over_sequential() {
        let (ctx, clf, batch) = setup(2);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 100,
            ..Default::default()
        });
        let greedy = Greedy::new(usize::MAX);
        let res = greedy.explain_lime(&ctx, &clf, &batch, &lime, 7);
        let seq_cost = 100 * batch.n_rows() as u64;
        assert!(
            res.metrics.invocations < seq_cost,
            "greedy saved nothing: {} vs {seq_cost}",
            res.metrics.invocations
        );
        assert_eq!(res.explanations.len(), batch.n_rows());
    }

    #[test]
    fn greedy_budget_bounds_cache() {
        let (ctx, clf, batch) = setup(3);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 50,
            ..Default::default()
        });
        let budget = 8 * 1024;
        let greedy = Greedy::new(budget);
        let res = greedy.explain_lime(&ctx, &clf, &batch, &lime, 9);
        assert!(res.metrics.store_bytes <= budget);
    }

    #[test]
    fn greedy_shap_runs() {
        let (ctx, clf, batch) = setup(4);
        let shap = KernelShapExplainer::new(shahin_explain::ShapParams {
            n_samples: 64,
            ..Default::default()
        });
        let greedy = Greedy::new(usize::MAX);
        let res = greedy.explain_shap(&ctx, &clf, &batch, &shap, 20, 11);
        assert_eq!(res.explanations.len(), batch.n_rows());
        for e in &res.explanations {
            let total: f64 = e.weights.iter().sum();
            assert!((total - (e.local_prediction - e.intercept)).abs() < 1e-6);
        }
    }

    #[test]
    fn greedy_anchor_reuses_counts() {
        let (ctx, _clf, batch) = setup(5);
        struct Key;
        impl Classifier for Key {
            fn predict_proba(&self, inst: &[Feature]) -> f64 {
                f64::from(inst[0].cat().is_multiple_of(2))
            }
        }
        let clf = CountingClassifier::new(Key);
        let anchor = AnchorExplainer::default();
        let greedy = Greedy::new(usize::MAX);
        let res = greedy.explain_anchor(&ctx, &clf, &batch, &anchor, 13);
        assert_eq!(res.explanations.len(), batch.n_rows());
        // Later tuples benefit from earlier counts, so the average cost per
        // tuple must be lower than an isolated run's.
        let iso_clf = CountingClassifier::new(Key);
        let one = batch.select(&[batch.n_rows() - 1]);
        let _ = sequential_anchor(&ctx, &iso_clf, &one, &anchor, 13);
        let avg = res.metrics.invocations as f64 / batch.n_rows() as f64;
        assert!(
            avg < 1.5 * iso_clf.invocations() as f64 + 200.0,
            "no count reuse visible: avg {avg} vs isolated {}",
            iso_clf.invocations()
        );
    }
}
