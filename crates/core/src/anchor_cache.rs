//! Anchor's invariant caches and the caching rule sampler.
//!
//! Two of Shahin's Anchor optimizations are *exact* (paper §3.6):
//!
//! 1. **Invariant caching** — a rule's precision counts and its coverage do
//!    not depend on which tuple is being explained, so they are shared
//!    across the whole batch ([`SharedAnchorCaches`]).
//! 2. **Bootstrap from materialized perturbations** — the precision of a
//!    rule `{A_i=u, A_j=v}` can be seeded by scanning the stored
//!    perturbations of the frequent itemset `{A_i=u}` for those that also
//!    have `A_j=v` (and vice versa: a materialized superset's samples are
//!    valid draws for each of its subset rules).
//!
//! [`CachingRuleSampler`] plugs both into the unmodified Anchor search via
//! the [`RuleSampler`] interface.
//!
//! The caches are **lock-striped**: rules hash to one of [`N_SHARDS`]
//! independent [`parking_lot::Mutex`]-protected shards, so
//! [`crate::ShahinBatch::explain_anchor_parallel`]'s worker threads share
//! precision evidence and memoized coverage without serializing on a
//! single lock. The sequential drivers use the same type through `&self` —
//! an uncontended shard lock is a few nanoseconds, noise next to a
//! classifier invocation.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

use parking_lot::{Mutex, MutexGuard};
use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin_explain::anchor::{rule_coverage, RuleSampler};
use shahin_explain::{labeled_perturbation, ExplainContext};
use shahin_fim::Itemset;
use shahin_model::Classifier;
use shahin_obs::{Counter, MetricsRegistry};

use crate::obs::names;
use crate::snapshot::{Dec, Enc, SnapshotError};
use crate::store::PerturbationStore;

/// Number of lock stripes. 16 keeps the worst-case contention of a full
/// fleet of workers low while the per-shard memory overhead stays trivial.
pub const N_SHARDS: usize = 16;

/// One stripe of the shared caches.
#[derive(Debug, Default)]
struct CacheShard {
    /// Per-rule `(n, positive)` sample counts, where `positive` counts
    /// positive-*class* predictions (so both anchored classes can reuse the
    /// same entry).
    precision: HashMap<Itemset, (u64, u64)>,
    /// Memoized per-rule coverage.
    coverage: HashMap<Itemset, f64>,
    /// Rules already seeded from the materialized store (the bootstrap
    /// must run at most once per rule or counts would be double-added).
    bootstrapped: HashSet<Itemset>,
}

/// Per-shard observability handles (all detached no-ops unless the caches
/// were built with [`SharedAnchorCaches::with_obs`]).
#[derive(Clone, Debug, Default)]
struct ShardObs {
    /// Cache hits: memoized coverage or already-bootstrapped precision.
    hits: Counter,
    /// Cache misses: the shard had to bootstrap or compute.
    misses: Counter,
    /// Lock acquisitions that found the shard already held.
    contention: Counter,
}

/// Caches shared across every tuple of a batch (or stream), striped across
/// [`N_SHARDS`] mutexes keyed by rule hash. All methods take `&self`; the
/// type is `Sync` and is shared by reference across the parallel Anchor
/// driver's worker threads.
#[derive(Debug)]
pub struct SharedAnchorCaches {
    shards: [Mutex<CacheShard>; N_SHARDS],
    obs: [ShardObs; N_SHARDS],
}

impl Default for SharedAnchorCaches {
    fn default() -> Self {
        SharedAnchorCaches::new()
    }
}

impl SharedAnchorCaches {
    /// Creates empty caches.
    pub fn new() -> SharedAnchorCaches {
        SharedAnchorCaches {
            shards: std::array::from_fn(|_| Mutex::new(CacheShard::default())),
            obs: std::array::from_fn(|_| ShardObs::default()),
        }
    }

    /// Creates empty caches whose per-shard hit/miss/contention counters
    /// record into `registry` (as `anchor.shardNN.{hits,misses,contention}`).
    pub fn with_obs(registry: &MetricsRegistry) -> SharedAnchorCaches {
        SharedAnchorCaches {
            shards: std::array::from_fn(|_| Mutex::new(CacheShard::default())),
            obs: std::array::from_fn(|idx| ShardObs {
                hits: registry.counter(&names::anchor_shard(idx, "hits")),
                misses: registry.counter(&names::anchor_shard(idx, "misses")),
                contention: registry.counter(&names::anchor_shard(idx, "contention")),
            }),
        }
    }

    /// The stripe index responsible for `rule`.
    fn shard_index(rule: &Itemset) -> usize {
        let mut h = DefaultHasher::new();
        rule.hash(&mut h);
        h.finish() as usize % N_SHARDS
    }

    /// Locks stripe `idx`, counting the acquisition as contended if another
    /// thread already holds it (the fast path is one uncontended `try_lock`).
    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, CacheShard> {
        if let Some(guard) = self.shards[idx].try_lock() {
            return guard;
        }
        self.obs[idx].contention.inc();
        self.shards[idx].lock()
    }

    /// Number of rules with cached precision counts.
    pub fn n_precision_entries(&self) -> usize {
        self.shards.iter().map(|s| s.lock().precision.len()).sum()
    }

    /// Number of rules with memoized coverage.
    pub fn n_coverage_entries(&self) -> usize {
        self.shards.iter().map(|s| s.lock().coverage.len()).sum()
    }

    /// Serializes every shard's precision counts, memoized coverage and
    /// bootstrap marks into one flat payload. Entries are sorted by rule so
    /// the bytes are deterministic regardless of `HashMap` iteration order
    /// or which shard a rule hashed to.
    pub(crate) fn dump_snapshot(&self) -> Vec<u8> {
        let mut precision: Vec<(Itemset, (u64, u64))> = Vec::new();
        let mut coverage: Vec<(Itemset, f64)> = Vec::new();
        let mut bootstrapped: Vec<Itemset> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            precision.extend(shard.precision.iter().map(|(r, &c)| (r.clone(), c)));
            coverage.extend(shard.coverage.iter().map(|(r, &c)| (r.clone(), c)));
            bootstrapped.extend(shard.bootstrapped.iter().cloned());
        }
        precision.sort_by(|a, b| a.0.cmp(&b.0));
        coverage.sort_by(|a, b| a.0.cmp(&b.0));
        bootstrapped.sort();

        let mut e = Enc::new();
        e.u64(precision.len() as u64);
        for (rule, (n, pos)) in &precision {
            e.itemset(rule);
            e.u64(*n);
            e.u64(*pos);
        }
        e.u64(coverage.len() as u64);
        for (rule, c) in &coverage {
            e.itemset(rule);
            e.f64(*c);
        }
        e.u64(bootstrapped.len() as u64);
        for rule in &bootstrapped {
            e.itemset(rule);
        }
        e.buf
    }

    /// Rebuilds caches from a [`dump_snapshot`](Self::dump_snapshot)
    /// payload, re-sharding every rule (the shard a rule lands in is an
    /// implementation detail, not part of the format). Each list must be
    /// strictly sorted — the dump's canonical form — so duplicated or
    /// shuffled entries are rejected as corruption, and semantic invariants
    /// (`pos <= n`, coverage in `[0, 1]`) are enforced before any entry is
    /// admitted.
    pub(crate) fn load_snapshot(
        payload: &[u8],
        registry: &MetricsRegistry,
    ) -> Result<SharedAnchorCaches, SnapshotError> {
        const CONTEXT: &str = "anchor cache section";
        let corrupt = |context: &'static str| SnapshotError::Corrupt { context };
        let caches = SharedAnchorCaches::with_obs(registry);
        let mut d = Dec::new(payload, CONTEXT);

        let mut prev: Option<Itemset> = None;
        for _ in 0..d.len()? {
            let rule = d.itemset()?;
            if prev.as_ref().is_some_and(|p| *p >= rule) {
                return Err(corrupt("precision entries out of order"));
            }
            let n = d.u64()?;
            let pos = d.u64()?;
            if pos > n {
                return Err(corrupt("positive count exceeds sample count"));
            }
            let idx = SharedAnchorCaches::shard_index(&rule);
            caches.shards[idx].lock().precision.insert(rule.clone(), (n, pos));
            prev = Some(rule);
        }
        prev = None;
        for _ in 0..d.len()? {
            let rule = d.itemset()?;
            if prev.as_ref().is_some_and(|p| *p >= rule) {
                return Err(corrupt("coverage entries out of order"));
            }
            let c = d.f64()?;
            if !(0.0..=1.0).contains(&c) {
                return Err(corrupt("coverage outside [0, 1]"));
            }
            let idx = SharedAnchorCaches::shard_index(&rule);
            caches.shards[idx].lock().coverage.insert(rule.clone(), c);
            prev = Some(rule);
        }
        prev = None;
        for _ in 0..d.len()? {
            let rule = d.itemset()?;
            if prev.as_ref().is_some_and(|p| *p >= rule) {
                return Err(corrupt("bootstrap marks out of order"));
            }
            let idx = SharedAnchorCaches::shard_index(&rule);
            caches.shards[idx].lock().bootstrapped.insert(rule.clone());
            prev = Some(rule);
        }
        d.finish()?;
        Ok(caches)
    }

    /// Approximate resident bytes (for budget-style reporting).
    pub fn approx_bytes(&self) -> usize {
        let per_rule = |s: &Itemset| s.approx_bytes() + 24;
        self.shards
            .iter()
            .map(|shard| {
                let shard = shard.lock();
                shard.precision.keys().map(per_rule).sum::<usize>()
                    + shard.coverage.keys().map(per_rule).sum::<usize>()
            })
            .sum()
    }
}

/// Per-tuple accounting of one [`CachingRuleSampler`]'s work: where the
/// Anchor search's precision evidence came from while explaining a single
/// tuple. Shard counters aggregate over the whole batch; these stay local
/// so provenance can attribute reuse to the tuple.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SamplerStats {
    /// Evidence samples obtained without classifier calls: cached prior
    /// counts (earlier tuples' draws plus store bootstraps) retrieved for
    /// this tuple's candidate rules.
    pub reused: u64,
    /// Fresh rule-conditioned draws, one classifier invocation each.
    pub fresh: u64,
    /// Shard-cache hits (memoized coverage or bootstrapped precision).
    pub cache_hits: u64,
    /// Shard-cache misses (bootstrap scans or coverage computations).
    pub cache_misses: u64,
}

/// A [`RuleSampler`] backed by the shared caches and the materialized
/// perturbation store. Constructed per explained tuple (it needs the
/// tuple's matched store entries) but folding its evidence into the
/// batch-wide [`SharedAnchorCaches`].
pub struct CachingRuleSampler<'a, C> {
    ctx: &'a ExplainContext,
    clf: &'a C,
    store: &'a PerturbationStore,
    /// Store ids whose itemsets the current tuple contains.
    matched: &'a [u32],
    caches: &'a SharedAnchorCaches,
    rng: StdRng,
    stats: SamplerStats,
}

impl<'a, C: Classifier> CachingRuleSampler<'a, C> {
    /// Creates a sampler for one tuple. `matched` are the store entries
    /// contained in the tuple (from [`PerturbationStore::matching`]).
    pub fn new(
        ctx: &'a ExplainContext,
        clf: &'a C,
        store: &'a PerturbationStore,
        matched: &'a [u32],
        caches: &'a SharedAnchorCaches,
        seed: u64,
    ) -> Self {
        CachingRuleSampler {
            ctx,
            clf,
            store,
            matched,
            caches,
            rng: StdRng::seed_from_u64(seed),
            stats: SamplerStats::default(),
        }
    }

    /// The per-tuple accounting accumulated so far (reused vs fresh
    /// evidence, shard-cache hits/misses for this tuple only).
    pub fn stats(&self) -> SamplerStats {
        self.stats
    }

    /// Seeds the precision counts of `rule` from the materialized store:
    /// every stored sample of a matched itemset `f ⊆ rule` whose codes also
    /// satisfy `rule \ f` is a valid rule-conditioned draw — its label came
    /// for free at materialization time.
    fn bootstrap(&self, rule: &Itemset) -> (u64, u64) {
        let mut n = 0u64;
        let mut pos = 0u64;
        for &id in self.matched {
            let f = self.store.itemset(id);
            if !f.is_subset_of(rule) {
                continue;
            }
            for s in self.store.samples(id) {
                if rule.contained_in(&s.codes) {
                    n += 1;
                    pos += u64::from(s.proba >= 0.5);
                }
            }
        }
        (n, pos)
    }
}

impl<C: Classifier> RuleSampler for CachingRuleSampler<'_, C> {
    fn draw(&mut self, rule: &Itemset, k: usize) -> (u64, u64) {
        self.stats.fresh += k as u64;
        let mut pos = 0u64;
        for _ in 0..k {
            let s = labeled_perturbation(self.ctx, self.clf, rule, &mut self.rng);
            pos += u64::from(s.proba >= 0.5);
        }
        // Fresh draws are invariant evidence: fold them into the shared
        // cache so later tuples (on any thread) start ahead (Algorithm 2
        // line 12).
        let idx = SharedAnchorCaches::shard_index(rule);
        let mut shard = self.caches.lock_shard(idx);
        let e = shard.precision.entry(rule.clone()).or_insert((0, 0));
        e.0 += k as u64;
        e.1 += pos;
        (k as u64, pos)
    }

    fn prior(&mut self, rule: &Itemset) -> (u64, u64) {
        let idx = SharedAnchorCaches::shard_index(rule);
        {
            let shard = self.caches.lock_shard(idx);
            if shard.bootstrapped.contains(rule) {
                self.caches.obs[idx].hits.inc();
                self.stats.cache_hits += 1;
                let prior = shard.precision.get(rule).copied().unwrap_or((0, 0));
                self.stats.reused += prior.0;
                return prior;
            }
        }
        self.caches.obs[idx].misses.inc();
        self.stats.cache_misses += 1;
        // Scan the store outside the lock (it can be a long walk), then
        // publish under the lock; `bootstrapped.insert` arbitrates racing
        // threads so the seed counts are added at most once.
        let (n, pos) = self.bootstrap(rule);
        let mut shard = self.caches.lock_shard(idx);
        if shard.bootstrapped.insert(rule.clone()) && n > 0 {
            let e = shard.precision.entry(rule.clone()).or_insert((0, 0));
            e.0 += n;
            e.1 += pos;
        }
        let prior = shard.precision.get(rule).copied().unwrap_or((0, 0));
        self.stats.reused += prior.0;
        prior
    }

    fn coverage(&mut self, rule: &Itemset) -> f64 {
        let idx = SharedAnchorCaches::shard_index(rule);
        if let Some(&c) = self.caches.lock_shard(idx).coverage.get(rule) {
            self.caches.obs[idx].hits.inc();
            self.stats.cache_hits += 1;
            return c;
        }
        self.caches.obs[idx].misses.inc();
        self.stats.cache_misses += 1;
        // Computed outside the lock; coverage is a pure function of the
        // rule, so a racing double-computation inserts the same value.
        let c = rule_coverage(self.ctx.coverage_sample(), rule);
        self.caches.lock_shard(idx).coverage.insert(rule.clone(), c);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use shahin_fim::Item;
    use shahin_model::{CountingClassifier, MajorityClass};
    use shahin_tabular::{Attribute, Column, Dataset, Schema};
    use std::sync::Arc;

    fn test_ctx(seed: u64) -> ExplainContext {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 300;
        let schema = Arc::new(Schema::new(vec![
            Attribute::categorical("a", 3),
            Attribute::categorical("b", 3),
            Attribute::categorical("c", 3),
        ]));
        let cols = (0..3)
            .map(|_| Column::Cat((0..n).map(|_| rng.gen_range(0..3u32)).collect()))
            .collect();
        ExplainContext::fit(&Dataset::new(schema, cols), 300, &mut rng)
    }

    fn materialized_store(ctx: &ExplainContext, clf: &impl Classifier) -> PerturbationStore {
        let itemsets = vec![
            Itemset::new(vec![Item::new(0, 1)]),
            Itemset::new(vec![Item::new(1, 2)]),
        ];
        let mut store = PerturbationStore::new(itemsets, usize::MAX);
        let mut rng = StdRng::seed_from_u64(42);
        store.materialize(ctx, clf, 50, &mut rng);
        store
    }

    #[test]
    fn bootstrap_seeds_subset_and_superset_rules() {
        let ctx = test_ctx(0);
        let clf = MajorityClass::fit(&[1]);
        let store = materialized_store(&ctx, &clf);
        let matched = vec![0u32, 1];
        let caches = SharedAnchorCaches::new();
        let mut sampler = CachingRuleSampler::new(&ctx, &clf, &store, &matched, &caches, 1);
        // Rule equal to a materialized itemset: all 50 samples count.
        let (n, pos) = sampler.prior(&Itemset::new(vec![Item::new(0, 1)]));
        assert_eq!(n, 50);
        assert_eq!(pos, 50);
        // Superset rule: seeded by the subset's samples that also match.
        let rule = Itemset::new(vec![Item::new(0, 1), Item::new(1, 2)]);
        let (n2, _) = sampler.prior(&rule);
        // Samples of {A0=1} with A1=2 (~1/3 of 50) plus samples of {A1=2}
        // with A0=1 (~1/3 of 50).
        assert!(n2 > 10, "bootstrap found only {n2} samples");
        assert!(n2 < 100);
    }

    #[test]
    fn bootstrap_happens_once() {
        let ctx = test_ctx(1);
        let clf = MajorityClass::fit(&[1]);
        let store = materialized_store(&ctx, &clf);
        let matched = vec![0u32];
        let caches = SharedAnchorCaches::new();
        let rule = Itemset::new(vec![Item::new(0, 1)]);
        {
            let mut s = CachingRuleSampler::new(&ctx, &clf, &store, &matched, &caches, 2);
            assert_eq!(s.prior(&rule).0, 50);
            assert_eq!(s.prior(&rule).0, 50, "second prior must not double");
        }
        // A new sampler (next tuple) sees the same counts, not doubled.
        let mut s2 = CachingRuleSampler::new(&ctx, &clf, &store, &matched, &caches, 3);
        assert_eq!(s2.prior(&rule).0, 50);
    }

    #[test]
    fn draws_accumulate_into_shared_cache() {
        let ctx = test_ctx(2);
        let clf = CountingClassifier::new(MajorityClass::fit(&[1]));
        let store = PerturbationStore::new(vec![], usize::MAX);
        let matched = vec![];
        let caches = SharedAnchorCaches::new();
        let rule = Itemset::new(vec![Item::new(2, 0)]);
        {
            let mut s = CachingRuleSampler::new(&ctx, &clf, &store, &matched, &caches, 4);
            assert_eq!(s.draw(&rule, 20), (20, 20));
        }
        assert_eq!(clf.invocations(), 20);
        // Next tuple: the 20 draws are already in the prior.
        let mut s2 = CachingRuleSampler::new(&ctx, &clf, &store, &matched, &caches, 5);
        assert_eq!(s2.prior(&rule), (20, 20));
        assert_eq!(clf.invocations(), 20, "prior must be free");
    }

    #[test]
    fn coverage_is_memoized() {
        let ctx = test_ctx(3);
        let clf = MajorityClass::fit(&[1]);
        let store = PerturbationStore::new(vec![], usize::MAX);
        let matched = vec![];
        let caches = SharedAnchorCaches::new();
        let rule = Itemset::new(vec![Item::new(0, 0)]);
        let mut s = CachingRuleSampler::new(&ctx, &clf, &store, &matched, &caches, 6);
        let c1 = s.coverage(&rule);
        let c2 = s.coverage(&rule);
        assert_eq!(c1, c2);
        assert!((0.2..0.5).contains(&c1), "coverage {c1}");
        assert_eq!(s.caches.n_coverage_entries(), 1);
    }

    #[test]
    fn obs_counts_shard_hits_and_misses() {
        let ctx = test_ctx(5);
        let clf = MajorityClass::fit(&[1]);
        let store = PerturbationStore::new(vec![], usize::MAX);
        let reg = MetricsRegistry::new();
        let caches = SharedAnchorCaches::with_obs(&reg);
        let rule = Itemset::new(vec![Item::new(0, 0)]);
        let mut s = CachingRuleSampler::new(&ctx, &clf, &store, &[], &caches, 7);
        s.coverage(&rule); // miss
        s.coverage(&rule); // hit
        s.prior(&rule); // miss (bootstrap)
        s.prior(&rule); // hit
        let snap = reg.snapshot();
        let idx = SharedAnchorCaches::shard_index(&rule);
        assert_eq!(snap.counter(&names::anchor_shard(idx, "hits")), 2);
        assert_eq!(snap.counter(&names::anchor_shard(idx, "misses")), 2);
        // Single-threaded use never contends.
        assert_eq!(snap.counter(&names::anchor_shard(idx, "contention")), 0);
    }

    #[test]
    fn sampler_stats_track_per_tuple_reuse_and_cache_traffic() {
        let ctx = test_ctx(6);
        let clf = CountingClassifier::new(MajorityClass::fit(&[1]));
        let store = materialized_store(&ctx, &clf);
        clf.reset();
        let matched = vec![0u32, 1];
        let caches = SharedAnchorCaches::new();
        let rule = Itemset::new(vec![Item::new(0, 1)]);
        let mut s = CachingRuleSampler::new(&ctx, &clf, &store, &matched, &caches, 8);
        s.prior(&rule); // miss → bootstrap seeds 50 reused samples
        s.draw(&rule, 7); // 7 fresh classifier draws
        s.coverage(&rule); // miss → compute
        s.coverage(&rule); // hit
        let stats = s.stats();
        assert_eq!(stats.reused, 50);
        assert_eq!(stats.fresh, 7);
        assert_eq!(stats.fresh, clf.invocations());
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
        // A second sampler (next tuple) starts from zero but sees the
        // shared prior (50 bootstrap + 7 draws) as reused evidence.
        let mut s2 = CachingRuleSampler::new(&ctx, &clf, &store, &matched, &caches, 9);
        s2.prior(&rule);
        let stats2 = s2.stats();
        assert_eq!(stats2.reused, 57);
        assert_eq!(stats2.fresh, 0);
        assert_eq!(stats2.cache_hits, 1);
    }

    #[test]
    fn snapshot_round_trip_preserves_every_cache() {
        let ctx = test_ctx(7);
        let clf = MajorityClass::fit(&[1]);
        let store = materialized_store(&ctx, &clf);
        let matched = vec![0u32, 1];
        let caches = SharedAnchorCaches::new();
        let mut s = CachingRuleSampler::new(&ctx, &clf, &store, &matched, &caches, 11);
        for rule in [
            Itemset::new(vec![Item::new(0, 1)]),
            Itemset::new(vec![Item::new(1, 2)]),
            Itemset::new(vec![Item::new(0, 1), Item::new(1, 2)]),
        ] {
            s.prior(&rule);
            s.coverage(&rule);
            s.draw(&rule, 3);
        }
        let payload = caches.dump_snapshot();
        let reg = MetricsRegistry::new();
        let loaded = SharedAnchorCaches::load_snapshot(&payload, &reg).expect("valid payload");
        assert_eq!(loaded.dump_snapshot(), payload, "reserialization identical");
        assert_eq!(loaded.n_precision_entries(), caches.n_precision_entries());
        assert_eq!(loaded.n_coverage_entries(), caches.n_coverage_entries());
        // A sampler over the loaded caches sees the donor's evidence as
        // free priors, not as cache misses to recompute.
        let clf2 = CountingClassifier::new(MajorityClass::fit(&[1]));
        let mut s2 = CachingRuleSampler::new(&ctx, &clf2, &store, &matched, &loaded, 12);
        let rule = Itemset::new(vec![Item::new(0, 1)]);
        let before = s.prior(&rule);
        assert_eq!(s2.prior(&rule), before);
        assert_eq!(clf2.invocations(), 0, "hydrated prior must be free");
    }

    #[test]
    fn snapshot_load_rejects_invalid_payloads() {
        let caches = SharedAnchorCaches::new();
        {
            let mut shard = caches.shards[0].lock();
            shard
                .precision
                .insert(Itemset::new(vec![Item::new(0, 1)]), (10, 4));
            shard
                .coverage
                .insert(Itemset::new(vec![Item::new(1, 0)]), 0.25);
        }
        let payload = caches.dump_snapshot();
        let reg = MetricsRegistry::new();
        for end in 0..payload.len() {
            assert!(
                SharedAnchorCaches::load_snapshot(&payload[..end], &reg).is_err(),
                "cut at {end} must be rejected"
            );
        }
        // pos > n is semantic corruption even when the framing is intact.
        let bad = {
            let c = SharedAnchorCaches::new();
            c.shards[0]
                .lock()
                .precision
                .insert(Itemset::new(vec![Item::new(0, 1)]), (3, 9));
            c.dump_snapshot()
        };
        let err = SharedAnchorCaches::load_snapshot(&bad, &reg).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// Dump → load → dump is the identity on bytes for arbitrary
        /// cache contents, across all shards.
        #[test]
        fn cache_snapshot_round_trip_holds_for_arbitrary_contents(
            entries in proptest::collection::vec(
                ((0u32..6, 0u32..4), (0u64..200, 0u64..200), 0.0f64..=1.0, 0u8..2),
                0..30),
        ) {
            use proptest::prelude::prop_assert_eq;
            let caches = SharedAnchorCaches::new();
            for ((attr, code), (n, pos), c, mark) in entries {
                let rule = Itemset::new(vec![Item::new(attr as usize, code)]);
                let idx = SharedAnchorCaches::shard_index(&rule);
                let mut shard = caches.shards[idx].lock();
                shard.precision.insert(rule.clone(), (n, pos % (n + 1)));
                shard.coverage.insert(rule.clone(), c);
                if mark == 1 {
                    shard.bootstrapped.insert(rule);
                }
            }
            let payload = caches.dump_snapshot();
            let reg = MetricsRegistry::new();
            let loaded = SharedAnchorCaches::load_snapshot(&payload, &reg).expect("own dump loads");
            prop_assert_eq!(loaded.dump_snapshot(), payload);
            prop_assert_eq!(loaded.n_precision_entries(), caches.n_precision_entries());
            prop_assert_eq!(loaded.n_coverage_entries(), caches.n_coverage_entries());
        }
    }

    #[test]
    fn concurrent_draws_lose_no_evidence() {
        // 8 threads hammer overlapping rules; every fresh draw must land in
        // the shared precision counts exactly once.
        let ctx = test_ctx(4);
        let clf = CountingClassifier::new(MajorityClass::fit(&[1]));
        let store = PerturbationStore::new(vec![], usize::MAX);
        let caches = SharedAnchorCaches::new();
        let rules: Vec<Itemset> = (0..3)
            .map(|a| Itemset::new(vec![Item::new(a, 0)]))
            .collect();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let caches = &caches;
                let ctx = &ctx;
                let clf = &clf;
                let store = &store;
                let rules = &rules;
                scope.spawn(move || {
                    let mut s = CachingRuleSampler::new(ctx, clf, store, &[], caches, 100 + t);
                    for rule in rules {
                        s.draw(rule, 5);
                    }
                });
            }
        });
        assert_eq!(clf.invocations(), 8 * 3 * 5);
        assert_eq!(caches.n_precision_entries(), 3);
        let mut s = CachingRuleSampler::new(&ctx, &clf, &store, &[], &caches, 999);
        for rule in &rules {
            // 8 threads × 5 draws each, all positive under MajorityClass(1).
            assert_eq!(s.prior(rule), (40, 40));
        }
    }
}
