//! Configuration for the batch and streaming optimizers.

use crate::store::MatchEngine;

/// Which frequent itemset mining algorithm the batch optimizer uses.
/// Both produce identical itemsets; FP-Growth avoids candidate generation
/// and is faster on dense batches (the "smarter frequent itemset
/// computation" the paper alludes to in §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Miner {
    /// Level-wise Apriori (also yields the negative border).
    #[default]
    Apriori,
    /// FP-tree based FP-Growth.
    FpGrowth,
}

/// Configuration of [`crate::ShahinBatch`].
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Minimum relative support for frequent itemset mining over the batch
    /// sample.
    pub min_support: f64,
    /// Maximum frequent itemset length.
    pub max_itemset_len: usize,
    /// Cap on the number of frequent itemsets materialized (highest support
    /// first); bounds the up-front budget `τ · |F|`.
    pub max_itemsets: usize,
    /// Perturbations materialized per frequent itemset (the paper's `τ`,
    /// default 100; Figure 6 sweeps it).
    pub tau: usize,
    /// Byte budget of the perturbation store (Figure 7 sweeps it).
    /// `usize::MAX` disables eviction.
    pub cache_budget_bytes: usize,
    /// Let Shahin shrink `τ` automatically so the up-front materialization
    /// never exceeds what reuse can recover ("the parameter τ is set
    /// automatically by Shahin based on the resource constraints", §3.1).
    /// Disable to study a fixed τ (Figure 6).
    pub auto_tau: bool,
    /// Mining algorithm.
    pub miner: Miner,
    /// Worker threads for the parallel phases (materialization in
    /// `prepare`, and the per-tuple fan-out of the `explain_*_parallel`
    /// drivers). `None` (the default) uses
    /// [`std::thread::available_parallelism`]. All results are
    /// thread-count invariant for LIME/SHAP (see DESIGN.md, "Threading
    /// model & determinism").
    pub n_threads: Option<usize>,
    /// Containment engine of the perturbation store (DESIGN.md §5g). The
    /// default bitset engine and the legacy postings engine return
    /// identical ids; the knob exists so benchmarks and equivalence tests
    /// can run the old layout end-to-end.
    pub match_engine: MatchEngine,
}

impl BatchConfig {
    /// The effective worker-thread count: the configured override, or the
    /// machine's available parallelism, never less than 1.
    pub fn resolved_n_threads(&self) -> usize {
        self.n_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
            .max(1)
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            min_support: 0.15,
            max_itemset_len: 3,
            max_itemsets: 200,
            tau: 100,
            cache_budget_bytes: usize::MAX,
            auto_tau: true,
            miner: Miner::default(),
            n_threads: None,
            match_engine: MatchEngine::default(),
        }
    }
}

/// Configuration of [`crate::ShahinStreaming`] (paper §3.5).
#[derive(Clone, Debug)]
pub struct StreamingConfig {
    /// Memory budget for the perturbation repository, in bytes.
    pub memory_budget_bytes: usize,
    /// Recompute frequent itemsets after this many tuples (the paper's
    /// "certain threshold (automatically chosen by Shahin such as 100)").
    pub refresh_every: usize,
    /// Minimum relative support when re-mining.
    pub min_support: f64,
    /// Maximum frequent itemset length.
    pub max_itemset_len: usize,
    /// Cap on tracked itemsets (frequent + negative border).
    pub max_itemsets: usize,
    /// Perturbations materialized per frequent itemset at refresh time.
    pub tau: usize,
    /// Maintain the negative border of the mined itemsets so itemsets that
    /// become frequent are promoted at the next refresh even when the
    /// miner's cap would drop them (§3.5). Disable only for ablation.
    pub track_negative_border: bool,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            memory_budget_bytes: 64 << 20,
            refresh_every: 100,
            min_support: 0.15,
            max_itemset_len: 3,
            max_itemsets: 200,
            tau: 100,
            track_negative_border: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let b = BatchConfig::default();
        assert_eq!(b.tau, 100, "paper: default τ = 100");
        assert_eq!(b.max_itemset_len, 3);
        let s = StreamingConfig::default();
        assert_eq!(s.refresh_every, 100, "paper: threshold such as 100");
        assert_eq!(s.tau, 100);
    }

    #[test]
    fn n_threads_resolution() {
        let mut b = BatchConfig::default();
        assert!(b.resolved_n_threads() >= 1, "must always have one worker");
        b.n_threads = Some(3);
        assert_eq!(b.resolved_n_threads(), 3);
        b.n_threads = Some(0);
        assert_eq!(b.resolved_n_threads(), 1, "zero clamps to one worker");
    }
}
