//! Shahin-Streaming: explanations for predictions arriving one at a time
//! (paper §3.5).
//!
//! Before enough tuples have been seen to mine anything, generated
//! perturbations are kept in a budgeted LRU cache and reused
//! opportunistically (the "no saving yet" warm-up the paper describes for
//! `t_1, t_2, …`). Every [`StreamingConfig::refresh_every`] tuples, Shahin
//! mines frequent itemsets over the recent window, keeps their **negative
//! border** so itemsets that later become frequent are promoted cheaply,
//! rebuilds the perturbation repository around the new itemset family
//! (carrying over every still-useful sample), and tops entries up to `τ`
//! materialized perturbations.

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin_explain::{
    AnchorExplainer, AnchorExplanation, CoalitionSample, ExplainContext, FeatureWeights,
    KernelShapExplainer, LabeledSample, LimeExplainer, NoSource,
};
use shahin_fim::{apriori, AprioriParams, Itemset, MatchScratch};
use shahin_model::{Classifier, CountingClassifier};
use shahin_tabular::{Dataset, DiscreteTable, Feature};

use crate::anchor_cache::{CachingRuleSampler, SharedAnchorCaches};
use crate::batch::estimate_base_value_guarded;
use crate::config::StreamingConfig;
use crate::greedy_cache::TaggedLruCache;
use crate::metrics::{BatchReport, BatchResult, OverheadBreakdown, RunMetrics};
use crate::obs::{names, ProvenanceCtx};
use crate::quarantine::{guard_tuple, QuarantineObs, TupleOutcome};
use crate::runner::per_tuple_seed;
use crate::shap_source::StoreCoalitionSource;
use crate::store::{LookupStats, PerturbationStore};
use shahin_obs::{Counter, EventSink, Histogram, MetricsRegistry};

/// The streaming-mode optimizer.
#[derive(Clone, Debug)]
pub struct ShahinStreaming {
    /// Configuration.
    pub config: StreamingConfig,
    /// Metrics registry the drivers record into. Disabled (all handles
    /// no-ops) unless set via [`ShahinStreaming::with_obs`].
    obs: MetricsRegistry,
}

impl Default for ShahinStreaming {
    fn default() -> Self {
        ShahinStreaming::new(StreamingConfig::default())
    }
}

/// Observability handles of one stream run (all no-ops on a disabled
/// registry).
struct StreamObs {
    /// Registry kept around so rebuilt stores can attach their own handles.
    registry: MetricsRegistry,
    fim: Histogram,
    fill: Histogram,
    refresh_rounds: Counter,
    refresh_failures: Counter,
    carried_samples: Counter,
    early_evictions: Counter,
    /// Event sink (if attached) for refresh-boundary instant events.
    events: Option<std::sync::Arc<EventSink>>,
}

impl StreamObs {
    fn new(registry: &MetricsRegistry) -> StreamObs {
        StreamObs {
            registry: registry.clone(),
            fim: registry.span_histogram(names::SPAN_FIM_MINE),
            fill: registry.span_histogram(names::SPAN_MATERIALIZE_FILL),
            refresh_rounds: registry.counter(names::STREAMING_REFRESH_ROUNDS),
            refresh_failures: registry.counter(names::STREAMING_REFRESH_FAILURES),
            carried_samples: registry.counter(names::STREAMING_CARRIED_SAMPLES),
            early_evictions: registry.counter(names::STREAMING_EARLY_EVICTIONS),
            events: registry.event_sink(),
        }
    }
}

/// Evolving stream state.
struct StreamState {
    config: StreamingConfig,
    obs: StreamObs,
    /// Warm-up evictions already forwarded to the counter.
    reported_evictions: u64,
    /// Warm-up cache (before the first refresh).
    early: TaggedLruCache,
    /// Itemset-keyed repository (after the first refresh).
    store: Option<PerturbationStore>,
    /// Negative border of the last mining round.
    negative_border: Vec<Itemset>,
    /// Discretized tuples seen since the last refresh.
    window: Vec<Vec<u32>>,
    n_attrs: usize,
    /// Per-tuple sample budget of the explainer (drives automatic τ).
    n_target: usize,
    /// τ chosen at the last refresh.
    effective_tau: usize,
    /// Completed refresh rounds — the provenance epoch of the next tuple.
    epoch: u64,
    fim_time: Duration,
    materialization_time: Duration,
    peak_bytes: usize,
    scratch: MatchScratch,
}

impl StreamState {
    fn new(
        config: StreamingConfig,
        n_attrs: usize,
        n_target: usize,
        registry: &MetricsRegistry,
    ) -> StreamState {
        let early = TaggedLruCache::new(config.memory_budget_bytes);
        let tau = config.tau;
        StreamState {
            config,
            obs: StreamObs::new(registry),
            reported_evictions: 0,
            early,
            store: None,
            negative_border: Vec::new(),
            window: Vec::new(),
            n_attrs,
            n_target,
            effective_tau: tau,
            epoch: 0,
            fim_time: Duration::ZERO,
            materialization_time: Duration::ZERO,
            peak_bytes: 0,
            scratch: MatchScratch::new(),
        }
    }

    /// Routes freshly generated, already-labeled samples into the current
    /// repository.
    fn absorb(&mut self, tuple_codes: &[u32], samples: Vec<LabeledSample>) {
        match &mut self.store {
            Some(store) => {
                for s in samples {
                    let ids = store.matching_all(&s.codes, &mut self.scratch);
                    // Fill the least-stocked tracked itemset this sample
                    // can serve.
                    if let Some(&id) = ids
                        .iter()
                        .filter(|&&id| store.samples(id).len() < self.effective_tau)
                        .min_by_key(|&&id| store.samples(id).len())
                    {
                        store.insert(id, s);
                    }
                }
                self.peak_bytes = self.peak_bytes.max(store.peak_bytes());
            }
            None => {
                for s in samples {
                    self.early.insert(tuple_codes, s);
                }
                self.peak_bytes = self.peak_bytes.max(self.early.used_bytes());
                let evictions = self.early.evictions();
                if evictions > self.reported_evictions {
                    self.obs
                        .early_evictions
                        .add(evictions - self.reported_evictions);
                    self.reported_evictions = evictions;
                }
            }
        }
    }

    /// Mines the window and rebuilds the repository when due.
    fn maybe_refresh<C: Classifier>(&mut self, ctx: &ExplainContext, clf: &C, rng: &mut StdRng) {
        if self.window.len() < self.config.refresh_every {
            return;
        }
        self.obs.refresh_rounds.inc();
        let fim_span = self.obs.fim.start();
        let table = window_table(&self.window, self.n_attrs);
        let mined = apriori(
            &table,
            &AprioriParams {
                min_support: self.config.min_support,
                max_len: self.config.max_itemset_len,
                max_itemsets: self.config.max_itemsets,
            },
        );
        let expected_matched: f64 = (0..mined.frequent.len())
            .map(|i| mined.support(i))
            .sum::<f64>()
            .max(1e-9);
        let mut tracked: Vec<Itemset> = mined.frequent.into_iter().map(|(s, _)| s).collect();
        // Promote negative-border itemsets that turned frequent in this
        // window even if the miner's cap dropped them.
        let min_count = (self.config.min_support * self.window.len() as f64).ceil() as usize;
        for nb in self
            .negative_border
            .iter()
            .filter(|_| self.config.track_negative_border)
        {
            if tracked.contains(nb) {
                continue;
            }
            let count = self
                .window
                .iter()
                .filter(|codes| nb.contained_in(codes))
                .count();
            if count >= min_count.max(1) {
                tracked.push(nb.clone());
            }
        }
        tracked.truncate(self.config.max_itemsets);
        self.negative_border = if self.config.track_negative_border {
            mined.negative_border
        } else {
            Vec::new()
        };
        self.negative_border.truncate(4 * self.config.max_itemsets);
        self.fim_time += fim_span.stop();

        let fill_span = self.obs.fill.start();
        let mut new_store = PerturbationStore::new(tracked, self.config.memory_budget_bytes);
        new_store.attach_obs(&self.obs.registry);
        // Carry over every sample that still serves a tracked itemset
        // ("If not, we purge that perturbation", §3.5). The carry works on
        // *clones* so the live repository and warm-up cache keep serving
        // unchanged if materialization fails below.
        let mut old: Vec<LabeledSample> = self.early.samples_cloned();
        if let Some(prev) = &self.store {
            for id in 0..prev.len() as u32 {
                old.extend(prev.samples(id).iter().cloned());
            }
        }
        let mut carried = 0u64;
        for s in old {
            let ids = new_store.matching_all(&s.codes, &mut self.scratch);
            if let Some(&id) = ids
                .iter()
                .filter(|&&id| new_store.samples(id).len() < self.config.tau)
                .min_by_key(|&&id| new_store.samples(id).len())
            {
                new_store.insert(id, s);
                carried += 1;
            }
        }
        // "...use the obtained savings to generate perturbations of f ∈ F".
        // τ is auto-capped at the coverage point (see ShahinBatch::prepare)
        // and by what one refresh window can amortize.
        let coverage_tau = (1.25 * self.n_target as f64 / expected_matched).ceil() as usize;
        let tau = self
            .config
            .tau
            .min(coverage_tau.max(1))
            .min((self.config.refresh_every / 2).max(1));
        // Materialization drives the classifier, so it can panic. The old
        // state is only replaced once the rebuild succeeded; on failure we
        // keep serving the stale repository and retry at the next window.
        let refreshed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut store = new_store;
            store.materialize(ctx, clf, tau, rng);
            store
        }));
        self.materialization_time += fill_span.stop();
        self.window.clear();
        match refreshed {
            Ok(store) => {
                self.obs.carried_samples.add(carried);
                self.effective_tau = tau;
                self.peak_bytes = self.peak_bytes.max(store.peak_bytes());
                let tracked_itemsets = store.len();
                self.early.drain_samples();
                self.store = Some(store);
                self.epoch += 1;
                if let Some(sink) = &self.obs.events {
                    sink.instant(
                        "streaming.refresh",
                        &[
                            ("epoch", self.epoch.to_string()),
                            ("tracked_itemsets", tracked_itemsets.to_string()),
                            ("tau", tau.to_string()),
                        ],
                    );
                }
            }
            Err(_) => {
                self.obs.refresh_failures.inc();
                if let Some(sink) = &self.obs.events {
                    sink.instant(
                        "streaming.refresh_failed",
                        &[("epoch", self.epoch.to_string())],
                    );
                }
            }
        }
    }
}

/// Columnarizes window rows into a table for mining.
fn window_table(window: &[Vec<u32>], n_attrs: usize) -> DiscreteTable {
    let mut cols = vec![Vec::with_capacity(window.len()); n_attrs];
    for row in window {
        for (col, &c) in cols.iter_mut().zip(row) {
            col.push(c);
        }
    }
    DiscreteTable::new(cols)
}

/// Records classifier calls as labeled samples (shared with the GREEDY
/// baseline's needs, duplicated here to keep module boundaries clean).
struct Recorder<'a, C> {
    inner: &'a C,
    ctx: &'a ExplainContext,
    log: Mutex<Vec<LabeledSample>>,
}

impl<'a, C: Classifier> Recorder<'a, C> {
    fn new(inner: &'a C, ctx: &'a ExplainContext) -> Self {
        Recorder {
            inner,
            ctx,
            log: Mutex::new(Vec::new()),
        }
    }
    fn take_log(&self) -> Vec<LabeledSample> {
        std::mem::take(&mut self.log.lock())
    }
}

impl<C: Classifier> Classifier for Recorder<'_, C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        let proba = self.inner.predict_proba(instance);
        let codes = self.ctx.discretizer().encode_instance(instance);
        self.log.lock().push(LabeledSample {
            codes: codes.into_boxed_slice(),
            proba,
        });
        proba
    }
}

impl ShahinStreaming {
    /// Creates a streaming optimizer (with observability disabled).
    pub fn new(config: StreamingConfig) -> ShahinStreaming {
        ShahinStreaming {
            config,
            obs: MetricsRegistry::disabled(),
        }
    }

    /// Records spans, counters and gauges into `registry` during every
    /// subsequent run (see [`crate::obs`] for the name schema).
    pub fn with_obs(mut self, registry: &MetricsRegistry) -> ShahinStreaming {
        self.obs = registry.clone();
        self
    }

    /// Streaming LIME: tuples of `stream` are explained strictly in order,
    /// each seen only when its turn comes.
    pub fn explain_lime<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        stream: &Dataset,
        lime: &LimeExplainer,
        seed: u64,
    ) -> BatchResult<FeatureWeights> {
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x57AE);
        let mut st = StreamState::new(
            self.config.clone(),
            ctx.n_attrs(),
            lime.params.n_samples,
            &self.obs,
        );
        let retrieve_hist = self.obs.span_histogram(names::SPAN_RETRIEVE_MATCH);
        let surrogate_hist = self.obs.span_histogram(names::SPAN_SURROGATE_FIT);
        let prov = ProvenanceCtx::new(&self.obs, "Shahin-Streaming", "LIME");
        let quarantine = QuarantineObs::new(&self.obs);
        let mut report = BatchReport::default();
        let mut retrieval = Duration::ZERO;
        let mut explanations = Vec::with_capacity(stream.n_rows());

        for row in 0..stream.n_rows() {
            let mut tuple_rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
            let instance = stream.instance(row);
            let codes = ctx.discretizer().encode_instance(&instance);
            let recorder = Recorder::new(clf, ctx);
            let outcome = guard_tuple(row as u32, &quarantine, |incidents0| {
                let t0 = prov.start();
                let retrieve = retrieve_hist.start();
                let (e, matched, lookup, reuse) = match &mut st.store {
                    Some(store) => {
                        let (matched, lookup) = store.matching_stats(&codes, &mut st.scratch);
                        retrieval += retrieve.stop();
                        let store = &*store;
                        let pooled = matched.iter().flat_map(|&id| store.samples(id).iter());
                        let _fit = surrogate_hist.start();
                        let (w, reuse) = lime.explain_with_reused_counted(
                            ctx,
                            &recorder,
                            &instance,
                            pooled,
                            &mut tuple_rng,
                        );
                        (w, matched, lookup, reuse)
                    }
                    None => {
                        let hits: Vec<LabeledSample> = st
                            .early
                            .lookup(&codes, lime.params.n_samples.saturating_sub(1))
                            .into_iter()
                            .cloned()
                            .collect();
                        // Warm-up lookups bypass the itemset store; only the
                        // opportunistically reusable sample count is known.
                        let lookup = LookupStats {
                            samples_available: hits.len() as u64,
                            ..LookupStats::default()
                        };
                        retrieval += retrieve.stop();
                        let _fit = surrogate_hist.start();
                        let (w, reuse) = lime.explain_with_reused_counted(
                            ctx,
                            &recorder,
                            &instance,
                            hits.iter(),
                            &mut tuple_rng,
                        );
                        (w, Vec::new(), lookup, reuse)
                    }
                };
                let degraded = reuse.clamped > 0 || shahin_model::degraded_incidents() > incidents0;
                prov.record(
                    row as u32,
                    st.epoch,
                    &matched,
                    lookup,
                    reuse.reused,
                    reuse.fresh,
                    reuse.invocations,
                    (0, 0),
                    degraded,
                    t0,
                );
                (e, degraded)
            });
            // Labels captured before a mid-tuple panic were still paid
            // for, and the tuple was still *seen* — absorb what exists
            // and keep it in the mining window either way.
            st.absorb(&codes, recorder.take_log().into_iter().skip(1).collect());
            st.window.push(codes);
            st.maybe_refresh(ctx, clf, &mut rng);
            match outcome {
                TupleOutcome::Ok(e) => explanations.push(e),
                TupleOutcome::Degraded(e) => {
                    explanations.push(e);
                    report.degraded.push(row as u32);
                }
                TupleOutcome::Failed(f) => report.failures.push(f),
            }
        }

        BatchResult {
            explanations,
            report,
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                overhead: OverheadBreakdown {
                    fim: st.fim_time,
                    materialization: st.materialization_time,
                    retrieval,
                },
                store_bytes: st.peak_bytes,
                n_frequent: st.store.as_ref().map_or(0, PerturbationStore::len),
                n_tuples: stream.n_rows(),
            },
        }
    }

    /// Streaming Anchor: precision counts and coverage accumulate across
    /// the stream; the repository bootstraps rules once it exists.
    pub fn explain_anchor<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        stream: &Dataset,
        anchor: &AnchorExplainer,
        seed: u64,
    ) -> BatchResult<AnchorExplanation> {
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x57AE);
        let mut st = StreamState::new(self.config.clone(), ctx.n_attrs(), 400, &self.obs);
        let caches = SharedAnchorCaches::with_obs(&self.obs);
        let anchor = anchor.clone().with_obs(&self.obs);
        let empty_store = PerturbationStore::new(vec![], 0);
        let retrieve_hist = self.obs.span_histogram(names::SPAN_RETRIEVE_MATCH);
        let prov = ProvenanceCtx::new(&self.obs, "Shahin-Streaming", "Anchor");
        let quarantine = QuarantineObs::new(&self.obs);
        let mut report = BatchReport::default();
        let mut retrieval = Duration::ZERO;
        let mut explanations = Vec::with_capacity(stream.n_rows());

        for row in 0..stream.n_rows() {
            let instance = stream.instance(row);
            let codes = ctx.discretizer().encode_instance(&instance);
            let outcome = guard_tuple(row as u32, &quarantine, |incidents0| {
                let t0 = prov.start();
                let inv0 = clf.invocations();
                let target = clf.predict(&instance);
                let retrieve = retrieve_hist.start();
                let (store_ref, matched, lookup): (&PerturbationStore, Vec<u32>, LookupStats) =
                    match &mut st.store {
                        Some(store) => {
                            let (m, lookup) = store.matching_stats(&codes, &mut st.scratch);
                            (&*store, m, lookup)
                        }
                        None => (&empty_store, Vec::new(), LookupStats::default()),
                    };
                retrieval += retrieve.stop();
                let mut sampler = CachingRuleSampler::new(
                    ctx,
                    clf,
                    store_ref,
                    &matched,
                    &caches,
                    per_tuple_seed(seed, row),
                );
                let e = anchor.explain_with_sampler(&codes, target, &mut sampler);
                let stats = sampler.stats();
                let invocations = clf.invocations() - inv0;
                // Anchor consumes boolean verdicts, so degradation only
                // shows up as absorbed incidents at the resilient boundary.
                let degraded = shahin_model::degraded_incidents() > incidents0;
                prov.record(
                    row as u32,
                    st.epoch,
                    &matched,
                    lookup,
                    stats.reused,
                    stats.fresh,
                    invocations,
                    (stats.cache_hits, stats.cache_misses),
                    degraded,
                    t0,
                );
                (e, degraded)
            });
            st.window.push(codes);
            st.maybe_refresh(ctx, clf, &mut rng);
            match outcome {
                TupleOutcome::Ok(e) => explanations.push(e),
                TupleOutcome::Degraded(e) => {
                    explanations.push(e);
                    report.degraded.push(row as u32);
                }
                TupleOutcome::Failed(f) => report.failures.push(f),
            }
        }

        BatchResult {
            explanations,
            report,
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                overhead: OverheadBreakdown {
                    fim: st.fim_time,
                    materialization: st.materialization_time,
                    retrieval,
                },
                store_bytes: st.peak_bytes + caches.approx_bytes(),
                n_frequent: st.store.as_ref().map_or(0, PerturbationStore::len),
                n_tuples: stream.n_rows(),
            },
        }
    }

    /// Streaming KernelSHAP.
    pub fn explain_shap<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        stream: &Dataset,
        shap: &KernelShapExplainer,
        base_samples: usize,
        seed: u64,
    ) -> BatchResult<FeatureWeights> {
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x57AE);
        let quarantine = QuarantineObs::new(&self.obs);
        let base = estimate_base_value_guarded(ctx, clf, base_samples, &mut rng, &quarantine);
        let mut st = StreamState::new(
            self.config.clone(),
            ctx.n_attrs(),
            shap.params.n_samples,
            &self.obs,
        );
        let retrieve_hist = self.obs.span_histogram(names::SPAN_RETRIEVE_MATCH);
        let surrogate_hist = self.obs.span_histogram(names::SPAN_SURROGATE_FIT);
        let prov = ProvenanceCtx::new(&self.obs, "Shahin-Streaming", "SHAP");
        let mut report = BatchReport::default();
        let mut retrieval = Duration::ZERO;
        let mut explanations = Vec::with_capacity(stream.n_rows());

        for row in 0..stream.n_rows() {
            let mut tuple_rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
            let instance = stream.instance(row);
            let codes = ctx.discretizer().encode_instance(&instance);
            let recorder = Recorder::new(clf, ctx);
            let outcome = guard_tuple(row as u32, &quarantine, |incidents0| {
                let t0 = prov.start();
                let retrieve = retrieve_hist.start();
                let (e, matched, lookup, reuse) = match &mut st.store {
                    Some(store) => {
                        let (matched, lookup) = store.matching_stats(&codes, &mut st.scratch);
                        let store = &*store;
                        let pooled = crate::shap_source::pool_coalitions(
                            store,
                            &matched,
                            shap.params.n_samples / 2,
                        );
                        let mut source = StoreCoalitionSource::new(store, matched.clone());
                        retrieval += retrieve.stop();
                        let _fit = surrogate_hist.start();
                        let (w, reuse) = shap.explain_with_counted(
                            ctx,
                            &recorder,
                            &instance,
                            base,
                            pooled,
                            &mut source,
                            &mut tuple_rng,
                        );
                        (w, matched, lookup, reuse)
                    }
                    None => {
                        let pooled: Vec<CoalitionSample> = st
                            .early
                            .lookup(&codes, shap.params.n_samples / 2)
                            .into_iter()
                            .map(|s| CoalitionSample {
                                coalition: s
                                    .codes
                                    .iter()
                                    .enumerate()
                                    .filter(|&(a, &c)| codes[a] == c)
                                    .map(|(a, _)| a as u16)
                                    .collect(),
                                proba: s.proba,
                            })
                            .collect();
                        let lookup = LookupStats {
                            samples_available: pooled.len() as u64,
                            ..LookupStats::default()
                        };
                        retrieval += retrieve.stop();
                        let _fit = surrogate_hist.start();
                        let (w, reuse) = shap.explain_with_counted(
                            ctx,
                            &recorder,
                            &instance,
                            base,
                            pooled,
                            &mut NoSource,
                            &mut tuple_rng,
                        );
                        (w, Vec::new(), lookup, reuse)
                    }
                };
                let degraded = reuse.clamped > 0 || shahin_model::degraded_incidents() > incidents0;
                prov.record(
                    row as u32,
                    st.epoch,
                    &matched,
                    lookup,
                    reuse.reused,
                    reuse.fresh,
                    reuse.invocations,
                    (0, 0),
                    degraded,
                    t0,
                );
                (e, degraded)
            });
            st.absorb(&codes, recorder.take_log().into_iter().skip(1).collect());
            st.window.push(codes);
            st.maybe_refresh(ctx, clf, &mut rng);
            match outcome {
                TupleOutcome::Ok(e) => explanations.push(e),
                TupleOutcome::Degraded(e) => {
                    explanations.push(e);
                    report.degraded.push(row as u32);
                }
                TupleOutcome::Failed(f) => report.failures.push(f),
            }
        }

        BatchResult {
            explanations,
            report,
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                overhead: OverheadBreakdown {
                    fim: st.fim_time,
                    materialization: st.materialization_time,
                    retrieval,
                },
                store_bytes: st.peak_bytes,
                n_frequent: st.store.as_ref().map_or(0, PerturbationStore::len),
                n_tuples: stream.n_rows(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shahin_model::MajorityClass;
    use shahin_tabular::{train_test_split, DatasetPreset};

    fn setup(seed: u64, n: usize) -> (ExplainContext, CountingClassifier<MajorityClass>, Dataset) {
        let (data, labels) = DatasetPreset::CensusIncome.spec(0.03).generate(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
        let ctx = ExplainContext::fit(&split.train, 300, &mut rng);
        let clf = CountingClassifier::new(MajorityClass::fit(&split.train_labels));
        let rows: Vec<usize> = (0..split.test.n_rows().min(n)).collect();
        (ctx, clf, split.test.select(&rows))
    }

    fn small_config() -> StreamingConfig {
        StreamingConfig {
            refresh_every: 25,
            tau: 30,
            ..Default::default()
        }
    }

    #[test]
    fn streaming_lime_saves_after_refresh() {
        let (ctx, clf, stream) = setup(0, 80);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 100,
            ..Default::default()
        });
        let streaming = ShahinStreaming::new(small_config());
        let res = streaming.explain_lime(&ctx, &clf, &stream, &lime, 3);
        assert_eq!(res.explanations.len(), stream.n_rows());
        assert!(res.metrics.n_frequent > 0, "no refresh happened");
        let seq_cost = 100 * stream.n_rows() as u64;
        assert!(
            res.metrics.invocations < seq_cost,
            "streaming saved nothing: {} vs {seq_cost}",
            res.metrics.invocations
        );
    }

    #[test]
    fn streaming_respects_memory_budget() {
        let (ctx, clf, stream) = setup(1, 60);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 60,
            ..Default::default()
        });
        let budget = 32 * 1024;
        let streaming = ShahinStreaming::new(StreamingConfig {
            memory_budget_bytes: budget,
            refresh_every: 20,
            tau: 50,
            ..Default::default()
        });
        let res = streaming.explain_lime(&ctx, &clf, &stream, &lime, 5);
        assert!(
            res.metrics.store_bytes <= budget + 8 * 1024,
            "peak {} exceeded budget {budget}",
            res.metrics.store_bytes
        );
    }

    #[test]
    fn streaming_shap_runs_and_keeps_efficiency() {
        let (ctx, clf, stream) = setup(2, 60);
        let shap = KernelShapExplainer::new(shahin_explain::ShapParams {
            n_samples: 64,
            ..Default::default()
        });
        let streaming = ShahinStreaming::new(small_config());
        let res = streaming.explain_shap(&ctx, &clf, &stream, &shap, 30, 7);
        assert_eq!(res.explanations.len(), stream.n_rows());
        for e in &res.explanations {
            let total: f64 = e.weights.iter().sum();
            assert!((total - (e.local_prediction - e.intercept)).abs() < 1e-6);
        }
    }

    #[test]
    fn streaming_anchor_runs() {
        let (ctx, _clf, stream) = setup(3, 50);
        struct Key;
        impl Classifier for Key {
            fn predict_proba(&self, inst: &[Feature]) -> f64 {
                f64::from(inst[0].cat().is_multiple_of(2))
            }
        }
        let clf = CountingClassifier::new(Key);
        let anchor = AnchorExplainer::default();
        let streaming = ShahinStreaming::new(small_config());
        let res = streaming.explain_anchor(&ctx, &clf, &stream, &anchor, 9);
        assert_eq!(res.explanations.len(), stream.n_rows());
        let table = ctx.discretizer().encode_dataset(&stream);
        for (row, e) in res.explanations.iter().enumerate() {
            assert!(e.rule.contained_in(&table.row(row)));
        }
    }

    #[test]
    fn obs_counts_refresh_rounds_and_carried_samples() {
        let (ctx, clf, stream) = setup(4, 80);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 80,
            ..Default::default()
        });
        let reg = MetricsRegistry::new();
        let streaming = ShahinStreaming::new(small_config()).with_obs(&reg);
        let res = streaming.explain_lime(&ctx, &clf, &stream, &lime, 11);
        let snap = reg.snapshot();
        // 80 tuples / refresh_every=25 → 3 refresh rounds.
        assert_eq!(snap.counter("streaming.refresh_rounds"), 3);
        assert_eq!(snap.histograms["span.fim.mine"].count, 3);
        assert_eq!(snap.histograms["span.materialize.fill"].count, 3);
        assert_eq!(
            snap.histograms["span.retrieve.match"].count,
            stream.n_rows() as u64
        );
        // Warm-up samples get carried into the first rebuilt store.
        assert!(snap.counter("streaming.carried_samples") > 0);
        // Spans and RunMetrics agree on the aggregated phase times.
        assert_eq!(
            snap.histograms["span.fim.mine"].sum_ns,
            res.metrics.overhead.fim.as_nanos() as u64
        );
    }

    #[test]
    fn provenance_epochs_follow_refresh_rounds_and_refreshes_emit_instants() {
        use shahin_obs::{EventSink, ProvenanceSink};
        use std::sync::Arc;

        let (ctx, clf, stream) = setup(5, 80);
        let lime = LimeExplainer::new(shahin_explain::LimeParams {
            n_samples: 80,
            ..Default::default()
        });
        let reg = MetricsRegistry::new();
        let prov = Arc::new(ProvenanceSink::new());
        let events = Arc::new(EventSink::new());
        reg.attach_provenance_sink(Arc::clone(&prov));
        reg.attach_event_sink(Arc::clone(&events));
        let streaming = ShahinStreaming::new(small_config()).with_obs(&reg);
        streaming.explain_lime(&ctx, &clf, &stream, &lime, 11);

        let recs = prov.records();
        assert_eq!(recs.len(), stream.n_rows());
        // refresh_every=25 over 80 tuples: epochs 0,0..,1,..,2,..,3.
        for (row, r) in recs.iter().enumerate() {
            assert_eq!(r.epoch, (row / 25) as u64, "row {row}");
            assert_eq!(&*r.method, "Shahin-Streaming");
            assert_eq!(r.samples_reused + r.samples_fresh, r.tau);
        }
        let refreshes: Vec<_> = events
            .records()
            .into_iter()
            .filter(|e| &*e.phase == "streaming.refresh")
            .collect();
        assert_eq!(refreshes.len(), 3);
        for (i, e) in refreshes.iter().enumerate() {
            assert!(e.dur_ns.is_none(), "refresh markers are instants");
            let epoch = e.args.iter().find(|(k, _)| k == "epoch").unwrap();
            assert_eq!(epoch.1, (i + 1).to_string());
        }
    }

    #[test]
    fn window_table_roundtrip() {
        let rows = vec![vec![1u32, 2, 3], vec![4, 5, 6]];
        let t = window_table(&rows, 3);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.row(0), vec![1, 2, 3]);
        assert_eq!(t.row(1), vec![4, 5, 6]);
    }
}
