//! Unified experiment harness: one entry point running any (method,
//! explainer) combination with comparable metrics, plus the explanation
//! fidelity comparisons of §4.2.

use shahin_explain::{
    AnchorExplainer, AnchorExplanation, ExplainContext, FeatureWeights, KernelShapExplainer,
    LimeExplainer,
};
use shahin_model::{Classifier, CountingClassifier};
use shahin_tabular::Dataset;

use crate::baseline::{
    dist_k_anchor, dist_k_lime, dist_k_shap, sequential_anchor, sequential_lime, sequential_shap,
    Greedy,
};
use crate::batch::ShahinBatch;
use crate::config::{BatchConfig, StreamingConfig};
use crate::metrics::{BatchReport, BatchResult, RunMetrics};
use crate::obs::{fold_provenance, register_standard, MetricsRegistry};
use crate::streaming::ShahinStreaming;

/// Classifier invocations spent estimating KernelSHAP's base value, once
/// per run.
pub const SHAP_BASE_SAMPLES: usize = 64;

/// Derives a per-tuple RNG seed from the run seed, so every method explains
/// tuple `idx` with identical randomness (SplitMix64 finalizer).
pub fn per_tuple_seed(base: u64, idx: usize) -> u64 {
    let mut z = base ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which explanation algorithm to run.
#[derive(Clone, Debug)]
pub enum ExplainerKind {
    /// LIME with the given parameters.
    Lime(LimeExplainer),
    /// Anchor with the given parameters.
    Anchor(AnchorExplainer),
    /// KernelSHAP with the given parameters.
    Shap(KernelShapExplainer),
}

impl ExplainerKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ExplainerKind::Lime(_) => "LIME",
            ExplainerKind::Anchor(_) => "Anchor",
            ExplainerKind::Shap(_) => "SHAP",
        }
    }
}

/// Which execution strategy to use (the paper's methods and baselines).
#[derive(Clone, Debug)]
pub enum Method {
    /// One tuple at a time, no reuse.
    Sequential,
    /// The batch split over `k` threads ("machines"); reported time is the
    /// per-machine average, as in the paper.
    Dist(usize),
    /// The GREEDY LRU-cache baseline with the given byte budget.
    Greedy(usize),
    /// Shahin-Batch.
    Batch(BatchConfig),
    /// Shahin-Batch with preparation *and* the per-tuple phase fanned out
    /// over [`BatchConfig::n_threads`] worker threads (LIME/SHAP results
    /// are identical to [`Method::Batch`]; Anchor rules match for crisp
    /// classifiers, invocation counts race within tolerance).
    BatchParallel(BatchConfig),
    /// Shahin-Streaming.
    Streaming(StreamingConfig),
}

impl Method {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Method::Sequential => "Sequential".into(),
            Method::Dist(k) => format!("Dist-{k}"),
            Method::Greedy(_) => "Greedy".into(),
            Method::Batch(_) => "Shahin-Batch".into(),
            Method::BatchParallel(cfg) => {
                format!("Shahin-Batch-Par{}", cfg.resolved_n_threads())
            }
            Method::Streaming(_) => "Shahin-Streaming".into(),
        }
    }
}

/// An explanation of either shape.
#[derive(Clone, Debug)]
pub enum Explanation {
    /// Feature-attribution weights (LIME, SHAP).
    Weights(FeatureWeights),
    /// An Anchor rule.
    Rule(AnchorExplanation),
}

impl Explanation {
    /// The weight vector, if this is an attribution explanation.
    pub fn weights(&self) -> Option<&FeatureWeights> {
        match self {
            Explanation::Weights(w) => Some(w),
            Explanation::Rule(_) => None,
        }
    }

    /// The rule, if this is an Anchor explanation.
    pub fn rule(&self) -> Option<&AnchorExplanation> {
        match self {
            Explanation::Rule(r) => Some(r),
            Explanation::Weights(_) => None,
        }
    }
}

/// Result of one (method, explainer, batch) run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Metrics of the run.
    pub metrics: RunMetrics,
    /// One explanation per *surviving* tuple (quarantined tuples are
    /// listed in [`RunReport::report`] instead).
    pub explanations: Vec<Explanation>,
    /// Quarantined and degraded tuples of the run.
    pub report: BatchReport,
}

fn wrap_weights(r: BatchResult<FeatureWeights>) -> RunReport {
    RunReport {
        metrics: r.metrics,
        explanations: r
            .explanations
            .into_iter()
            .map(Explanation::Weights)
            .collect(),
        report: r.report,
    }
}

fn wrap_rules(r: BatchResult<AnchorExplanation>) -> RunReport {
    RunReport {
        metrics: r.metrics,
        explanations: r.explanations.into_iter().map(Explanation::Rule).collect(),
        report: r.report,
    }
}

/// Runs one (method, explainer) combination over the batch.
pub fn run<C: Classifier>(
    method: &Method,
    kind: &ExplainerKind,
    ctx: &ExplainContext,
    clf: &CountingClassifier<C>,
    batch: &Dataset,
    seed: u64,
) -> RunReport {
    run_with_obs(
        method,
        kind,
        ctx,
        clf,
        batch,
        seed,
        &MetricsRegistry::disabled(),
    )
}

/// [`run`], recording spans, counters and gauges into `obs` (see
/// [`crate::obs`] for the name schema). The full standard schema is
/// pre-registered, so a snapshot taken afterwards carries every key even
/// for phases this (method, explainer) combination never enters. Baseline
/// methods (Sequential/Dist/Greedy) have no instrumented phases; only the
/// pre-registered zero values appear for them. To also capture classifier
/// latency histograms, wrap the model in a
/// [`shahin_model::TracedClassifier`] bound to the same registry.
#[allow(clippy::too_many_arguments)]
pub fn run_with_obs<C: Classifier>(
    method: &Method,
    kind: &ExplainerKind,
    ctx: &ExplainContext,
    clf: &CountingClassifier<C>,
    batch: &Dataset,
    seed: u64,
    obs: &MetricsRegistry,
) -> RunReport {
    register_standard(obs);
    let report = match (method, kind) {
        (Method::Sequential, ExplainerKind::Lime(e)) => {
            wrap_weights(sequential_lime(ctx, clf, batch, e, seed))
        }
        (Method::Sequential, ExplainerKind::Anchor(e)) => {
            wrap_rules(sequential_anchor(ctx, clf, batch, e, seed))
        }
        (Method::Sequential, ExplainerKind::Shap(e)) => {
            wrap_weights(sequential_shap(ctx, clf, batch, e, SHAP_BASE_SAMPLES, seed))
        }
        (Method::Dist(k), ExplainerKind::Lime(e)) => {
            wrap_weights(dist_k_lime(ctx, clf, batch, e, *k, seed))
        }
        (Method::Dist(k), ExplainerKind::Anchor(e)) => {
            wrap_rules(dist_k_anchor(ctx, clf, batch, e, *k, seed))
        }
        (Method::Dist(k), ExplainerKind::Shap(e)) => {
            wrap_weights(dist_k_shap(ctx, clf, batch, e, SHAP_BASE_SAMPLES, *k, seed))
        }
        (Method::Greedy(budget), ExplainerKind::Lime(e)) => {
            wrap_weights(Greedy::new(*budget).explain_lime(ctx, clf, batch, e, seed))
        }
        (Method::Greedy(budget), ExplainerKind::Anchor(e)) => {
            wrap_rules(Greedy::new(*budget).explain_anchor(ctx, clf, batch, e, seed))
        }
        (Method::Greedy(budget), ExplainerKind::Shap(e)) => wrap_weights(
            Greedy::new(*budget).explain_shap(ctx, clf, batch, e, SHAP_BASE_SAMPLES, seed),
        ),
        (Method::Batch(cfg), ExplainerKind::Lime(e)) => wrap_weights(
            ShahinBatch::new(cfg.clone())
                .with_obs(obs)
                .explain_lime(ctx, clf, batch, e, seed),
        ),
        (Method::Batch(cfg), ExplainerKind::Anchor(e)) => wrap_rules(
            ShahinBatch::new(cfg.clone())
                .with_obs(obs)
                .explain_anchor(ctx, clf, batch, e, seed),
        ),
        (Method::Batch(cfg), ExplainerKind::Shap(e)) => {
            wrap_weights(ShahinBatch::new(cfg.clone()).with_obs(obs).explain_shap(
                ctx,
                clf,
                batch,
                e,
                SHAP_BASE_SAMPLES,
                seed,
            ))
        }
        (Method::BatchParallel(cfg), ExplainerKind::Lime(e)) => wrap_weights(
            ShahinBatch::new(cfg.clone())
                .with_obs(obs)
                .explain_lime_parallel(ctx, clf, batch, e, seed),
        ),
        (Method::BatchParallel(cfg), ExplainerKind::Anchor(e)) => wrap_rules(
            ShahinBatch::new(cfg.clone())
                .with_obs(obs)
                .explain_anchor_parallel(ctx, clf, batch, e, seed),
        ),
        (Method::BatchParallel(cfg), ExplainerKind::Shap(e)) => wrap_weights(
            ShahinBatch::new(cfg.clone())
                .with_obs(obs)
                .explain_shap_parallel(ctx, clf, batch, e, SHAP_BASE_SAMPLES, seed),
        ),
        (Method::Streaming(cfg), ExplainerKind::Lime(e)) => wrap_weights(
            ShahinStreaming::new(cfg.clone())
                .with_obs(obs)
                .explain_lime(ctx, clf, batch, e, seed),
        ),
        (Method::Streaming(cfg), ExplainerKind::Anchor(e)) => wrap_rules(
            ShahinStreaming::new(cfg.clone())
                .with_obs(obs)
                .explain_anchor(ctx, clf, batch, e, seed),
        ),
        (Method::Streaming(cfg), ExplainerKind::Shap(e)) => wrap_weights(
            ShahinStreaming::new(cfg.clone())
                .with_obs(obs)
                .explain_shap(ctx, clf, batch, e, SHAP_BASE_SAMPLES, seed),
        ),
    };
    // Summarize any collected lineage as provenance.* gauges, so a metrics
    // snapshot taken after the run reconciles against the JSONL export.
    fold_provenance(obs);
    report
}

/// Explanation fidelity between two runs of attribution explainers:
/// `(mean Euclidean distance, mean Kendall-τ)` over the batch (§4.2).
pub fn attribution_fidelity(a: &[Explanation], b: &[Explanation]) -> (f64, f64) {
    assert_eq!(a.len(), b.len(), "batch size mismatch");
    assert!(!a.is_empty(), "empty batch");
    let mut dist = 0.0;
    let mut tau = 0.0;
    for (x, y) in a.iter().zip(b) {
        let (wx, wy) = (
            &x.weights().expect("attribution explanation").weights,
            &y.weights().expect("attribution explanation").weights,
        );
        dist += shahin_linalg::euclidean_distance(wx, wy);
        tau += shahin_linalg::kendall_tau(wx, wy);
    }
    let n = a.len() as f64;
    (dist / n, tau / n)
}

/// Fraction of tuples whose Anchor rules are identical between two runs.
pub fn rule_agreement(a: &[Explanation], b: &[Explanation]) -> f64 {
    assert_eq!(a.len(), b.len(), "batch size mismatch");
    assert!(!a.is_empty(), "empty batch");
    let same = a
        .iter()
        .zip(b)
        .filter(|(x, y)| {
            x.rule().expect("anchor explanation").rule == y.rule().expect("anchor").rule
        })
        .count();
    same as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tuple_seed_spreads() {
        let a = per_tuple_seed(1, 0);
        let b = per_tuple_seed(1, 1);
        let c = per_tuple_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(per_tuple_seed(1, 0), a);
    }

    #[test]
    fn explanation_accessors() {
        let w = Explanation::Weights(FeatureWeights {
            weights: vec![1.0],
            intercept: 0.0,
            local_prediction: 0.5,
        });
        assert!(w.weights().is_some());
        assert!(w.rule().is_none());
    }

    #[test]
    fn fidelity_of_identical_runs_is_perfect() {
        let e = Explanation::Weights(FeatureWeights {
            weights: vec![0.5, -0.2, 0.1],
            intercept: 0.0,
            local_prediction: 0.5,
        });
        let a = vec![e.clone(), e.clone()];
        let (d, t) = attribution_fidelity(&a, &a);
        assert_eq!(d, 0.0);
        assert_eq!(t, 1.0);
    }

    #[test]
    fn method_and_kind_names() {
        assert_eq!(Method::Dist(8).name(), "Dist-8");
        assert_eq!(Method::Sequential.name(), "Sequential");
        assert_eq!(ExplainerKind::Lime(LimeExplainer::default()).name(), "LIME");
    }
}
