//! KernelSHAP coalition source backed by the perturbation store.
//!
//! Algorithm 3 (lines 9–13): when KernelSHAP samples a random feature
//! subset `s` that is a *superset* of some materialized frequent itemset
//! `f`, the stored perturbations of `f` can be scanned for ones whose codes
//! also agree with the instance on `s \ attrs(f)` — those are exactly
//! perturbations with coalition `s` frozen at the instance's values, and
//! their classifier labels come for free.

use shahin_explain::{CoalitionSample, CoalitionSource};
use shahin_fim::Itemset;

use crate::store::PerturbationStore;

/// Pools materialized samples as pre-labeled coalitions for one tuple
/// (Algorithm 3 lines 7–8), interleaving **round-robin across the matched
/// itemsets** so the regression sees diverse coalition masks, capped at
/// `budget` samples. Greedily draining one itemset's τ samples first would
/// leave the constrained WLS nearly rank-deficient and blow up individual
/// Shapley estimates (observed as multi-unit Euclidean deviations in the
/// quality harness before this was fixed).
pub fn pool_coalitions(
    store: &PerturbationStore,
    matched: &[u32],
    budget: usize,
) -> Vec<CoalitionSample> {
    let mut pooled = Vec::with_capacity(budget.min(64));
    if matched.is_empty() || budget == 0 {
        return pooled;
    }
    let coalitions: Vec<Vec<u16>> = matched
        .iter()
        .map(|&id| store.itemset(id).items().iter().map(|it| it.attr).collect())
        .collect();
    let mut cursor = 0usize;
    loop {
        let mut any = false;
        for (&id, coalition) in matched.iter().zip(&coalitions) {
            let samples = store.samples(id);
            if let Some(s) = samples.get(cursor) {
                pooled.push(CoalitionSample {
                    coalition: coalition.clone(),
                    proba: s.proba,
                });
                any = true;
                if pooled.len() >= budget {
                    return pooled;
                }
            }
        }
        if !any {
            return pooled;
        }
        cursor += 1;
    }
}

/// A per-tuple [`CoalitionSource`] over the materialized store.
pub struct StoreCoalitionSource<'a> {
    store: &'a PerturbationStore,
    /// Store ids whose itemsets the tuple contains, in priority order.
    matched: Vec<u32>,
    /// Rotating scan cursor per matched entry (indexed like `matched`), so
    /// repeated fetches hand out different cached samples.
    cursors: Vec<usize>,
    /// Cap on samples scanned per fetch attempt, bounding retrieval cost.
    max_scan: usize,
    /// Number of successful cache hits (for diagnostics).
    hits: u64,
}

impl<'a> StoreCoalitionSource<'a> {
    /// Creates a source for one tuple given its matched store ids.
    pub fn new(store: &'a PerturbationStore, matched: Vec<u32>) -> Self {
        let cursors = vec![0; matched.len()];
        StoreCoalitionSource {
            store,
            matched,
            cursors,
            max_scan: 64,
            hits: 0,
        }
    }

    /// Number of coalition fetches served from the store.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

/// True if every attribute of `itemset` appears in the sorted `coalition`.
fn attrs_subset_of(itemset: &Itemset, coalition: &[u16]) -> bool {
    itemset
        .items()
        .iter()
        .all(|it| coalition.binary_search(&it.attr).is_ok())
}

impl CoalitionSource for StoreCoalitionSource<'_> {
    fn fetch(&mut self, inst_codes: &[u32], coalition: &[u16]) -> Option<f64> {
        for (mi, &id) in self.matched.iter().enumerate() {
            let f = self.store.itemset(id);
            if f.len() > coalition.len() || !attrs_subset_of(f, coalition) {
                continue;
            }
            let samples = self.store.samples(id);
            if samples.is_empty() {
                continue;
            }
            let start = self.cursors[mi];
            let scan = samples.len().min(self.max_scan);
            for step in 0..scan {
                let idx = (start + step) % samples.len();
                let s = &samples[idx];
                // The coalition attrs not covered by `f` must agree with
                // the instance (f's own attrs agree by construction since
                // the tuple contains f).
                let ok = coalition
                    .iter()
                    .all(|&a| s.codes[a as usize] == inst_codes[a as usize]);
                if ok {
                    self.cursors[mi] = (idx + 1) % samples.len();
                    self.hits += 1;
                    return Some(s.proba);
                }
            }
            self.cursors[mi] = (start + scan) % samples.len();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use shahin_explain::ExplainContext;
    use shahin_fim::Item;
    use shahin_model::MajorityClass;
    use shahin_tabular::{Attribute, Column, Dataset, Schema};
    use std::sync::Arc;

    fn setup() -> (ExplainContext, PerturbationStore) {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 200;
        let schema = Arc::new(Schema::new(
            (0..4)
                .map(|i| Attribute::categorical(format!("a{i}"), 3))
                .collect(),
        ));
        let cols = (0..4)
            .map(|_| Column::Cat((0..n).map(|_| rng.gen_range(0..3u32)).collect()))
            .collect();
        let ctx = ExplainContext::fit(&Dataset::new(schema, cols), 200, &mut rng);
        let clf = MajorityClass::fit(&[1]);
        let itemsets = vec![Itemset::new(vec![Item::new(0, 1)])];
        let mut store = PerturbationStore::new(itemsets, usize::MAX);
        store.materialize(&ctx, &clf, 60, &mut rng);
        (ctx, store)
    }

    #[test]
    fn exact_coalition_hit() {
        let (_ctx, store) = setup();
        let mut src = StoreCoalitionSource::new(&store, vec![0]);
        // Coalition = exactly the materialized itemset's attr.
        let inst = [1u32, 2, 0, 1];
        let got = src.fetch(&inst, &[0]);
        assert!(got.is_some());
        assert_eq!(src.hits(), 1);
    }

    #[test]
    fn superset_coalition_scans_for_agreement() {
        let (_ctx, store) = setup();
        let mut src = StoreCoalitionSource::new(&store, vec![0]);
        let inst = [1u32, 2, 0, 1];
        // Coalition {0, 1}: need a stored sample of {A0=1} with code 2 at
        // attr 1 (~1/3 of 60 samples exist).
        let got = src.fetch(&inst, &[0, 1]);
        assert!(got.is_some(), "no agreeing sample found among 60");
    }

    #[test]
    fn miss_when_itemset_not_subset() {
        let (_ctx, store) = setup();
        let mut src = StoreCoalitionSource::new(&store, vec![0]);
        let inst = [1u32, 2, 0, 1];
        // Coalition {1, 2} does not include attr 0.
        assert_eq!(src.fetch(&inst, &[1, 2]), None);
        assert_eq!(src.hits(), 0);
    }

    #[test]
    fn cursor_rotates_over_samples() {
        let (_ctx, store) = setup();
        let mut src = StoreCoalitionSource::new(&store, vec![0]);
        let inst = [1u32, 2, 0, 1];
        let a = src.fetch(&inst, &[0]);
        let b = src.fetch(&inst, &[0]);
        assert!(a.is_some() && b.is_some());
        // The cursor advanced; with 60 samples the two fetches served
        // different indices (same proba values are possible, but the
        // cursor state must differ from the start).
        assert_ne!(src.cursors[0], 0);
    }

    #[test]
    fn empty_matched_always_misses() {
        let (_ctx, store) = setup();
        let mut src = StoreCoalitionSource::new(&store, vec![]);
        assert_eq!(src.fetch(&[1, 2, 0, 1], &[0]), None);
    }
}
