//! A tag-indexed LRU perturbation cache — the GREEDY baseline's store.
//!
//! The paper's GREEDY baseline "stores all the perturbations until the
//! budget is exhausted \[and\] reuses existing perturbations and their labels
//! if possible" (§4.1). "Possible" means the cached perturbation is a valid
//! conditional sample for the new tuple: every attribute where the sample
//! agreed with its source tuple (its implicit *frozen set*, the tag) must
//! carry the same value in the new tuple.
//!
//! Because tags are whatever agreement happened to occur — typically many
//! attributes, dominated by the source tuple's values — few cached samples
//! are valid for other tuples. This is exactly the weakness the paper
//! ascribes to GREEDY: it persists perturbations without *engineering*
//! them for reuse, unlike Shahin's frequent-itemset freezes.

use std::collections::HashMap;

use shahin_explain::LabeledSample;

#[derive(Clone, Debug, Default)]
struct Bucket {
    samples: Vec<LabeledSample>,
    bytes: usize,
    last_used: u64,
}

/// The tag: attributes (sorted) where the sample agreed with its source
/// tuple, together with the codes it carries there.
type Tag = Box<[(u16, u32)]>;

fn tag_of(sample_codes: &[u32], tuple_codes: &[u32]) -> Tag {
    debug_assert_eq!(sample_codes.len(), tuple_codes.len());
    sample_codes
        .iter()
        .zip(tuple_codes)
        .enumerate()
        .filter(|(_, (s, t))| s == t)
        .map(|(attr, (&s, _))| (attr as u16, s))
        .collect()
}

/// True if every `(attr, code)` of the tag matches the tuple.
fn tag_contained_in(tag: &[(u16, u32)], tuple_codes: &[u32]) -> bool {
    tag.iter().all(|&(a, c)| tuple_codes[a as usize] == c)
}

/// LRU cache of labeled perturbations, keyed by their full frozen tag,
/// with byte-budget accounting. Lookup scans the bucket directory, which
/// is bounded by the byte budget.
#[derive(Clone, Debug)]
pub struct TaggedLruCache {
    buckets: HashMap<Tag, Bucket>,
    budget: usize,
    used_bytes: usize,
    clock: u64,
    evictions: u64,
}

impl TaggedLruCache {
    /// Creates an empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> TaggedLruCache {
        TaggedLruCache {
            buckets: HashMap::new(),
            budget: budget_bytes,
            used_bytes: 0,
            clock: 0,
            evictions: 0,
        }
    }

    /// Bytes currently resident.
    #[inline]
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Buckets evicted under byte pressure over the cache's lifetime.
    #[inline]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total cached samples.
    pub fn n_samples(&self) -> usize {
        self.buckets.values().map(|b| b.samples.len()).sum()
    }

    /// Stores a sample generated while explaining the tuple with
    /// `tuple_codes`, evicting least-recently-used buckets if the budget
    /// requires it.
    pub fn insert(&mut self, tuple_codes: &[u32], sample: LabeledSample) {
        let tag = tag_of(&sample.codes, tuple_codes);
        let need = sample.approx_bytes() + tag.len() * std::mem::size_of::<(u16, u32)>();
        if need > self.budget {
            return;
        }
        while self.used_bytes + need > self.budget {
            if !self.evict_lru() {
                return;
            }
        }
        // Inserts advance the clock too, so eviction order among
        // never-looked-up buckets is deterministic (insertion order).
        self.clock += 1;
        let clock = self.clock;
        let bucket = self.buckets.entry(tag).or_default();
        bucket.samples.push(sample);
        bucket.bytes += need;
        bucket.last_used = clock;
        self.used_bytes += need;
    }

    /// Clones every cached sample without disturbing the cache. The
    /// streaming refresh carries samples from clones so the warm-up cache
    /// keeps serving if the rebuild fails partway.
    pub fn samples_cloned(&self) -> Vec<LabeledSample> {
        let mut out = Vec::with_capacity(self.n_samples());
        for b in self.buckets.values() {
            out.extend(b.samples.iter().cloned());
        }
        out
    }

    /// Removes and returns every cached sample (used when the streaming
    /// variant graduates from the warm-up cache to the itemset store).
    pub fn drain_samples(&mut self) -> Vec<LabeledSample> {
        let mut out = Vec::with_capacity(self.n_samples());
        for (_, mut b) in self.buckets.drain() {
            out.append(&mut b.samples);
        }
        self.used_bytes = 0;
        out
    }

    /// All cached samples reusable for the tuple with `tuple_codes`, up to
    /// `limit`: samples whose tag items all match the tuple. Marks the hit
    /// buckets as recently used.
    pub fn lookup(&mut self, tuple_codes: &[u32], limit: usize) -> Vec<&LabeledSample> {
        self.clock += 1;
        let clock = self.clock;
        let mut hits: Vec<Tag> = Vec::new();
        for (tag, bucket) in &mut self.buckets {
            if tag_contained_in(tag, tuple_codes) {
                bucket.last_used = clock;
                hits.push(tag.clone());
            }
        }
        let mut out = Vec::new();
        'outer: for tag in &hits {
            for s in &self.buckets[tag].samples {
                if out.len() >= limit {
                    break 'outer;
                }
                out.push(s);
            }
        }
        out
    }

    fn evict_lru(&mut self) -> bool {
        let victim = self
            .buckets
            .iter()
            .min_by_key(|(_, b)| b.last_used)
            .map(|(k, _)| k.clone());
        match victim {
            Some(k) => {
                let b = self.buckets.remove(&k).expect("victim exists");
                self.used_bytes -= b.bytes;
                self.evictions += 1;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(codes: &[u32], proba: f64) -> LabeledSample {
        LabeledSample {
            codes: codes.to_vec().into_boxed_slice(),
            proba,
        }
    }

    #[test]
    fn tag_captures_full_agreement() {
        let tag = tag_of(&[1, 5, 3, 7], &[1, 9, 3, 7]);
        assert_eq!(&*tag, &[(0, 1), (2, 3), (3, 7)]);
        let none = tag_of(&[1, 2], &[3, 4]);
        assert!(none.is_empty());
    }

    #[test]
    fn reuse_requires_full_tag_containment() {
        let mut cache = TaggedLruCache::new(usize::MAX);
        // Sample agreeing with its source on attrs 0 and 1.
        cache.insert(&[1, 5, 0], sample(&[1, 5, 9], 0.7));
        // A tuple sharing both frozen values can reuse it.
        assert_eq!(cache.lookup(&[1, 5, 2], 10).len(), 1);
        // A tuple sharing only one of them cannot — the sample is
        // conditioned on both.
        assert_eq!(cache.lookup(&[1, 6, 2], 10).len(), 0);
    }

    #[test]
    fn untagged_samples_are_universal() {
        let mut cache = TaggedLruCache::new(usize::MAX);
        cache.insert(&[9, 9, 9], sample(&[1, 2, 3], 0.4));
        assert_eq!(cache.lookup(&[0, 0, 0], 10).len(), 1);
    }

    #[test]
    fn limit_is_respected() {
        let mut cache = TaggedLruCache::new(usize::MAX);
        for i in 0..20 {
            cache.insert(&[9, 9], sample(&[i, 1], 0.5));
        }
        assert_eq!(cache.lookup(&[7, 7], 5).len(), 5);
    }

    #[test]
    fn budget_evicts_lru_buckets() {
        let unit = {
            let s = sample(&[1, 0], 0.5);
            s.approx_bytes() + std::mem::size_of::<(u16, u32)>()
        };
        let mut cache = TaggedLruCache::new(4 * unit);
        // Four distinct single-item buckets.
        cache.insert(&[1, 9], sample(&[1, 0], 0.1));
        cache.insert(&[2, 9], sample(&[2, 0], 0.2));
        cache.insert(&[3, 9], sample(&[3, 0], 0.3));
        cache.insert(&[4, 9], sample(&[4, 0], 0.4));
        assert_eq!(cache.n_samples(), 4);
        // Touch bucket A0=1 so it is most recent.
        assert_eq!(cache.lookup(&[1, 5], 10).len(), 1);
        // Inserting a fifth bucket evicts the least recently used (A0=2).
        cache.insert(&[5, 9], sample(&[5, 0], 0.5));
        assert_eq!(cache.n_samples(), 4);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.lookup(&[2, 5], 10).len(), 0, "A0=2 should be gone");
        assert_eq!(cache.lookup(&[1, 5], 10).len(), 1, "A0=1 should survive");
    }

    #[test]
    fn oversized_sample_is_dropped() {
        let mut cache = TaggedLruCache::new(8);
        cache.insert(&[1], sample(&[1], 0.5));
        assert_eq!(cache.n_samples(), 0);
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn drain_empties_the_cache() {
        let mut cache = TaggedLruCache::new(usize::MAX);
        cache.insert(&[1, 2], sample(&[1, 2], 0.1));
        cache.insert(&[3, 4], sample(&[0, 4], 0.2));
        let drained = cache.drain_samples();
        assert_eq!(drained.len(), 2);
        assert_eq!(cache.n_samples(), 0);
        assert_eq!(cache.used_bytes(), 0);
    }
}
