//! Observability wiring for the Shahin drivers.
//!
//! The primitives live in the dependency-free `shahin-obs` crate
//! (re-exported here); this module owns the *metric name schema* every
//! driver records into, so a `--metrics-out` dump always carries the same
//! keys regardless of which (method, explainer) combination ran.

pub use shahin_obs::{
    bucket_index, bucket_upper_ns, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, Span, N_BUCKETS, SPAN_PREFIX,
};

use crate::anchor_cache::N_SHARDS;

/// Canonical metric names recorded by the instrumented drivers.
pub mod names {
    /// Frequent itemset mining over the batch sample (span).
    pub const SPAN_FIM_MINE: &str = "fim.mine";
    /// Materializing τ labeled perturbations per itemset (span).
    pub const SPAN_MATERIALIZE_FILL: &str = "materialize.fill";
    /// Generating + undiscretizing perturbations, excluding the classifier
    /// (span; summed over materialization workers).
    pub const SPAN_PERTURB_GENERATE: &str = "perturb.generate";
    /// Per-tuple store lookup (span; summed over workers when parallel).
    pub const SPAN_RETRIEVE_MATCH: &str = "retrieve.match";
    /// Per-tuple explainer time: sample top-up + surrogate fit (span).
    pub const SPAN_SURROGATE_FIT: &str = "surrogate.fit";
    /// One Anchor beam search (span).
    pub const SPAN_ANCHOR_SEARCH: &str = "anchor.search";

    /// Store lookups ([`crate::PerturbationStore::matching`] calls).
    pub const STORE_LOOKUPS: &str = "store.lookups";
    /// Matched itemsets that had materialized samples.
    pub const STORE_HITS: &str = "store.hits";
    /// Matched itemsets whose entries were empty (evicted or never filled).
    pub const STORE_MISSES: &str = "store.misses";
    /// Lookups that found no reusable samples at all.
    pub const STORE_EMPTY_LOOKUPS: &str = "store.empty_lookups";
    /// Materialized samples pooled into explanations (partial-reuse
    /// volume: `samples_reused / lookups` is the per-tuple reuse rate).
    pub const STORE_SAMPLES_REUSED: &str = "store.samples_reused";
    /// LRU entries evicted under byte pressure.
    pub const STORE_EVICTIONS: &str = "store.evictions";
    /// Bytes currently resident in the store (gauge).
    pub const STORE_RESIDENT_BYTES: &str = "store.resident_bytes";
    /// Peak resident bytes (gauge, high-watermark).
    pub const STORE_PEAK_BYTES: &str = "store.peak_bytes";

    /// Streaming re-mining rounds.
    pub const STREAMING_REFRESH_ROUNDS: &str = "streaming.refresh_rounds";
    /// Warm-up LRU cache bucket evictions.
    pub const STREAMING_EARLY_EVICTIONS: &str = "streaming.early_evictions";
    /// Samples carried into a rebuilt store at refresh.
    pub const STREAMING_CARRIED_SAMPLES: &str = "streaming.carried_samples";

    /// Rows pushed through the classifier (TracedClassifier).
    pub const CLASSIFIER_INVOCATIONS: &str = "classifier.invocations";
    /// Batch dispatches (TracedClassifier).
    pub const CLASSIFIER_BATCH_CALLS: &str = "classifier.batch_calls";
    /// Per-row classifier latency histogram.
    pub const CLASSIFIER_PREDICT: &str = "classifier.predict";
    /// Whole-batch classifier latency histogram.
    pub const CLASSIFIER_PREDICT_BATCH: &str = "classifier.predict_batch";

    /// Anchor beam-search levels entered.
    pub const ANCHOR_LEVELS: &str = "anchor.levels";
    /// Anchor candidates surviving coverage pruning.
    pub const ANCHOR_CANDIDATES: &str = "anchor.candidates";
    /// Searches returning a precision-verified anchor.
    pub const ANCHOR_VERIFIED: &str = "anchor.verified";
    /// Searches falling back to a best-effort rule.
    pub const ANCHOR_FALLBACKS: &str = "anchor.fallbacks";

    /// Name of a per-shard Anchor cache counter, `anchor.shardNN.{kind}`
    /// with `kind` one of `hits`, `misses`, `contention`.
    pub fn anchor_shard(idx: usize, kind: &str) -> String {
        format!("anchor.shard{idx:02}.{kind}")
    }
}

/// Pre-registers the full metric schema in `reg`, so a snapshot taken
/// after any run contains every key (with zero values for phases that
/// never fired — e.g. `span.surrogate.fit` stays zero on an Anchor run).
/// Idempotent; a disabled registry is left untouched.
pub fn register_standard(reg: &MetricsRegistry) {
    if !reg.is_enabled() {
        return;
    }
    for span in [
        names::SPAN_FIM_MINE,
        names::SPAN_MATERIALIZE_FILL,
        names::SPAN_PERTURB_GENERATE,
        names::SPAN_RETRIEVE_MATCH,
        names::SPAN_SURROGATE_FIT,
        names::SPAN_ANCHOR_SEARCH,
    ] {
        reg.span_histogram(span);
    }
    for counter in [
        names::STORE_LOOKUPS,
        names::STORE_HITS,
        names::STORE_MISSES,
        names::STORE_EMPTY_LOOKUPS,
        names::STORE_SAMPLES_REUSED,
        names::STORE_EVICTIONS,
        names::STREAMING_REFRESH_ROUNDS,
        names::STREAMING_EARLY_EVICTIONS,
        names::STREAMING_CARRIED_SAMPLES,
        names::CLASSIFIER_INVOCATIONS,
        names::CLASSIFIER_BATCH_CALLS,
        names::ANCHOR_LEVELS,
        names::ANCHOR_CANDIDATES,
        names::ANCHOR_VERIFIED,
        names::ANCHOR_FALLBACKS,
    ] {
        reg.counter(counter);
    }
    for gauge in [names::STORE_RESIDENT_BYTES, names::STORE_PEAK_BYTES] {
        reg.gauge(gauge);
    }
    for hist in [names::CLASSIFIER_PREDICT, names::CLASSIFIER_PREDICT_BATCH] {
        reg.histogram(hist);
    }
    for shard in 0..N_SHARDS {
        for kind in ["hits", "misses", "contention"] {
            reg.counter(&names::anchor_shard(shard, kind));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_schema_is_complete_and_idempotent() {
        let reg = MetricsRegistry::new();
        register_standard(&reg);
        register_standard(&reg);
        let snap = reg.snapshot();
        for key in [
            names::STORE_HITS,
            names::STORE_MISSES,
            names::STREAMING_REFRESH_ROUNDS,
            names::CLASSIFIER_INVOCATIONS,
            &names::anchor_shard(0, "hits"),
            &names::anchor_shard(N_SHARDS - 1, "contention"),
        ] {
            assert!(snap.counters.contains_key(key), "missing counter {key}");
        }
        for key in ["span.fim.mine", "span.surrogate.fit", "span.anchor.search"] {
            assert!(snap.histograms.contains_key(key), "missing span {key}");
        }
        assert!(snap.gauges.contains_key(names::STORE_RESIDENT_BYTES));
        assert!(snap.histograms.contains_key(names::CLASSIFIER_PREDICT));
    }

    #[test]
    fn disabled_registry_stays_empty() {
        let reg = MetricsRegistry::disabled();
        register_standard(&reg);
        assert!(reg.snapshot().counters.is_empty());
    }
}
