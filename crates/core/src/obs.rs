//! Observability wiring for the Shahin drivers.
//!
//! The primitives live in the dependency-free `shahin-obs` crate
//! (re-exported here); this module owns the *metric name schema* every
//! driver records into, so a `--metrics-out` dump always carries the same
//! keys regardless of which (method, explainer) combination ran.

pub use shahin_obs::{
    bucket_index, bucket_upper_ns, current_thread_id, trace_sampled, Counter, EventRecord,
    EventSink, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    ProvenanceRecord, ProvenanceSink, ProvenanceTotals, RequestTrace, Span, StageSpan,
    TraceContext, TraceCounters, TraceSink, TraceSpan, TraceStore, TraceStoreConfig,
    ValueHistogram, N_BUCKETS, SPAN_PREFIX,
};

use std::sync::Arc;
use std::time::Instant;

use crate::anchor_cache::N_SHARDS;
use crate::store::LookupStats;

/// Canonical metric names recorded by the instrumented drivers.
pub mod names {
    /// Frequent itemset mining over the batch sample (span).
    pub const SPAN_FIM_MINE: &str = "fim.mine";
    /// Materializing τ labeled perturbations per itemset (span).
    pub const SPAN_MATERIALIZE_FILL: &str = "materialize.fill";
    /// Generating + undiscretizing perturbations, excluding the classifier
    /// (span; summed over materialization workers).
    pub const SPAN_PERTURB_GENERATE: &str = "perturb.generate";
    /// Per-tuple store lookup (span; summed over workers when parallel).
    pub const SPAN_RETRIEVE_MATCH: &str = "retrieve.match";
    /// Per-tuple explainer time: sample top-up + surrogate fit (span).
    pub const SPAN_SURROGATE_FIT: &str = "surrogate.fit";
    /// One Anchor beam search (span).
    pub const SPAN_ANCHOR_SEARCH: &str = "anchor.search";

    /// Store lookups ([`crate::PerturbationStore::matching`] calls).
    pub const STORE_LOOKUPS: &str = "store.lookups";
    /// Matched itemsets that had materialized samples.
    pub const STORE_HITS: &str = "store.hits";
    /// Matched itemsets whose entries were empty (evicted or never filled).
    pub const STORE_MISSES: &str = "store.misses";
    /// Lookups that found no reusable samples at all.
    pub const STORE_EMPTY_LOOKUPS: &str = "store.empty_lookups";
    /// Materialized samples pooled into explanations (partial-reuse
    /// volume: `samples_reused / lookups` is the per-tuple reuse rate).
    pub const STORE_SAMPLES_REUSED: &str = "store.samples_reused";
    /// LRU entries evicted under byte pressure.
    pub const STORE_EVICTIONS: &str = "store.evictions";
    /// Bytes currently resident in the store (gauge).
    pub const STORE_RESIDENT_BYTES: &str = "store.resident_bytes";
    /// Peak resident bytes (gauge, high-watermark).
    pub const STORE_PEAK_BYTES: &str = "store.peak_bytes";

    /// Streaming re-mining rounds.
    pub const STREAMING_REFRESH_ROUNDS: &str = "streaming.refresh_rounds";
    /// Warm-up LRU cache bucket evictions.
    pub const STREAMING_EARLY_EVICTIONS: &str = "streaming.early_evictions";
    /// Samples carried into a rebuilt store at refresh.
    pub const STREAMING_CARRIED_SAMPLES: &str = "streaming.carried_samples";
    /// Refresh rounds that failed (panic mid-rebuild); the stream keeps
    /// serving from the stale store and retries next window.
    pub const STREAMING_REFRESH_FAILURES: &str = "streaming.refresh_failures";

    /// Rows pushed through the classifier (TracedClassifier).
    pub const CLASSIFIER_INVOCATIONS: &str = "classifier.invocations";
    /// Batch dispatches (TracedClassifier).
    pub const CLASSIFIER_BATCH_CALLS: &str = "classifier.batch_calls";
    /// Per-row classifier latency histogram.
    pub const CLASSIFIER_PREDICT: &str = "classifier.predict";
    /// Whole-batch classifier latency histogram.
    pub const CLASSIFIER_PREDICT_BATCH: &str = "classifier.predict_batch";

    /// Anchor beam-search levels entered.
    pub const ANCHOR_LEVELS: &str = "anchor.levels";
    /// Anchor candidates surviving coverage pruning.
    pub const ANCHOR_CANDIDATES: &str = "anchor.candidates";
    /// Searches returning a precision-verified anchor.
    pub const ANCHOR_VERIFIED: &str = "anchor.verified";
    /// Searches falling back to a best-effort rule.
    pub const ANCHOR_FALLBACKS: &str = "anchor.fallbacks";

    /// Provenance records collected (gauge; set from the sink's totals so
    /// repeated runs against one registry stay idempotent).
    pub const PROVENANCE_RECORDS: &str = "provenance.records";
    /// Σ matched itemsets over all provenance records (gauge).
    pub const PROVENANCE_MATCHED_ITEMSETS: &str = "provenance.matched_itemsets";
    /// Σ per-tuple store misses (gauge).
    pub const PROVENANCE_STORE_MISSES: &str = "provenance.store_misses";
    /// Σ materialized samples available to explained tuples (gauge).
    pub const PROVENANCE_SAMPLES_AVAILABLE: &str = "provenance.samples_available";
    /// Σ samples served from the store (gauge).
    pub const PROVENANCE_SAMPLES_REUSED: &str = "provenance.samples_reused";
    /// Σ samples generated fresh (gauge).
    pub const PROVENANCE_SAMPLES_FRESH: &str = "provenance.samples_fresh";
    /// Σ classifier invocations attributed to explained tuples (gauge).
    pub const PROVENANCE_INVOCATIONS: &str = "provenance.invocations";
    /// Σ Anchor shard-cache hits attributed to tuples (gauge).
    pub const PROVENANCE_CACHE_HITS: &str = "provenance.cache_hits";
    /// Σ Anchor shard-cache misses attributed to tuples (gauge).
    pub const PROVENANCE_CACHE_MISSES: &str = "provenance.cache_misses";
    /// Records discarded by the bounded sink (gauge).
    pub const PROVENANCE_DROPPED: &str = "provenance.dropped";
    /// Records flagged degraded (gauge).
    pub const PROVENANCE_DEGRADED: &str = "provenance.degraded";

    /// Retry attempts performed by the resilient classifier boundary.
    pub const RESILIENCE_RETRIES: &str = "resilience.retries";
    /// Transient classifier errors observed (retried or not).
    pub const RESILIENCE_TRANSIENT_ERRORS: &str = "resilience.transient_errors";
    /// Per-call deadline overruns observed.
    pub const RESILIENCE_TIMEOUTS: &str = "resilience.timeouts";
    /// Non-probability outputs sanitized before surrogate fitting.
    pub const RESILIENCE_INVALID_PROBA: &str = "resilience.invalid_proba";
    /// Calls that exhausted the retry budget or failed fatally.
    pub const RESILIENCE_GIVEUPS: &str = "resilience.giveups";
    /// Circuit-breaker trips.
    pub const RESILIENCE_BREAKER_OPENS: &str = "resilience.breaker_opens";
    /// Calls short-circuited by an open breaker.
    pub const RESILIENCE_BREAKER_SHORT_CIRCUITS: &str = "resilience.breaker_short_circuits";
    /// Unwinds caught and contained by any driver (per-tuple quarantine,
    /// per-itemset materialization isolation, refresh isolation).
    pub const RESILIENCE_PANICS_ISOLATED: &str = "resilience.panics_isolated";
    /// Tuples quarantined by a batch (equals the `BatchReport` failure
    /// count of the run).
    pub const RESILIENCE_TUPLES_FAILED: &str = "resilience.tuples_failed";
    /// Tuples explained in degraded mode (equals the `BatchReport`
    /// degraded count of the run).
    pub const RESILIENCE_TUPLES_DEGRADED: &str = "resilience.tuples_degraded";

    /// Explain requests admitted by the serve front end.
    pub const SERVE_REQUESTS: &str = "serve.requests";
    /// Micro-batches flushed by the batcher thread.
    pub const SERVE_BATCHES: &str = "serve.batches";
    /// Requests rejected with a 429-style frame because the admission
    /// queue was full.
    pub const SERVE_REJECTED_OVERLOAD: &str = "serve.rejected_overload";
    /// Frames rejected with a 400-style frame (bad JSON, unknown method,
    /// wrong arity, out-of-range row).
    pub const SERVE_REJECTED_MALFORMED: &str = "serve.rejected_malformed";
    /// Requests rejected with a 503-style frame during shutdown drain.
    pub const SERVE_REJECTED_SHUTDOWN: &str = "serve.rejected_shutdown";
    /// Admin `shutdown` frames refused with a 403 frame because the
    /// peer is not loopback and remote shutdown is not enabled.
    pub const SERVE_REJECTED_FORBIDDEN: &str = "serve.rejected_forbidden";
    /// Requests whose deadline expired while queued (408-style frame).
    pub const SERVE_DEADLINE_EXPIRED: &str = "serve.deadline_expired";
    /// Requests answered with a 422-style frame because the tuple was
    /// quarantined by the resilience boundary.
    pub const SERVE_QUARANTINED: &str = "serve.quarantined";
    /// Connections accepted over the lifetime of the server.
    pub const SERVE_CONNECTIONS: &str = "serve.connections";
    /// Warm-store refresh rounds triggered by the serve batcher.
    pub const SERVE_REFRESHES: &str = "serve.refreshes";
    /// Requests waiting in the admission queue right now (gauge).
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Requests drained (still answered) after shutdown began (gauge).
    pub const SERVE_DRAINED: &str = "serve.drained";
    /// Micro-batch size distribution (unitless value histogram: one
    /// sample per flush, value = number of requests in the batch).
    pub const SERVE_BATCH_SIZE: &str = "serve.batch_size";
    /// Time a request spent in the admission queue before its batch was
    /// flushed (histogram, ns).
    pub const SERVE_QUEUE_WAIT: &str = "serve.queue_wait";
    /// End-to-end per-request latency, admission to response write
    /// (histogram, ns).
    pub const SERVE_REQUEST_LATENCY: &str = "serve.request_latency";
    /// Admin `metrics`/`stats` frames answered (scrapes of the live
    /// observability plane; never counted as explain traffic).
    pub const SERVE_SCRAPES: &str = "serve.scrapes";
    /// Monitor-thread ticks completed (each tick samples gauges and
    /// feeds the windowed aggregator).
    pub const SERVE_MONITOR_TICKS: &str = "serve.monitor_ticks";
    /// Reader threads currently attached to live client connections
    /// (gauge, sampled by the monitor from the server's atomic).
    pub const SERVE_LIVE_CONNECTIONS: &str = "serve.live_connections";
    /// Requests currently being explained by the batcher (gauge: batch
    /// size while a flush is in flight, 0 between flushes).
    pub const SERVE_BATCH_INFLIGHT: &str = "serve.batch_inflight";
    /// Itemset entries resident in the warm perturbation store (gauge,
    /// sampled by the monitor each tick).
    pub const SERVE_WARM_ENTRIES: &str = "serve.warm_entries";
    /// Bytes resident in the warm perturbation store (gauge, sampled by
    /// the monitor each tick).
    pub const SERVE_WARM_BYTES: &str = "serve.warm_bytes";

    /// Admin `trace` frames answered (trace fetches from the tail-sampled
    /// store; counted apart from `serve.scrapes` so scrape-rate
    /// assertions stay undisturbed).
    pub const SERVE_TRACE_FETCHES: &str = "serve.trace_fetches";
    /// Request traces currently retained in the tail-sampled store
    /// (gauge, sampled by the monitor each tick).
    pub const TRACE_RETAINED: &str = "trace.retained";
    /// Request traces not retained by the tail-sampling policy (gauge,
    /// monotone within one process; sampled by the monitor).
    pub const TRACE_DROPPED: &str = "trace.dropped";
    /// Retained traces evicted by the ring bound (gauge, sampled by the
    /// monitor each tick).
    pub const TRACE_EVICTED: &str = "trace.evicted";
    /// Counter regressions detected by the windowed aggregator — a
    /// persistent scraper watched the process restart (counter,
    /// published by the monitor from the aggregator's running total).
    pub const OBS_COUNTER_RESETS: &str = "obs.counter_resets";

    /// Warm-state snapshots written successfully (periodic + on-demand).
    pub const PERSIST_SNAPSHOTS_TAKEN: &str = "persist.snapshots_taken";
    /// On-demand snapshot requests (admin `snapshot` frames + SIGUSR1).
    pub const PERSIST_SNAPSHOTS_REQUESTED: &str = "persist.snapshots_requested";
    /// Snapshot attempts that failed (I/O errors; the last good snapshot
    /// on disk is untouched thanks to the atomic write path).
    pub const PERSIST_SNAPSHOTS_FAILED: &str = "persist.snapshots_failed";
    /// Size of the most recently written snapshot (gauge, bytes).
    pub const PERSIST_SNAPSHOT_BYTES: &str = "persist.snapshot_bytes";
    /// Warm-state hydrations that passed full validation.
    pub const PERSIST_LOADS_OK: &str = "persist.loads_ok";
    /// Hydration attempts rejected by validation (bad magic, stale
    /// version, fingerprint mismatch, truncation, CRC failure, structural
    /// corruption) — each falls back to a cold start.
    pub const PERSIST_LOAD_REJECTED: &str = "persist.load_rejected";

    /// Tenants registered with the serve cluster (gauge).
    pub const TENANCY_TENANTS: &str = "tenancy.tenants";
    /// Tenants currently holding a warm repository (gauge, sampled by
    /// the monitor each tick).
    pub const TENANCY_WARM_TENANTS: &str = "tenancy.warm_tenants";
    /// Bytes resident across every warm tenant repository (gauge).
    pub const TENANCY_WARM_BYTES: &str = "tenancy.warm_bytes";
    /// The cluster's global warm-memory budget (gauge, bytes; 0 when
    /// unbounded).
    pub const TENANCY_BUDGET_BYTES: &str = "tenancy.budget_bytes";
    /// Tenant repositories materialized lazily on first request (every
    /// cold start, hydrated or not).
    pub const TENANCY_COLD_STARTS: &str = "tenancy.cold_starts";
    /// Cold starts served classifier-free from a per-tenant snapshot (a
    /// subset of `tenancy.cold_starts`).
    pub const TENANCY_HYDRATIONS: &str = "tenancy.hydrations";
    /// Tenant repositories retired (idle keepalive expiry or memory
    /// budget pressure), each with an at-evict snapshot when the tenant
    /// has a snapshot path.
    pub const TENANCY_EVICTIONS: &str = "tenancy.evictions";
    /// Explain requests rejected with a 429-style frame because the
    /// tenant was at its in-flight admission quota.
    pub const TENANCY_QUOTA_REJECTIONS: &str = "tenancy.quota_rejections";
    /// Explain requests naming a tenant the manifest does not know
    /// (answered with a 404-style frame).
    pub const TENANCY_UNKNOWN_TENANT: &str = "tenancy.unknown_tenant";
    /// Wall time of one lazy tenant materialization (histogram, ns;
    /// hydrated and cold-primed starts both record).
    pub const TENANCY_COLD_START_LATENCY: &str = "tenancy.cold_start_latency";

    /// Name of a per-shard Anchor cache counter, `anchor.shardNN.{kind}`
    /// with `kind` one of `hits`, `misses`, `contention`.
    pub fn anchor_shard(idx: usize, kind: &str) -> String {
        format!("anchor.shard{idx:02}.{kind}")
    }

    /// Name of a per-tenant metric, `tenant.<name>.<kind>` — the
    /// dynamic-name idiom [`anchor_shard`] established, applied to the
    /// serve cluster's tenants. `kind` is one of `requests`,
    /// `cold_starts`, `hydrations`, `evictions`, `quota_rejections`,
    /// `snapshots_taken`, `loads_ok`, `load_rejected`, `warm_entries`,
    /// `warm_bytes`, `state` (0 cold, 1 warming, 2 warm, 3 evicted).
    /// Only recorded when the cluster is multi-tenant, so single-tenant
    /// metric dumps keep their PR 5–9 schema exactly.
    pub fn tenant_metric(tenant: &str, kind: &str) -> String {
        format!("tenant.{tenant}.{kind}")
    }
}

/// Pre-registers the full metric schema in `reg`, so a snapshot taken
/// after any run contains every key (with zero values for phases that
/// never fired — e.g. `span.surrogate.fit` stays zero on an Anchor run).
/// Idempotent; a disabled registry is left untouched.
pub fn register_standard(reg: &MetricsRegistry) {
    if !reg.is_enabled() {
        return;
    }
    for span in [
        names::SPAN_FIM_MINE,
        names::SPAN_MATERIALIZE_FILL,
        names::SPAN_PERTURB_GENERATE,
        names::SPAN_RETRIEVE_MATCH,
        names::SPAN_SURROGATE_FIT,
        names::SPAN_ANCHOR_SEARCH,
    ] {
        reg.span_histogram(span);
    }
    for counter in [
        names::STORE_LOOKUPS,
        names::STORE_HITS,
        names::STORE_MISSES,
        names::STORE_EMPTY_LOOKUPS,
        names::STORE_SAMPLES_REUSED,
        names::STORE_EVICTIONS,
        names::STREAMING_REFRESH_ROUNDS,
        names::STREAMING_EARLY_EVICTIONS,
        names::STREAMING_CARRIED_SAMPLES,
        names::STREAMING_REFRESH_FAILURES,
        names::CLASSIFIER_INVOCATIONS,
        names::CLASSIFIER_BATCH_CALLS,
        names::ANCHOR_LEVELS,
        names::ANCHOR_CANDIDATES,
        names::ANCHOR_VERIFIED,
        names::ANCHOR_FALLBACKS,
        names::RESILIENCE_RETRIES,
        names::RESILIENCE_TRANSIENT_ERRORS,
        names::RESILIENCE_TIMEOUTS,
        names::RESILIENCE_INVALID_PROBA,
        names::RESILIENCE_GIVEUPS,
        names::RESILIENCE_BREAKER_OPENS,
        names::RESILIENCE_BREAKER_SHORT_CIRCUITS,
        names::RESILIENCE_PANICS_ISOLATED,
        names::RESILIENCE_TUPLES_FAILED,
        names::RESILIENCE_TUPLES_DEGRADED,
        names::SERVE_REQUESTS,
        names::SERVE_BATCHES,
        names::SERVE_REJECTED_OVERLOAD,
        names::SERVE_REJECTED_MALFORMED,
        names::SERVE_REJECTED_SHUTDOWN,
        names::SERVE_REJECTED_FORBIDDEN,
        names::SERVE_DEADLINE_EXPIRED,
        names::SERVE_QUARANTINED,
        names::SERVE_CONNECTIONS,
        names::SERVE_REFRESHES,
        names::SERVE_SCRAPES,
        names::SERVE_MONITOR_TICKS,
        names::SERVE_TRACE_FETCHES,
        names::OBS_COUNTER_RESETS,
        names::PERSIST_SNAPSHOTS_TAKEN,
        names::PERSIST_SNAPSHOTS_REQUESTED,
        names::PERSIST_SNAPSHOTS_FAILED,
        names::PERSIST_LOADS_OK,
        names::PERSIST_LOAD_REJECTED,
        names::TENANCY_COLD_STARTS,
        names::TENANCY_HYDRATIONS,
        names::TENANCY_EVICTIONS,
        names::TENANCY_QUOTA_REJECTIONS,
        names::TENANCY_UNKNOWN_TENANT,
    ] {
        reg.counter(counter);
    }
    for gauge in [
        names::STORE_RESIDENT_BYTES,
        names::STORE_PEAK_BYTES,
        names::SERVE_QUEUE_DEPTH,
        names::SERVE_DRAINED,
        names::SERVE_LIVE_CONNECTIONS,
        names::SERVE_BATCH_INFLIGHT,
        names::SERVE_WARM_ENTRIES,
        names::SERVE_WARM_BYTES,
        names::TRACE_RETAINED,
        names::TRACE_DROPPED,
        names::TRACE_EVICTED,
        names::PERSIST_SNAPSHOT_BYTES,
        names::TENANCY_TENANTS,
        names::TENANCY_WARM_TENANTS,
        names::TENANCY_WARM_BYTES,
        names::TENANCY_BUDGET_BYTES,
        names::PROVENANCE_RECORDS,
        names::PROVENANCE_MATCHED_ITEMSETS,
        names::PROVENANCE_STORE_MISSES,
        names::PROVENANCE_SAMPLES_AVAILABLE,
        names::PROVENANCE_SAMPLES_REUSED,
        names::PROVENANCE_SAMPLES_FRESH,
        names::PROVENANCE_INVOCATIONS,
        names::PROVENANCE_CACHE_HITS,
        names::PROVENANCE_CACHE_MISSES,
        names::PROVENANCE_DROPPED,
        names::PROVENANCE_DEGRADED,
    ] {
        reg.gauge(gauge);
    }
    for hist in [
        names::CLASSIFIER_PREDICT,
        names::CLASSIFIER_PREDICT_BATCH,
        names::SERVE_QUEUE_WAIT,
        names::SERVE_REQUEST_LATENCY,
        names::TENANCY_COLD_START_LATENCY,
    ] {
        reg.histogram(hist);
    }
    reg.value_histogram(names::SERVE_BATCH_SIZE);
    for shard in 0..N_SHARDS {
        for kind in ["hits", "misses", "contention"] {
            reg.counter(&names::anchor_shard(shard, kind));
        }
    }
}

/// Folds the attached provenance sink's totals into the registry as
/// `provenance.*` gauges (set, not added, so re-folding is idempotent).
/// No-op when no sink is attached. Called by [`crate::run_with_obs`] after
/// every instrumented run, so `--metrics-out` summarizes the lineage next
/// to the aggregate counters it must reconcile with.
pub fn fold_provenance(reg: &MetricsRegistry) {
    let Some(sink) = reg.provenance_sink() else {
        return;
    };
    let t = sink.totals();
    reg.gauge(names::PROVENANCE_RECORDS).set(t.records);
    reg.gauge(names::PROVENANCE_MATCHED_ITEMSETS)
        .set(t.matched_itemsets);
    reg.gauge(names::PROVENANCE_STORE_MISSES)
        .set(t.store_misses);
    reg.gauge(names::PROVENANCE_SAMPLES_AVAILABLE)
        .set(t.samples_available);
    reg.gauge(names::PROVENANCE_SAMPLES_REUSED)
        .set(t.samples_reused);
    reg.gauge(names::PROVENANCE_SAMPLES_FRESH)
        .set(t.samples_fresh);
    reg.gauge(names::PROVENANCE_INVOCATIONS).set(t.invocations);
    reg.gauge(names::PROVENANCE_CACHE_HITS).set(t.cache_hits);
    reg.gauge(names::PROVENANCE_CACHE_MISSES)
        .set(t.cache_misses);
    reg.gauge(names::PROVENANCE_DROPPED).set(sink.dropped());
    reg.gauge(names::PROVENANCE_DEGRADED).set(t.degraded);
}

/// The per-driver provenance context: the attached sink (if any) plus the
/// interned method/explainer names, resolved once per run so the per-tuple
/// hot path pays one `Option` check when collection is disabled.
#[derive(Clone)]
pub(crate) struct ProvenanceCtx {
    sink: Option<Arc<ProvenanceSink>>,
    method: Arc<str>,
    explainer: Arc<str>,
    /// Serving request id stamped on every record this context emits
    /// (`None` for the offline drivers).
    request: Option<u64>,
    /// Trace id stamped on every record this context emits, joining the
    /// lineage against the request's retained [`RequestTrace`] (`None`
    /// for the offline drivers and untraced serve requests).
    trace: Option<u64>,
    /// Tenant name stamped on every record this context emits (`None`
    /// for the offline drivers and single-tenant serving, so existing
    /// provenance schemas are unchanged outside a multi-tenant cluster).
    tenant: Option<Arc<str>>,
}

impl ProvenanceCtx {
    /// Resolves the registry's sink for one `(method, explainer)` run.
    pub(crate) fn new(reg: &MetricsRegistry, method: &str, explainer: &str) -> ProvenanceCtx {
        ProvenanceCtx {
            sink: reg.provenance_sink(),
            method: Arc::from(method),
            explainer: Arc::from(explainer),
            request: None,
            trace: None,
            tenant: None,
        }
    }

    /// A copy of this context that stamps `tenant` on its records — the
    /// multi-tenant serve cluster labels each engine's lineage with the
    /// tenant it belongs to.
    pub(crate) fn with_tenant(&self, tenant: Option<Arc<str>>) -> ProvenanceCtx {
        ProvenanceCtx {
            tenant,
            ..self.clone()
        }
    }

    /// A copy of this context that stamps `request` (and, when present,
    /// `trace`) on its records — the serve engine tags each tuple with
    /// the request that asked for it.
    pub(crate) fn tagged(&self, request: u64, trace: Option<u64>) -> ProvenanceCtx {
        ProvenanceCtx {
            request: Some(request),
            trace,
            ..self.clone()
        }
    }

    /// Starts the per-tuple wall clock — `None` (free) when disabled.
    #[inline]
    pub(crate) fn start(&self) -> Option<Instant> {
        self.sink.is_some().then(Instant::now)
    }

    /// Emits one tuple's record. `reused`/`fresh`/`invocations` come from
    /// the explainer's counted variant, `lookup` from the store's stats
    /// lookup, `cache` is the Anchor sampler's per-tuple (hits, misses),
    /// `degraded` whether the resilient boundary absorbed incidents while
    /// explaining this tuple.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &self,
        tuple: u32,
        epoch: u64,
        matched: &[u32],
        lookup: LookupStats,
        reused: u64,
        fresh: u64,
        invocations: u64,
        cache: (u64, u64),
        degraded: bool,
        t0: Option<Instant>,
    ) {
        let Some(sink) = &self.sink else {
            return;
        };
        sink.push(ProvenanceRecord {
            tuple,
            method: Arc::clone(&self.method),
            explainer: Arc::clone(&self.explainer),
            epoch,
            thread: current_thread_id(),
            matched_itemsets: matched.to_vec(),
            store_misses: lookup.misses,
            samples_available: lookup.samples_available,
            samples_reused: reused,
            samples_fresh: fresh,
            tau: reused + fresh,
            invocations,
            cache_hits: cache.0,
            cache_misses: cache.1,
            wall_ns: t0.map_or(0, |t| {
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }),
            degraded,
            request: self.request,
            trace_id: self.trace,
            tenant: self.tenant.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_ctx_is_free_without_a_sink_and_records_with_one() {
        let reg = MetricsRegistry::new();
        let ctx = ProvenanceCtx::new(&reg, "Shahin-Batch", "LIME");
        assert!(ctx.start().is_none());
        ctx.record(
            0,
            0,
            &[],
            LookupStats::default(),
            1,
            2,
            3,
            (0, 0),
            false,
            None,
        );

        let sink = Arc::new(ProvenanceSink::new());
        reg.attach_provenance_sink(Arc::clone(&sink));
        let ctx = ProvenanceCtx::new(&reg, "Shahin-Batch", "LIME");
        let t0 = ctx.start();
        assert!(t0.is_some());
        let lookup = LookupStats {
            hits: 2,
            misses: 1,
            samples_available: 40,
        };
        ctx.record(7, 0, &[3, 9], lookup, 40, 59, 60, (0, 0), true, t0);
        let recs = sink.records();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.tuple, 7);
        assert_eq!(&*r.method, "Shahin-Batch");
        assert_eq!(&*r.explainer, "LIME");
        assert_eq!(r.matched_itemsets, vec![3, 9]);
        assert_eq!(r.samples_reused + r.samples_fresh, r.tau);
        assert_eq!(r.store_misses, 1);

        fold_provenance(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge(names::PROVENANCE_RECORDS), 1);
        assert_eq!(snap.gauge(names::PROVENANCE_SAMPLES_REUSED), 40);
        assert_eq!(snap.gauge(names::PROVENANCE_INVOCATIONS), 60);
        assert_eq!(snap.gauge(names::PROVENANCE_DEGRADED), 1);
        // Re-folding is idempotent.
        fold_provenance(&reg);
        assert_eq!(reg.snapshot().gauge(names::PROVENANCE_RECORDS), 1);
    }

    #[test]
    fn standard_schema_is_complete_and_idempotent() {
        let reg = MetricsRegistry::new();
        register_standard(&reg);
        register_standard(&reg);
        let snap = reg.snapshot();
        for key in [
            names::STORE_HITS,
            names::STORE_MISSES,
            names::STREAMING_REFRESH_ROUNDS,
            names::STREAMING_REFRESH_FAILURES,
            names::CLASSIFIER_INVOCATIONS,
            names::RESILIENCE_RETRIES,
            names::RESILIENCE_INVALID_PROBA,
            names::RESILIENCE_PANICS_ISOLATED,
            names::RESILIENCE_TUPLES_FAILED,
            names::RESILIENCE_TUPLES_DEGRADED,
            names::TENANCY_COLD_STARTS,
            names::TENANCY_EVICTIONS,
            names::TENANCY_QUOTA_REJECTIONS,
            &names::anchor_shard(0, "hits"),
            &names::anchor_shard(N_SHARDS - 1, "contention"),
        ] {
            assert!(snap.counters.contains_key(key), "missing counter {key}");
        }
        for key in ["span.fim.mine", "span.surrogate.fit", "span.anchor.search"] {
            assert!(snap.histograms.contains_key(key), "missing span {key}");
        }
        assert!(snap.gauges.contains_key(names::STORE_RESIDENT_BYTES));
        assert!(snap.gauges.contains_key(names::PROVENANCE_RECORDS));
        assert!(snap.gauges.contains_key(names::PROVENANCE_DROPPED));
        assert!(snap.histograms.contains_key(names::CLASSIFIER_PREDICT));
    }

    #[test]
    fn disabled_registry_stays_empty() {
        let reg = MetricsRegistry::disabled();
        register_standard(&reg);
        assert!(reg.snapshot().counters.is_empty());
    }
}
