//! Measurement types shared by every driver and experiment.

use std::time::Duration;

/// Where Shahin's bookkeeping time went (Figure 5 reports this as a
/// percentage of total runtime).
#[derive(Clone, Copy, Debug, Default)]
pub struct OverheadBreakdown {
    /// Frequent itemset mining over the batch sample.
    pub fim: Duration,
    /// Generating + labeling the materialized perturbations.
    ///
    /// Classifier time inside materialization is *useful* work (it replaces
    /// per-tuple invocations), so it is reported separately from the pure
    /// bookkeeping below.
    pub materialization: Duration,
    /// Retrieving matching perturbations per tuple.
    pub retrieval: Duration,
}

impl OverheadBreakdown {
    /// Pure bookkeeping overhead: mining + retrieval (materialization is
    /// amortized classifier work, the paper's accounting).
    pub fn bookkeeping(&self) -> Duration {
        self.fim + self.retrieval
    }
}

/// Metrics of one batch run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunMetrics {
    /// Classifier invocations consumed by the whole run (including
    /// materialization).
    pub invocations: u64,
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Overhead breakdown (zero for baselines).
    pub overhead: OverheadBreakdown,
    /// Peak bytes resident in the perturbation store.
    pub store_bytes: usize,
    /// Number of frequent itemsets materialized.
    pub n_frequent: usize,
    /// Number of tuples explained.
    pub n_tuples: usize,
}

impl RunMetrics {
    /// Average wall-clock seconds per explained tuple (Table 1's metric).
    pub fn per_tuple_secs(&self) -> f64 {
        if self.n_tuples == 0 {
            0.0
        } else {
            self.wall.as_secs_f64() / self.n_tuples as f64
        }
    }

    /// Average classifier invocations per tuple.
    pub fn invocations_per_tuple(&self) -> f64 {
        if self.n_tuples == 0 {
            0.0
        } else {
            self.invocations as f64 / self.n_tuples as f64
        }
    }

    /// Bookkeeping overhead as a fraction of wall time (Figure 5).
    pub fn overhead_fraction(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.overhead.bookkeeping().as_secs_f64() / self.wall.as_secs_f64()
        }
    }
}

/// The failure taxonomy of a quarantined tuple (mirrors
/// `shahin_model::PredictError`, plus `Panic` for unwinds that carry no
/// typed error).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A retryable transient failure survived the retry budget.
    Transient,
    /// A per-call deadline overran past the retry budget.
    Timeout,
    /// The model output was not a probability and could not be sanitized.
    InvalidOutput,
    /// An unrecoverable classifier failure (breaker open, exhausted
    /// budget, model panic converted by the resilient wrapper).
    Fatal,
    /// An unclassified panic unwound out of the tuple's explanation.
    Panic,
}

impl FailureKind {
    /// Stable lowercase name (used in reports and CLI summaries).
    pub fn name(&self) -> &'static str {
        match self {
            FailureKind::Transient => "transient",
            FailureKind::Timeout => "timeout",
            FailureKind::InvalidOutput => "invalid_output",
            FailureKind::Fatal => "fatal",
            FailureKind::Panic => "panic",
        }
    }
}

/// One quarantined tuple: the batch finished without it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TupleFailure {
    /// Batch row index of the tuple.
    pub row: u32,
    /// Failure taxonomy bucket.
    pub kind: FailureKind,
    /// Human-readable cause (panic message or error display).
    pub message: String,
}

/// Degraded-mode outcome of a batch: which tuples failed (quarantined, no
/// explanation produced) and which degraded (explained, but the resilient
/// boundary absorbed retries or sanitized garbage along the way).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Quarantined tuples, in row order.
    pub failures: Vec<TupleFailure>,
    /// Rows explained in degraded mode, in row order.
    pub degraded: Vec<u32>,
}

impl BatchReport {
    /// Whether every tuple was explained cleanly.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.degraded.is_empty()
    }

    /// One-line summary, e.g. `"2 failed (1 panic, 1 fatal), 3 degraded"`.
    pub fn summary(&self) -> String {
        if self.failures.is_empty() && self.degraded.is_empty() {
            return "all tuples explained cleanly".into();
        }
        let mut by_kind: Vec<(&'static str, usize)> = Vec::new();
        for f in &self.failures {
            match by_kind.iter_mut().find(|(k, _)| *k == f.kind.name()) {
                Some((_, n)) => *n += 1,
                None => by_kind.push((f.kind.name(), 1)),
            }
        }
        let kinds: Vec<String> = by_kind.iter().map(|(k, n)| format!("{n} {k}")).collect();
        let failed = if self.failures.is_empty() {
            "0 failed".to_string()
        } else {
            format!("{} failed ({})", self.failures.len(), kinds.join(", "))
        };
        format!("{failed}, {} degraded", self.degraded.len())
    }
}

/// Explanations plus the metrics of producing them.
#[derive(Clone, Debug)]
pub struct BatchResult<T> {
    /// One explanation per *surviving* batch tuple, in batch order
    /// (quarantined rows are absent; see [`BatchResult::report`]).
    pub explanations: Vec<T>,
    /// Run metrics.
    pub metrics: RunMetrics,
    /// Failed/degraded tuple accounting. Empty (`is_clean`) for every
    /// run whose classifier never misbehaves.
    pub report: BatchReport,
}

/// Speedup of `ours` relative to `baseline` by wall-clock time.
pub fn speedup_wall(baseline: &RunMetrics, ours: &RunMetrics) -> f64 {
    baseline.wall.as_secs_f64() / ours.wall.as_secs_f64().max(1e-12)
}

/// Speedup of `ours` relative to `baseline` by classifier invocations (the
/// deterministic, machine-independent variant of the paper's metric).
pub fn speedup_invocations(baseline: &RunMetrics, ours: &RunMetrics) -> f64 {
    baseline.invocations as f64 / (ours.invocations as f64).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tuple_and_overhead_fractions() {
        let m = RunMetrics {
            invocations: 1000,
            wall: Duration::from_secs(10),
            overhead: OverheadBreakdown {
                fim: Duration::from_millis(200),
                materialization: Duration::from_secs(2),
                retrieval: Duration::from_millis(300),
            },
            store_bytes: 0,
            n_frequent: 5,
            n_tuples: 100,
        };
        assert!((m.per_tuple_secs() - 0.1).abs() < 1e-12);
        assert!((m.invocations_per_tuple() - 10.0).abs() < 1e-12);
        assert!((m.overhead_fraction() - 0.05).abs() < 1e-12);
        assert_eq!(m.overhead.bookkeeping(), Duration::from_millis(500));
    }

    #[test]
    fn speedups() {
        let base = RunMetrics {
            invocations: 1000,
            wall: Duration::from_secs(20),
            n_tuples: 10,
            ..Default::default()
        };
        let ours = RunMetrics {
            invocations: 100,
            wall: Duration::from_secs(2),
            n_tuples: 10,
            ..Default::default()
        };
        assert!((speedup_wall(&base, &ours) - 10.0).abs() < 1e-9);
        assert!((speedup_invocations(&base, &ours) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn batch_report_summary_counts_by_kind() {
        let clean = BatchReport::default();
        assert!(clean.is_clean());
        assert_eq!(clean.summary(), "all tuples explained cleanly");

        let report = BatchReport {
            failures: vec![
                TupleFailure {
                    row: 3,
                    kind: FailureKind::Panic,
                    message: "boom".into(),
                },
                TupleFailure {
                    row: 7,
                    kind: FailureKind::Fatal,
                    message: "budget".into(),
                },
                TupleFailure {
                    row: 9,
                    kind: FailureKind::Panic,
                    message: "boom again".into(),
                },
            ],
            degraded: vec![1, 4],
        };
        assert!(!report.is_clean());
        assert_eq!(report.summary(), "3 failed (2 panic, 1 fatal), 2 degraded");
    }

    #[test]
    fn zero_division_is_safe() {
        let m = RunMetrics::default();
        assert_eq!(m.per_tuple_secs(), 0.0);
        assert_eq!(m.invocations_per_tuple(), 0.0);
        assert_eq!(m.overhead_fraction(), 0.0);
        assert!(!m.per_tuple_secs().is_nan());
        assert!(!m.invocations_per_tuple().is_nan());
        assert!(!m.overhead_fraction().is_nan());
        // Non-zero wall with zero tuples (an empty batch still spends
        // preparation time) must also divide cleanly.
        let m = RunMetrics {
            wall: Duration::from_secs(1),
            invocations: 10,
            n_tuples: 0,
            ..Default::default()
        };
        assert_eq!(m.per_tuple_secs(), 0.0);
        assert_eq!(m.invocations_per_tuple(), 0.0);
        assert!(!m.per_tuple_secs().is_nan());
        assert!(m.per_tuple_secs().is_finite());
    }
}
