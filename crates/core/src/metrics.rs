//! Measurement types shared by every driver and experiment.

use std::time::Duration;

/// Where Shahin's bookkeeping time went (Figure 5 reports this as a
/// percentage of total runtime).
#[derive(Clone, Copy, Debug, Default)]
pub struct OverheadBreakdown {
    /// Frequent itemset mining over the batch sample.
    pub fim: Duration,
    /// Generating + labeling the materialized perturbations.
    ///
    /// Classifier time inside materialization is *useful* work (it replaces
    /// per-tuple invocations), so it is reported separately from the pure
    /// bookkeeping below.
    pub materialization: Duration,
    /// Retrieving matching perturbations per tuple.
    pub retrieval: Duration,
}

impl OverheadBreakdown {
    /// Pure bookkeeping overhead: mining + retrieval (materialization is
    /// amortized classifier work, the paper's accounting).
    pub fn bookkeeping(&self) -> Duration {
        self.fim + self.retrieval
    }
}

/// Metrics of one batch run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunMetrics {
    /// Classifier invocations consumed by the whole run (including
    /// materialization).
    pub invocations: u64,
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Overhead breakdown (zero for baselines).
    pub overhead: OverheadBreakdown,
    /// Peak bytes resident in the perturbation store.
    pub store_bytes: usize,
    /// Number of frequent itemsets materialized.
    pub n_frequent: usize,
    /// Number of tuples explained.
    pub n_tuples: usize,
}

impl RunMetrics {
    /// Average wall-clock seconds per explained tuple (Table 1's metric).
    pub fn per_tuple_secs(&self) -> f64 {
        if self.n_tuples == 0 {
            0.0
        } else {
            self.wall.as_secs_f64() / self.n_tuples as f64
        }
    }

    /// Average classifier invocations per tuple.
    pub fn invocations_per_tuple(&self) -> f64 {
        if self.n_tuples == 0 {
            0.0
        } else {
            self.invocations as f64 / self.n_tuples as f64
        }
    }

    /// Bookkeeping overhead as a fraction of wall time (Figure 5).
    pub fn overhead_fraction(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.overhead.bookkeeping().as_secs_f64() / self.wall.as_secs_f64()
        }
    }
}

/// Explanations plus the metrics of producing them.
#[derive(Clone, Debug)]
pub struct BatchResult<T> {
    /// One explanation per batch tuple, in batch order.
    pub explanations: Vec<T>,
    /// Run metrics.
    pub metrics: RunMetrics,
}

/// Speedup of `ours` relative to `baseline` by wall-clock time.
pub fn speedup_wall(baseline: &RunMetrics, ours: &RunMetrics) -> f64 {
    baseline.wall.as_secs_f64() / ours.wall.as_secs_f64().max(1e-12)
}

/// Speedup of `ours` relative to `baseline` by classifier invocations (the
/// deterministic, machine-independent variant of the paper's metric).
pub fn speedup_invocations(baseline: &RunMetrics, ours: &RunMetrics) -> f64 {
    baseline.invocations as f64 / (ours.invocations as f64).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tuple_and_overhead_fractions() {
        let m = RunMetrics {
            invocations: 1000,
            wall: Duration::from_secs(10),
            overhead: OverheadBreakdown {
                fim: Duration::from_millis(200),
                materialization: Duration::from_secs(2),
                retrieval: Duration::from_millis(300),
            },
            store_bytes: 0,
            n_frequent: 5,
            n_tuples: 100,
        };
        assert!((m.per_tuple_secs() - 0.1).abs() < 1e-12);
        assert!((m.invocations_per_tuple() - 10.0).abs() < 1e-12);
        assert!((m.overhead_fraction() - 0.05).abs() < 1e-12);
        assert_eq!(m.overhead.bookkeeping(), Duration::from_millis(500));
    }

    #[test]
    fn speedups() {
        let base = RunMetrics {
            invocations: 1000,
            wall: Duration::from_secs(20),
            n_tuples: 10,
            ..Default::default()
        };
        let ours = RunMetrics {
            invocations: 100,
            wall: Duration::from_secs(2),
            n_tuples: 10,
            ..Default::default()
        };
        assert!((speedup_wall(&base, &ours) - 10.0).abs() < 1e-9);
        assert!((speedup_invocations(&base, &ours) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_is_safe() {
        let m = RunMetrics::default();
        assert_eq!(m.per_tuple_secs(), 0.0);
        assert_eq!(m.invocations_per_tuple(), 0.0);
        assert_eq!(m.overhead_fraction(), 0.0);
        assert!(!m.per_tuple_secs().is_nan());
        assert!(!m.invocations_per_tuple().is_nan());
        assert!(!m.overhead_fraction().is_nan());
        // Non-zero wall with zero tuples (an empty batch still spends
        // preparation time) must also divide cleanly.
        let m = RunMetrics {
            wall: Duration::from_secs(1),
            invocations: 10,
            n_tuples: 0,
            ..Default::default()
        };
        assert_eq!(m.per_tuple_secs(), 0.0);
        assert_eq!(m.invocations_per_tuple(), 0.0);
        assert!(!m.per_tuple_secs().is_nan());
        assert!(m.per_tuple_secs().is_finite());
    }
}
