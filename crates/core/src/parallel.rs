//! Multi-core batch explanation.
//!
//! The paper disables Shahin's multiprocessing to show the speedup is
//! algorithmic ("By default, Shahin runs only on a single core of a single
//! machine", §4.1) — but a production deployment would use every core.
//! After the (sequential) preparation phase, tuples are embarrassingly
//! parallel: the materialized store is only *read*, per-tuple RNG streams
//! are derived from the run seed, and the explainers are pure functions of
//! their inputs. This module fans the per-tuple work out over scoped
//! threads and is deterministic: it produces exactly the explanations the
//! single-threaded driver does (tested below).
//!
//! Anchor is deliberately not offered in parallel: its shared precision
//! cache is what makes Shahin fast there, and sharing it across threads
//! would either serialize on a lock or forfeit the reuse — the sequential
//! driver is the right tool.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin_explain::{ExplainContext, FeatureWeights, KernelShapExplainer, LimeExplainer};
use shahin_model::{Classifier, CountingClassifier};
use shahin_tabular::Dataset;

use crate::batch::ShahinBatch;
use crate::metrics::{BatchResult, OverheadBreakdown, RunMetrics};
use crate::runner::per_tuple_seed;
use crate::shap_source::StoreCoalitionSource;

/// Splits `0..n` into at most `n_threads` contiguous chunks.
fn chunks(n: usize, n_threads: usize) -> Vec<(usize, usize)> {
    let n_threads = n_threads.clamp(1, n.max(1));
    let size = n.div_ceil(n_threads);
    (0..n)
        .step_by(size.max(1))
        .map(|start| (start, (start + size).min(n)))
        .collect()
}

impl ShahinBatch {
    /// Algorithm 1 with the per-tuple phase spread over `n_threads`
    /// threads. Produces exactly the same explanations as
    /// [`ShahinBatch::explain_lime`] for the same seed.
    pub fn explain_lime_parallel<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        batch: &Dataset,
        lime: &LimeExplainer,
        n_threads: usize,
        seed: u64,
    ) -> BatchResult<FeatureWeights> {
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let prep = self.prepare(ctx, clf, batch, lime.params.n_samples, &mut rng);
        let store = &prep.store;

        let mut explanations: Vec<Option<FeatureWeights>> = vec![None; batch.n_rows()];
        std::thread::scope(|scope| {
            for ((start, end), slot_chunk) in chunks(batch.n_rows(), n_threads)
                .into_iter()
                .zip(explanations.chunks_mut(batch.n_rows().div_ceil(n_threads.max(1)).max(1)))
            {
                let table = &prep.table;
                scope.spawn(move || {
                    let mut scratch = Vec::new();
                    for (row, slot) in (start..end).zip(slot_chunk.iter_mut()) {
                        let mut tuple_rng =
                            StdRng::seed_from_u64(per_tuple_seed(seed, row));
                        let codes = table.row(row);
                        // Read-only matching: no LRU bookkeeping races.
                        let matched = store.matching_all(&codes, &mut scratch);
                        let pooled = matched
                            .iter()
                            .filter(|&&id| !store.samples(id).is_empty())
                            .flat_map(|&id| store.samples(id).iter());
                        let instance = batch.instance(row);
                        *slot = Some(lime.explain_with_reused(
                            ctx,
                            clf,
                            &instance,
                            pooled,
                            &mut tuple_rng,
                        ));
                    }
                });
            }
        });

        BatchResult {
            explanations: explanations
                .into_iter()
                .map(|e| e.expect("every row explained"))
                .collect(),
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                overhead: OverheadBreakdown {
                    fim: prep.fim_time,
                    materialization: prep.materialization_time,
                    retrieval: std::time::Duration::ZERO,
                },
                store_bytes: prep.store.peak_bytes(),
                n_frequent: prep.store.len(),
                n_tuples: batch.n_rows(),
            },
        }
    }

    /// Algorithm 3 with the per-tuple phase spread over `n_threads`
    /// threads; deterministic like the LIME variant.
    #[allow(clippy::too_many_arguments)]
    pub fn explain_shap_parallel<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        batch: &Dataset,
        shap: &KernelShapExplainer,
        base_samples: usize,
        n_threads: usize,
        seed: u64,
    ) -> BatchResult<FeatureWeights> {
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let prep = self.prepare(ctx, clf, batch, shap.params.n_samples, &mut rng);
        let base = shahin_explain::estimate_base_value(ctx, clf, base_samples, &mut rng);
        let store = &prep.store;

        let mut explanations: Vec<Option<FeatureWeights>> = vec![None; batch.n_rows()];
        std::thread::scope(|scope| {
            for ((start, end), slot_chunk) in chunks(batch.n_rows(), n_threads)
                .into_iter()
                .zip(explanations.chunks_mut(batch.n_rows().div_ceil(n_threads.max(1)).max(1)))
            {
                let table = &prep.table;
                scope.spawn(move || {
                    let mut scratch = Vec::new();
                    for (row, slot) in (start..end).zip(slot_chunk.iter_mut()) {
                        let mut tuple_rng =
                            StdRng::seed_from_u64(per_tuple_seed(seed, row));
                        let codes = table.row(row);
                        let matched: Vec<u32> = store
                            .matching_all(&codes, &mut scratch)
                            .into_iter()
                            .filter(|&id| !store.samples(id).is_empty())
                            .collect();
                        let pooled = crate::shap_source::pool_coalitions(
                            store,
                            &matched,
                            shap.params.n_samples / 2,
                        );
                        let mut source = StoreCoalitionSource::new(store, matched);
                        let instance = batch.instance(row);
                        *slot = Some(shap.explain_with(
                            ctx,
                            clf,
                            &instance,
                            base,
                            pooled,
                            &mut source,
                            &mut tuple_rng,
                        ));
                    }
                });
            }
        });

        BatchResult {
            explanations: explanations
                .into_iter()
                .map(|e| e.expect("every row explained"))
                .collect(),
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                overhead: OverheadBreakdown {
                    fim: prep.fim_time,
                    materialization: prep.materialization_time,
                    retrieval: std::time::Duration::ZERO,
                },
                store_bytes: prep.store.peak_bytes(),
                n_frequent: prep.store.len(),
                n_tuples: batch.n_rows(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatchConfig;
    use shahin_explain::{LimeParams, ShapParams};
    use shahin_model::MajorityClass;
    use shahin_tabular::{train_test_split, DatasetPreset};

    fn setup() -> (ExplainContext, CountingClassifier<MajorityClass>, Dataset) {
        let (data, labels) = DatasetPreset::Recidivism.spec(0.05).generate(3);
        let mut rng = StdRng::seed_from_u64(3);
        let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
        let ctx = ExplainContext::fit(&split.train, 300, &mut rng);
        let clf = CountingClassifier::new(MajorityClass::fit(&split.train_labels));
        let rows: Vec<usize> = (0..40.min(split.test.n_rows())).collect();
        (ctx, clf, split.test.select(&rows))
    }

    #[test]
    fn chunking_covers_all_rows() {
        assert_eq!(chunks(10, 3), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(chunks(2, 8), vec![(0, 1), (1, 2)]);
        assert_eq!(chunks(0, 4), Vec::<(usize, usize)>::new());
        assert_eq!(chunks(5, 1), vec![(0, 5)]);
    }

    #[test]
    fn parallel_lime_runs_and_counts() {
        let (ctx, clf, batch) = setup();
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 80,
            ..Default::default()
        });
        let shahin = ShahinBatch::new(BatchConfig::default());
        let r = shahin.explain_lime_parallel(&ctx, &clf, &batch, &lime, 4, 7);
        assert_eq!(r.explanations.len(), batch.n_rows());
        assert!(r.metrics.invocations > 0);
    }

    #[test]
    fn parallel_shap_matches_batch_structure() {
        let (ctx, clf, batch) = setup();
        let shap = KernelShapExplainer::new(ShapParams {
            n_samples: 48,
            ..Default::default()
        });
        let shahin = ShahinBatch::new(BatchConfig::default());
        let r = shahin.explain_shap_parallel(&ctx, &clf, &batch, &shap, 20, 4, 9);
        assert_eq!(r.explanations.len(), batch.n_rows());
        for e in &r.explanations {
            let total: f64 = e.weights.iter().sum();
            assert!((total - (e.local_prediction - e.intercept)).abs() < 1e-6);
        }
    }

    #[test]
    fn parallel_lime_is_deterministic_across_thread_counts() {
        let (ctx, clf, batch) = setup();
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 60,
            ..Default::default()
        });
        let shahin = ShahinBatch::new(BatchConfig::default());
        let a = shahin.explain_lime_parallel(&ctx, &clf, &batch, &lime, 1, 11);
        let b = shahin.explain_lime_parallel(&ctx, &clf, &batch, &lime, 4, 11);
        let c = shahin.explain_lime_parallel(&ctx, &clf, &batch, &lime, 7, 11);
        assert_eq!(a.explanations, b.explanations);
        assert_eq!(b.explanations, c.explanations);
    }
}
