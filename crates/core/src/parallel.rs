//! Multi-core batch explanation.
//!
//! The paper disables Shahin's multiprocessing to show the speedup is
//! algorithmic ("By default, Shahin runs only on a single core of a single
//! machine", §4.1) — but a production deployment would use every core, in
//! both phases:
//!
//! * **Preparation** — [`crate::PerturbationStore::materialize_parallel`]
//!   generates and labels the τ perturbations per frequent itemset across
//!   worker threads, with each itemset's RNG stream derived from
//!   `(run_seed, itemset_id)` and the per-itemset sample counts planned up
//!   front, so the materialized store is bit-identical at every thread
//!   count.
//! * **Per-tuple** — the materialized store is only *read*, per-tuple RNG
//!   streams are derived from the run seed, and the explainers are pure
//!   functions of their inputs, so tuples are embarrassingly parallel.
//!
//! The LIME and SHAP drivers here produce exactly the explanations (and
//! classifier invocation counts) of the single-threaded driver. Anchor
//! shares its lock-striped invariant caches ([`SharedAnchorCaches`])
//! across threads: reuse is kept and the found rules are stable for
//! classifiers with crisp precision, but because threads race to publish
//! precision evidence, *invocation counts* may vary slightly with the
//! schedule (see DESIGN.md, "Threading model & determinism").
//!
//! The thread count comes from [`crate::BatchConfig::n_threads`]
//! (machine parallelism by default) — one knob, not per-call arguments.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin_explain::{
    AnchorExplainer, AnchorExplanation, ExplainContext, FeatureWeights, KernelShapExplainer,
    LimeExplainer,
};
use shahin_fim::MatchScratch;
use shahin_model::{Classifier, CountingClassifier};
use shahin_tabular::Dataset;

use crate::anchor_cache::{CachingRuleSampler, SharedAnchorCaches};
use crate::batch::{estimate_base_value_guarded, ShahinBatch};
use crate::metrics::{BatchResult, OverheadBreakdown, RunMetrics};
use crate::obs::{names, ProvenanceCtx};
use crate::quarantine::{collect_outcomes, guard_tuple, QuarantineObs, TupleOutcome};
use crate::runner::per_tuple_seed;
use crate::shap_source::StoreCoalitionSource;

/// Splits `0..n` into at most `n_threads` contiguous, balanced chunks
/// (sizes differ by at most one). Returns no chunks for `n = 0`, never
/// returns an empty chunk, and clamps `n_threads` into `1..=n`.
pub fn chunks(n: usize, n_threads: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let k = n_threads.clamp(1, n);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let end = start + base + usize::from(i < extra);
        out.push((start, end));
        start = end;
    }
    out
}

impl ShahinBatch {
    /// Algorithm 1 with the per-tuple phase spread over
    /// [`crate::BatchConfig::n_threads`] threads. Produces exactly the same
    /// explanations and invocation counts as [`ShahinBatch::explain_lime`]
    /// for the same seed, at any thread count.
    pub fn explain_lime_parallel<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        batch: &Dataset,
        lime: &LimeExplainer,
        seed: u64,
    ) -> BatchResult<FeatureWeights> {
        let n_threads = self.config.resolved_n_threads();
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let prep = self.prepare(ctx, clf, batch, lime.params.n_samples, seed, &mut rng);
        let store = &prep.store;
        // Handles created once, before the scope: workers record through
        // shared atomics without touching the registry's stripe locks.
        let retrieve_hist = self.obs.span_histogram(names::SPAN_RETRIEVE_MATCH);
        let surrogate_hist = self.obs.span_histogram(names::SPAN_SURROGATE_FIT);
        let prov = ProvenanceCtx::new(&self.obs, &format!("Shahin-Batch-Par{n_threads}"), "LIME");
        let quarantine = QuarantineObs::new(&self.obs);

        let mut slots: Vec<Option<TupleOutcome<FeatureWeights>>> =
            (0..batch.n_rows()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut rest = slots.as_mut_slice();
            for (start, end) in chunks(batch.n_rows(), n_threads) {
                let (head, tail) = rest.split_at_mut(end - start);
                rest = tail;
                let table = &prep.table;
                let retrieve_hist = retrieve_hist.clone();
                let surrogate_hist = surrogate_hist.clone();
                let prov = prov.clone();
                let quarantine = quarantine.clone();
                scope.spawn(move || {
                    let mut scratch = MatchScratch::new();
                    for (offset, slot) in head.iter_mut().enumerate() {
                        let row = start + offset;
                        // Panic isolation per tuple: a classifier panic
                        // quarantines this row only; the store is read-only
                        // here so shared state cannot be left inconsistent.
                        *slot = Some(guard_tuple(row as u32, &quarantine, |incidents0| {
                            let t0 = prov.start();
                            let mut tuple_rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
                            let codes = table.row(row);
                            // Read-only matching: no LRU bookkeeping races.
                            let retrieve = retrieve_hist.start();
                            let (matched, lookup) = store.matching_read_stats(&codes, &mut scratch);
                            drop(retrieve);
                            let pooled = matched.iter().flat_map(|&id| store.samples(id).iter());
                            let instance = batch.instance(row);
                            let _fit = surrogate_hist.start();
                            let (weights, reuse) = lime.explain_with_reused_counted(
                                ctx,
                                clf,
                                &instance,
                                pooled,
                                &mut tuple_rng,
                            );
                            let degraded = reuse.clamped > 0
                                || shahin_model::degraded_incidents() > incidents0;
                            prov.record(
                                row as u32,
                                0,
                                &matched,
                                lookup,
                                reuse.reused,
                                reuse.fresh,
                                reuse.invocations,
                                (0, 0),
                                degraded,
                                t0,
                            );
                            (weights, degraded)
                        }));
                    }
                });
            }
        });

        let (explanations, report) = collect_outcomes(slots);
        BatchResult {
            explanations,
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                overhead: OverheadBreakdown {
                    fim: prep.fim_time,
                    materialization: prep.materialization_time,
                    retrieval: std::time::Duration::ZERO,
                },
                store_bytes: prep.store.peak_bytes(),
                n_frequent: prep.store.len(),
                n_tuples: batch.n_rows(),
            },
            report,
        }
    }

    /// Algorithm 2 with the per-tuple phase spread over
    /// [`crate::BatchConfig::n_threads`] threads, all sharing the lock-striped
    /// [`SharedAnchorCaches`]. Precision evidence published by one thread
    /// is immediately visible to the others, so cache reuse matches the
    /// sequential driver's; because threads race to publish, invocation
    /// counts (not the found rules, for classifiers with crisp precision)
    /// can vary with the schedule.
    pub fn explain_anchor_parallel<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        batch: &Dataset,
        anchor: &AnchorExplainer,
        seed: u64,
    ) -> BatchResult<AnchorExplanation> {
        let n_threads = self.config.resolved_n_threads();
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let prep = self.prepare(ctx, clf, batch, 400, seed, &mut rng);
        let store = &prep.store;
        let caches = SharedAnchorCaches::with_obs(&self.obs);
        let anchor = anchor.clone().with_obs(&self.obs);
        let anchor = &anchor;
        let retrieve_hist = self.obs.span_histogram(names::SPAN_RETRIEVE_MATCH);
        let prov = ProvenanceCtx::new(&self.obs, &format!("Shahin-Batch-Par{n_threads}"), "Anchor");
        let quarantine = QuarantineObs::new(&self.obs);

        let mut slots: Vec<Option<TupleOutcome<AnchorExplanation>>> =
            (0..batch.n_rows()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut rest = slots.as_mut_slice();
            for (start, end) in chunks(batch.n_rows(), n_threads) {
                let (head, tail) = rest.split_at_mut(end - start);
                rest = tail;
                let table = &prep.table;
                let caches = &caches;
                let retrieve_hist = retrieve_hist.clone();
                let prov = prov.clone();
                let quarantine = quarantine.clone();
                scope.spawn(move || {
                    let mut scratch = MatchScratch::new();
                    for (offset, slot) in head.iter_mut().enumerate() {
                        let row = start + offset;
                        // The shared anchor caches are lock-striped with
                        // non-poisoning locks and only publish completed
                        // evidence, so quarantining this row mid-bandit
                        // leaves them consistent for the other workers.
                        *slot = Some(guard_tuple(row as u32, &quarantine, |incidents0| {
                            let t0 = prov.start();
                            let codes = table.row(row);
                            let retrieve = retrieve_hist.start();
                            let (matched, lookup) = store.matching_read_stats(&codes, &mut scratch);
                            drop(retrieve);
                            let instance = batch.instance(row);
                            let target = clf.predict(&instance);
                            let mut sampler = CachingRuleSampler::new(
                                ctx,
                                clf,
                                store,
                                &matched,
                                caches,
                                per_tuple_seed(seed, row),
                            );
                            let explanation =
                                anchor.explain_with_sampler(&codes, target, &mut sampler);
                            // The shared CountingClassifier is racy per
                            // tuple here, so invocations are attributed
                            // from the sampler's fresh draws plus the
                            // target probe.
                            let stats = sampler.stats();
                            let degraded = shahin_model::degraded_incidents() > incidents0;
                            prov.record(
                                row as u32,
                                0,
                                &matched,
                                lookup,
                                stats.reused,
                                stats.fresh,
                                stats.fresh + 1,
                                (stats.cache_hits, stats.cache_misses),
                                degraded,
                                t0,
                            );
                            (explanation, degraded)
                        }));
                    }
                });
            }
        });

        let (explanations, report) = collect_outcomes(slots);
        BatchResult {
            explanations,
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                overhead: OverheadBreakdown {
                    fim: prep.fim_time,
                    materialization: prep.materialization_time,
                    retrieval: std::time::Duration::ZERO,
                },
                store_bytes: prep.store.peak_bytes() + caches.approx_bytes(),
                n_frequent: prep.store.len(),
                n_tuples: batch.n_rows(),
            },
            report,
        }
    }

    /// Algorithm 3 with the per-tuple phase spread over
    /// [`crate::BatchConfig::n_threads`] threads; deterministic like the LIME
    /// variant.
    pub fn explain_shap_parallel<C: Classifier>(
        &self,
        ctx: &ExplainContext,
        clf: &CountingClassifier<C>,
        batch: &Dataset,
        shap: &KernelShapExplainer,
        base_samples: usize,
        seed: u64,
    ) -> BatchResult<FeatureWeights> {
        let n_threads = self.config.resolved_n_threads();
        let start_inv = clf.invocations();
        let wall0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let prep = self.prepare(ctx, clf, batch, shap.params.n_samples, seed, &mut rng);
        let quarantine = QuarantineObs::new(&self.obs);
        let base = estimate_base_value_guarded(ctx, clf, base_samples, &mut rng, &quarantine);
        let store = &prep.store;
        let retrieve_hist = self.obs.span_histogram(names::SPAN_RETRIEVE_MATCH);
        let surrogate_hist = self.obs.span_histogram(names::SPAN_SURROGATE_FIT);
        let prov = ProvenanceCtx::new(&self.obs, &format!("Shahin-Batch-Par{n_threads}"), "SHAP");

        let mut slots: Vec<Option<TupleOutcome<FeatureWeights>>> =
            (0..batch.n_rows()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut rest = slots.as_mut_slice();
            for (start, end) in chunks(batch.n_rows(), n_threads) {
                let (head, tail) = rest.split_at_mut(end - start);
                rest = tail;
                let table = &prep.table;
                let retrieve_hist = retrieve_hist.clone();
                let surrogate_hist = surrogate_hist.clone();
                let prov = prov.clone();
                let quarantine = quarantine.clone();
                scope.spawn(move || {
                    let mut scratch = MatchScratch::new();
                    for (offset, slot) in head.iter_mut().enumerate() {
                        let row = start + offset;
                        *slot = Some(guard_tuple(row as u32, &quarantine, |incidents0| {
                            let t0 = prov.start();
                            let mut tuple_rng = StdRng::seed_from_u64(per_tuple_seed(seed, row));
                            let codes = table.row(row);
                            let retrieve = retrieve_hist.start();
                            let (matched, lookup) = store.matching_read_stats(&codes, &mut scratch);
                            let pooled = crate::shap_source::pool_coalitions(
                                store,
                                &matched,
                                shap.params.n_samples / 2,
                            );
                            let mut source = StoreCoalitionSource::new(store, matched.clone());
                            drop(retrieve);
                            let instance = batch.instance(row);
                            let _fit = surrogate_hist.start();
                            let (weights, reuse) = shap.explain_with_counted(
                                ctx,
                                clf,
                                &instance,
                                base,
                                pooled,
                                &mut source,
                                &mut tuple_rng,
                            );
                            let degraded = reuse.clamped > 0
                                || shahin_model::degraded_incidents() > incidents0;
                            prov.record(
                                row as u32,
                                0,
                                &matched,
                                lookup,
                                reuse.reused,
                                reuse.fresh,
                                reuse.invocations,
                                (0, 0),
                                degraded,
                                t0,
                            );
                            (weights, degraded)
                        }));
                    }
                });
            }
        });

        let (explanations, report) = collect_outcomes(slots);
        BatchResult {
            explanations,
            metrics: RunMetrics {
                invocations: clf.invocations() - start_inv,
                wall: wall0.elapsed(),
                overhead: OverheadBreakdown {
                    fim: prep.fim_time,
                    materialization: prep.materialization_time,
                    retrieval: std::time::Duration::ZERO,
                },
                store_bytes: prep.store.peak_bytes(),
                n_frequent: prep.store.len(),
                n_tuples: batch.n_rows(),
            },
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatchConfig;
    use shahin_explain::{LimeParams, ShapParams};
    use shahin_model::MajorityClass;
    use shahin_tabular::{train_test_split, DatasetPreset};

    fn setup() -> (ExplainContext, CountingClassifier<MajorityClass>, Dataset) {
        let (data, labels) = DatasetPreset::Recidivism.spec(0.05).generate(3);
        let mut rng = StdRng::seed_from_u64(3);
        let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
        let ctx = ExplainContext::fit(&split.train, 300, &mut rng);
        let clf = CountingClassifier::new(MajorityClass::fit(&split.train_labels));
        let rows: Vec<usize> = (0..40.min(split.test.n_rows())).collect();
        (ctx, clf, split.test.select(&rows))
    }

    fn with_threads(n: usize) -> ShahinBatch {
        ShahinBatch::new(BatchConfig {
            n_threads: Some(n),
            ..Default::default()
        })
    }

    #[test]
    fn chunking_covers_all_rows() {
        assert_eq!(chunks(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(chunks(2, 8), vec![(0, 1), (1, 2)]);
        assert_eq!(chunks(0, 4), Vec::<(usize, usize)>::new());
        assert_eq!(chunks(0, 0), Vec::<(usize, usize)>::new());
        assert_eq!(chunks(5, 1), vec![(0, 5)]);
        assert_eq!(chunks(5, 0), vec![(0, 5)], "zero threads clamps to one");
        assert_eq!(chunks(1, 64), vec![(0, 1)]);
    }

    #[test]
    fn parallel_lime_runs_and_counts() {
        let (ctx, clf, batch) = setup();
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 80,
            ..Default::default()
        });
        let r = with_threads(4).explain_lime_parallel(&ctx, &clf, &batch, &lime, 7);
        assert_eq!(r.explanations.len(), batch.n_rows());
        assert!(r.metrics.invocations > 0);
    }

    #[test]
    fn parallel_shap_matches_batch_structure() {
        let (ctx, clf, batch) = setup();
        let shap = KernelShapExplainer::new(ShapParams {
            n_samples: 48,
            ..Default::default()
        });
        let r = with_threads(4).explain_shap_parallel(&ctx, &clf, &batch, &shap, 20, 9);
        assert_eq!(r.explanations.len(), batch.n_rows());
        for e in &r.explanations {
            let total: f64 = e.weights.iter().sum();
            assert!((total - (e.local_prediction - e.intercept)).abs() < 1e-6);
        }
    }

    #[test]
    fn parallel_lime_matches_sequential_driver_exactly() {
        let (ctx, clf, batch) = setup();
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 60,
            ..Default::default()
        });
        let seq = with_threads(1).explain_lime(&ctx, &clf, &batch, &lime, 11);
        for n in [1usize, 2, 4] {
            let par = with_threads(n).explain_lime_parallel(&ctx, &clf, &batch, &lime, 11);
            assert_eq!(seq.explanations, par.explanations, "{n} threads");
            assert_eq!(
                seq.metrics.invocations, par.metrics.invocations,
                "{n} threads"
            );
        }
    }

    #[test]
    fn parallel_shap_matches_sequential_driver_exactly() {
        let (ctx, clf, batch) = setup();
        let shap = KernelShapExplainer::new(ShapParams {
            n_samples: 48,
            ..Default::default()
        });
        let seq = with_threads(1).explain_shap(&ctx, &clf, &batch, &shap, 20, 13);
        for n in [1usize, 2, 4] {
            let par = with_threads(n).explain_shap_parallel(&ctx, &clf, &batch, &shap, 20, 13);
            assert_eq!(seq.explanations, par.explanations, "{n} threads");
            assert_eq!(
                seq.metrics.invocations, par.metrics.invocations,
                "{n} threads"
            );
        }
    }

    #[test]
    fn parallel_workers_share_one_registry() {
        let (ctx, clf, batch) = setup();
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 60,
            ..Default::default()
        });
        let reg = crate::obs::MetricsRegistry::new();
        let shahin = with_threads(4).with_obs(&reg);
        shahin.explain_lime_parallel(&ctx, &clf, &batch, &lime, 31);
        let snap = reg.snapshot();
        let n = batch.n_rows() as u64;
        // Every worker recorded into the same histograms: no lost rows.
        assert_eq!(snap.histograms["span.retrieve.match"].count, n);
        assert_eq!(snap.histograms["span.surrogate.fit"].count, n);
        assert_eq!(snap.counter("store.lookups"), n);
    }

    #[test]
    fn parallel_provenance_is_thread_count_invariant() {
        use shahin_obs::ProvenanceSink;
        use std::sync::Arc;

        let (ctx, clf, batch) = setup();
        let lime = LimeExplainer::new(LimeParams {
            n_samples: 60,
            ..Default::default()
        });
        type LineageKey = (u32, Vec<u32>, u64, u64, u64, u64);
        let mut baseline: Option<Vec<LineageKey>> = None;
        for n in [1usize, 2, 4] {
            let reg = crate::obs::MetricsRegistry::new();
            let sink = Arc::new(ProvenanceSink::new());
            reg.attach_provenance_sink(Arc::clone(&sink));
            let shahin = with_threads(n).with_obs(&reg);
            shahin.explain_lime_parallel(&ctx, &clf, &batch, &lime, 11);
            let recs = sink.records();
            assert_eq!(recs.len(), batch.n_rows(), "{n} threads");
            if n > 1 {
                let tids: std::collections::HashSet<u64> = recs.iter().map(|r| r.thread).collect();
                assert!(tids.len() > 1, "expected records from several workers");
            }
            // Everything but thread id and wall time is schedule-invariant.
            let key: Vec<_> = recs
                .iter()
                .map(|r| {
                    assert_eq!(&*r.method, &format!("Shahin-Batch-Par{n}"));
                    (
                        r.tuple,
                        r.matched_itemsets.clone(),
                        r.samples_reused,
                        r.samples_fresh,
                        r.tau,
                        r.invocations,
                    )
                })
                .collect();
            match &baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(b, &key, "{n} threads"),
            }
        }
    }

    #[test]
    fn parallel_anchor_rules_match_sequential_driver() {
        let (ctx, _clf, batch) = setup();
        // A classifier keyed on one attribute: rule precisions are crisp
        // (≈0 or 1), so the beam search lands on the same rules regardless
        // of how the shared cache's evidence interleaves across threads.
        // Invocation counts are schedule-dependent — the documented
        // Anchor-race tolerance — and are not compared.
        struct Key;
        impl Classifier for Key {
            fn predict_proba(&self, inst: &[shahin_tabular::Feature]) -> f64 {
                f64::from(inst[0].cat().is_multiple_of(2))
            }
        }
        let anchor = AnchorExplainer::default();
        let clf = CountingClassifier::new(Key);
        let seq = with_threads(1).explain_anchor(&ctx, &clf, &batch, &anchor, 13);
        for n in [1usize, 2, 4] {
            let par = with_threads(n).explain_anchor_parallel(&ctx, &clf, &batch, &anchor, 13);
            assert_eq!(par.explanations.len(), batch.n_rows());
            for (row, (s, p)) in seq.explanations.iter().zip(&par.explanations).enumerate() {
                assert_eq!(s.rule, p.rule, "row {row}, {n} threads");
                assert_eq!(s.anchored_class, p.anchored_class, "row {row}, {n} threads");
            }
        }
    }
}
