//! Batch explanation summarization.
//!
//! The applications motivating the EMP problem — responsible AI audits,
//! explanation summarization, model debugging (paper §1) — don't stop at
//! producing one explanation per tuple: they aggregate the batch into a
//! global picture. This module provides those aggregations:
//!
//! * [`summarize_attributions`] — global feature importance from a batch
//!   of LIME/SHAP weight vectors,
//! * [`summarize_rules`] — the recurring Anchor rules with their average
//!   precision and coverage, per anchored class,
//! * [`top_k_overlap`] — ranking stability between two explanation runs
//!   (e.g. Shahin vs sequential, or two explainers).

use std::collections::HashMap;

use shahin_explain::{AnchorExplanation, FeatureWeights};
use shahin_fim::Itemset;
use shahin_tabular::Schema;

/// Global feature-importance aggregates over a batch of attribution
/// explanations.
#[derive(Clone, Debug)]
pub struct AttributionSummary {
    /// Mean |weight| per attribute: global importance.
    pub mean_abs_weight: Vec<f64>,
    /// Mean signed weight per attribute: directionality toward the
    /// positive class.
    pub mean_weight: Vec<f64>,
    /// How often each attribute ranked first.
    pub top1_counts: Vec<usize>,
    /// Number of explanations aggregated.
    pub n: usize,
}

impl AttributionSummary {
    /// Attributes ordered by decreasing global importance.
    pub fn global_ranking(&self) -> Vec<usize> {
        shahin_linalg::rank_by_magnitude(&self.mean_abs_weight)
    }

    /// A human-readable report of the `k` most important attributes.
    pub fn report(&self, schema: &Schema, k: usize) -> String {
        let mut out = String::from("attribute        mean|w|    mean w   top-1\n");
        for &attr in self.global_ranking().iter().take(k) {
            out.push_str(&format!(
                "{:<16} {:>7.4}  {:>+8.4}  {:>5}\n",
                schema.attr(attr).name,
                self.mean_abs_weight[attr],
                self.mean_weight[attr],
                self.top1_counts[attr]
            ));
        }
        out
    }
}

/// Aggregates a batch of attribution explanations.
pub fn summarize_attributions(explanations: &[FeatureWeights]) -> AttributionSummary {
    assert!(!explanations.is_empty(), "nothing to summarize");
    let m = explanations[0].weights.len();
    let mut mean_abs = vec![0.0; m];
    let mut mean = vec![0.0; m];
    let mut top1 = vec![0usize; m];
    for e in explanations {
        assert_eq!(e.weights.len(), m, "inconsistent explanation arity");
        for (j, &w) in e.weights.iter().enumerate() {
            mean_abs[j] += w.abs();
            mean[j] += w;
        }
        if let Some(&first) = e.ranking().first() {
            top1[first] += 1;
        }
    }
    let n = explanations.len();
    for v in mean_abs.iter_mut().chain(mean.iter_mut()) {
        *v /= n as f64;
    }
    AttributionSummary {
        mean_abs_weight: mean_abs,
        mean_weight: mean,
        top1_counts: top1,
        n,
    }
}

/// One recurring anchor rule with its aggregate statistics.
#[derive(Clone, Debug)]
pub struct RuleStat {
    /// The rule predicate.
    pub rule: Itemset,
    /// The class it anchors.
    pub class: u8,
    /// Number of tuples anchored by it.
    pub count: usize,
    /// Mean estimated precision across those tuples.
    pub mean_precision: f64,
    /// Mean estimated coverage.
    pub mean_coverage: f64,
}

/// Recurring anchor rules, most frequent first.
#[derive(Clone, Debug)]
pub struct RuleSummary {
    /// All distinct (class, rule) pairs with statistics.
    pub rules: Vec<RuleStat>,
    /// Number of explanations aggregated.
    pub n: usize,
}

impl RuleSummary {
    /// The `k` most recurrent rules.
    pub fn top(&self, k: usize) -> &[RuleStat] {
        &self.rules[..k.min(self.rules.len())]
    }

    /// Rules anchoring a specific class, most frequent first.
    pub fn for_class(&self, class: u8) -> Vec<&RuleStat> {
        self.rules.iter().filter(|r| r.class == class).collect()
    }

    /// A human-readable report of the top `k` rules, resolving attribute
    /// names through the schema.
    pub fn report(&self, schema: &Schema, k: usize) -> String {
        let mut out =
            String::from("class  rule                                  tuples  prec   cov\n");
        for r in self.top(k) {
            let pred = if r.rule.is_empty() {
                "(no anchor)".to_string()
            } else {
                r.rule
                    .items()
                    .iter()
                    .map(|it| format!("{}={}", schema.attr(it.attr as usize).name, it.code))
                    .collect::<Vec<_>>()
                    .join(" AND ")
            };
            out.push_str(&format!(
                "{:<6} {:<36} {:>6}  {:.2}  {:.2}\n",
                r.class, pred, r.count, r.mean_precision, r.mean_coverage
            ));
        }
        out
    }
}

/// Aggregates a batch of anchor explanations into recurring rules.
pub fn summarize_rules(explanations: &[AnchorExplanation]) -> RuleSummary {
    assert!(!explanations.is_empty(), "nothing to summarize");
    let mut acc: HashMap<(u8, Itemset), (usize, f64, f64)> = HashMap::new();
    for e in explanations {
        let entry = acc
            .entry((e.anchored_class, e.rule.clone()))
            .or_insert((0, 0.0, 0.0));
        entry.0 += 1;
        entry.1 += e.precision;
        entry.2 += e.coverage;
    }
    let mut rules: Vec<RuleStat> = acc
        .into_iter()
        .map(|((class, rule), (count, p, c))| RuleStat {
            rule,
            class,
            count,
            mean_precision: p / count as f64,
            mean_coverage: c / count as f64,
        })
        .collect();
    rules.sort_by(|a, b| b.count.cmp(&a.count).then(a.rule.cmp(&b.rule)));
    RuleSummary {
        rules,
        n: explanations.len(),
    }
}

/// Average fraction of shared attributes among the top-`k` of each pair of
/// explanations (1.0 = identical top-k sets everywhere).
pub fn top_k_overlap(a: &[FeatureWeights], b: &[FeatureWeights], k: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "batch size mismatch");
    assert!(!a.is_empty(), "empty batch");
    assert!(k >= 1, "k must be positive");
    let mut total = 0.0;
    for (x, y) in a.iter().zip(b) {
        let tx = x.top_k(k);
        let ty = y.top_k(k);
        let shared = tx.iter().filter(|i| ty.contains(i)).count();
        total += shared as f64 / k.min(tx.len()).max(1) as f64;
    }
    total / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use shahin_fim::Item;
    use shahin_tabular::Attribute;

    fn weights(w: Vec<f64>) -> FeatureWeights {
        FeatureWeights {
            weights: w,
            intercept: 0.0,
            local_prediction: 0.5,
        }
    }

    fn schema3() -> Schema {
        Schema::new(vec![
            Attribute::categorical("a", 2),
            Attribute::categorical("b", 2),
            Attribute::numeric("x"),
        ])
    }

    #[test]
    fn attribution_summary_aggregates() {
        let es = vec![weights(vec![1.0, -0.5, 0.0]), weights(vec![0.5, 0.5, 0.0])];
        let s = summarize_attributions(&es);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean_abs_weight, vec![0.75, 0.5, 0.0]);
        assert_eq!(s.mean_weight, vec![0.75, 0.0, 0.0]);
        assert_eq!(s.top1_counts, vec![2, 0, 0]);
        assert_eq!(s.global_ranking()[0], 0);
        let report = s.report(&schema3(), 2);
        assert!(report.contains('a'), "{report}");
    }

    #[test]
    fn rule_summary_groups_and_orders() {
        let r1 = Itemset::new(vec![Item::new(0, 1)]);
        let r2 = Itemset::new(vec![Item::new(1, 0)]);
        let mk = |rule: &Itemset, class, precision, coverage| AnchorExplanation {
            rule: rule.clone(),
            precision,
            coverage,
            anchored_class: class,
        };
        let es = vec![
            mk(&r1, 1, 0.9, 0.3),
            mk(&r1, 1, 1.0, 0.3),
            mk(&r2, 0, 0.95, 0.5),
        ];
        let s = summarize_rules(&es);
        assert_eq!(s.rules.len(), 2);
        assert_eq!(s.rules[0].count, 2);
        assert_eq!(s.rules[0].rule, r1);
        assert!((s.rules[0].mean_precision - 0.95).abs() < 1e-12);
        assert_eq!(s.for_class(0).len(), 1);
        assert_eq!(s.top(1).len(), 1);
        let report = s.report(&schema3(), 5);
        assert!(report.contains("a=1"), "{report}");
    }

    #[test]
    fn top_k_overlap_bounds() {
        let a = vec![weights(vec![1.0, 0.5, 0.1])];
        let same = top_k_overlap(&a, &a, 2);
        assert_eq!(same, 1.0);
        let b = vec![weights(vec![0.1, 0.5, 1.0])];
        let partial = top_k_overlap(&a, &b, 2);
        assert!((partial - 0.5).abs() < 1e-12, "{partial}");
    }

    #[test]
    #[should_panic(expected = "nothing to summarize")]
    fn empty_batch_rejected() {
        summarize_attributions(&[]);
    }
}
