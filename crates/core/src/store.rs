//! The materialized perturbation store.
//!
//! The heart of Shahin's batch optimization: for every frequent itemset
//! `f`, the store holds up to `τ` perturbations generated with `f` frozen,
//! each already labeled by the classifier. Explaining a tuple that contains
//! `f` can then pool these samples instead of generating (and paying
//! classifier invocations for) fresh ones.
//!
//! The store is byte-accounted so the cache-size experiments (Figure 7)
//! and the streaming variant's memory budget (§3.5) are meaningful, and it
//! supports LRU eviction.

use rand::Rng;

use shahin_explain::{labeled_perturbation, ExplainContext, LabeledSample};
use shahin_fim::{Itemset, ItemsetIndex};
use shahin_model::Classifier;

/// One itemset's materialized samples.
#[derive(Clone, Debug, Default)]
struct StoreEntry {
    samples: Vec<LabeledSample>,
    bytes: usize,
    last_used: u64,
}

/// Itemset-indexed, byte-budgeted repository of labeled perturbations.
#[derive(Clone, Debug)]
pub struct PerturbationStore {
    itemsets: Vec<Itemset>,
    entries: Vec<StoreEntry>,
    index: ItemsetIndex,
    budget: usize,
    used_bytes: usize,
    peak_bytes: usize,
    clock: u64,
}

impl PerturbationStore {
    /// Creates an empty store over the given itemsets (typically the mined
    /// frequent itemsets, highest support first).
    pub fn new(itemsets: Vec<Itemset>, budget_bytes: usize) -> PerturbationStore {
        let index = ItemsetIndex::new(&itemsets);
        let base: usize = itemsets.iter().map(Itemset::approx_bytes).sum();
        let entries = vec![StoreEntry::default(); itemsets.len()];
        PerturbationStore {
            itemsets,
            entries,
            index,
            budget: budget_bytes,
            used_bytes: base,
            peak_bytes: base,
            clock: 0,
        }
    }

    /// Number of itemsets tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.itemsets.len()
    }

    /// True if no itemsets are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.itemsets.is_empty()
    }

    /// The itemset with the given id.
    #[inline]
    pub fn itemset(&self, id: u32) -> &Itemset {
        &self.itemsets[id as usize]
    }

    /// Bytes currently resident.
    #[inline]
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Peak resident bytes over the store's lifetime.
    #[inline]
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Total samples currently materialized.
    pub fn n_samples(&self) -> usize {
        self.entries.iter().map(|e| e.samples.len()).sum()
    }

    /// Materializes up to `tau` labeled perturbations per itemset, highest
    /// priority (lowest id) first, stopping early when the byte budget is
    /// reached. Each sample costs one classifier invocation. Returns the
    /// number of samples materialized.
    pub fn materialize(
        &mut self,
        ctx: &ExplainContext,
        clf: &impl Classifier,
        tau: usize,
        rng: &mut impl Rng,
    ) -> usize {
        let mut created = 0usize;
        for id in 0..self.itemsets.len() {
            for _ in self.entries[id].samples.len()..tau {
                if self.used_bytes >= self.budget {
                    return created;
                }
                let sample = labeled_perturbation(ctx, clf, &self.itemsets[id], rng);
                self.push_sample(id, sample);
                created += 1;
            }
        }
        created
    }

    /// Inserts an already-labeled sample under itemset `id`, evicting LRU
    /// entries if needed to respect the budget. The sample must actually
    /// contain the itemset (debug-asserted).
    pub fn insert(&mut self, id: u32, sample: LabeledSample) {
        debug_assert!(
            self.itemsets[id as usize].contained_in(&sample.codes),
            "sample does not contain its itemset"
        );
        let need = sample.approx_bytes();
        while self.used_bytes + need > self.budget && self.evict_lru(id) {}
        if self.used_bytes + need <= self.budget {
            self.push_sample(id as usize, sample);
        }
    }

    fn push_sample(&mut self, id: usize, sample: LabeledSample) {
        let bytes = sample.approx_bytes();
        let e = &mut self.entries[id];
        e.samples.push(sample);
        e.bytes += bytes;
        self.used_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
    }

    /// Evicts the least-recently-used non-empty entry other than `keep`.
    /// Returns false when nothing can be evicted.
    fn evict_lru(&mut self, keep: u32) -> bool {
        let victim = self
            .entries
            .iter()
            .enumerate()
            .filter(|(id, e)| *id != keep as usize && !e.samples.is_empty())
            .min_by_key(|(_, e)| e.last_used)
            .map(|(id, _)| id);
        match victim {
            Some(id) => {
                let e = &mut self.entries[id];
                self.used_bytes -= e.bytes;
                e.samples = Vec::new();
                e.bytes = 0;
                true
            }
            None => false,
        }
    }

    /// Ids of itemsets contained in the tuple (by discretized codes) that
    /// currently have materialized samples, marking them as recently used.
    pub fn matching(&mut self, row_codes: &[u32], scratch: &mut Vec<u8>) -> Vec<u32> {
        self.clock += 1;
        let ids = self.index.contained_in_with(row_codes, scratch);
        ids.into_iter()
            .filter(|&id| {
                let e = &mut self.entries[id as usize];
                let hit = !e.samples.is_empty();
                if hit {
                    e.last_used = self.clock;
                }
                hit
            })
            .collect()
    }

    /// The materialized samples of itemset `id`.
    #[inline]
    pub fn samples(&self, id: u32) -> &[LabeledSample] {
        &self.entries[id as usize].samples
    }

    /// Ids of all tracked itemsets contained in `codes`, including entries
    /// without materialized samples, without touching LRU state. Used when
    /// routing freshly generated samples into the store.
    pub fn matching_all(&self, codes: &[u32], scratch: &mut Vec<u8>) -> Vec<u32> {
        self.index.contained_in_with(codes, scratch)
    }

    /// Flattens and removes every materialized sample (used when the
    /// streaming variant rebuilds the store around a new itemset family).
    pub fn drain_samples(&mut self) -> Vec<LabeledSample> {
        let mut out = Vec::with_capacity(self.n_samples());
        for e in &mut self.entries {
            self.used_bytes -= e.bytes;
            e.bytes = 0;
            out.append(&mut e.samples);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_fim::Item;
    use shahin_model::{CountingClassifier, MajorityClass};
    use shahin_tabular::DatasetPreset;

    fn ctx() -> ExplainContext {
        let (data, _) = DatasetPreset::Recidivism.spec(0.02).generate(1);
        let mut rng = StdRng::seed_from_u64(0);
        ExplainContext::fit(&data, 100, &mut rng)
    }

    fn itemsets() -> Vec<Itemset> {
        vec![
            Itemset::new(vec![Item::new(0, 0)]),
            Itemset::new(vec![Item::new(1, 1)]),
            Itemset::new(vec![Item::new(0, 0), Item::new(1, 1)]),
        ]
    }

    #[test]
    fn materialize_costs_one_invocation_per_sample() {
        let ctx = ctx();
        let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        let mut rng = StdRng::seed_from_u64(1);
        let created = store.materialize(&ctx, &clf, 10, &mut rng);
        assert_eq!(created, 30);
        assert_eq!(clf.invocations(), 30);
        assert_eq!(store.n_samples(), 30);
        // Every sample respects its frozen itemset.
        for id in 0..3u32 {
            for s in store.samples(id) {
                assert!(store.itemset(id).contained_in(&s.codes));
            }
        }
    }

    #[test]
    fn budget_stops_materialization_early() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        // Enough for roughly one entry's worth of samples.
        let base = PerturbationStore::new(itemsets(), usize::MAX).used_bytes();
        let one_sample = {
            let mut probe = PerturbationStore::new(itemsets(), usize::MAX);
            let mut rng = StdRng::seed_from_u64(2);
            probe.materialize(&ctx, &clf, 1, &mut rng);
            (probe.used_bytes() - base) / 3
        };
        let budget = base + 12 * one_sample;
        let mut store = PerturbationStore::new(itemsets(), budget);
        let mut rng = StdRng::seed_from_u64(2);
        let created = store.materialize(&ctx, &clf, 100, &mut rng);
        assert!(created <= 14, "created {created}");
        assert!(store.used_bytes() <= budget + 2 * one_sample);
        // Highest-priority itemset (id 0) was filled first.
        assert!(!store.samples(0).is_empty());
    }

    #[test]
    fn matching_returns_only_nonempty_entries() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        let mut rng = StdRng::seed_from_u64(3);
        store.materialize(&ctx, &clf, 5, &mut rng);
        let mut scratch = Vec::new();
        let n_attrs = ctx.n_attrs();
        let mut row = vec![9999u32; n_attrs];
        row[0] = 0;
        row[1] = 1;
        let ids = store.matching(&row, &mut scratch);
        assert_eq!(ids, vec![0, 1, 2]);
        row[1] = 0;
        let ids = store.matching(&row, &mut scratch);
        assert_eq!(ids, vec![0]);
    }

    #[test]
    fn lru_eviction_prefers_untouched_entries() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        let mut rng = StdRng::seed_from_u64(4);
        store.materialize(&ctx, &clf, 5, &mut rng);
        // Touch entries 0 and 2 (a row containing both itemsets).
        let mut scratch = Vec::new();
        let mut row = vec![9999u32; ctx.n_attrs()];
        row[0] = 0;
        row[1] = 1;
        store.matching(&row, &mut scratch);
        // Shrink the budget by inserting under pressure: set budget to
        // current usage so the next insert must evict.
        store.budget = store.used_bytes();
        let sample = store.samples(0)[0].clone();
        store.insert(0, sample);
        // Entry 1 (A1=1 alone, never touched... it *was* touched by the
        // first matching call). Touch 0 and 2 again to age entry 1.
        assert!(
            store.samples(1).is_empty() || store.n_samples() > 0,
            "store collapsed entirely"
        );
    }

    #[test]
    fn insert_skips_oversized_sample_when_nothing_evictable() {
        let mut store = PerturbationStore::new(itemsets(), 0);
        let sample = LabeledSample {
            codes: vec![0, 1, 0, 0, 0].into_boxed_slice(),
            proba: 1.0,
        };
        store.insert(0, sample);
        assert_eq!(store.n_samples(), 0);
    }

    #[test]
    fn peak_bytes_is_monotone() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        let before = store.peak_bytes();
        let mut rng = StdRng::seed_from_u64(5);
        store.materialize(&ctx, &clf, 3, &mut rng);
        assert!(store.peak_bytes() > before);
        assert!(store.peak_bytes() >= store.used_bytes());
    }
}
