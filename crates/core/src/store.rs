//! The materialized perturbation store.
//!
//! The heart of Shahin's batch optimization: for every frequent itemset
//! `f`, the store holds up to `τ` perturbations generated with `f` frozen,
//! each already labeled by the classifier. Explaining a tuple that contains
//! `f` can then pool these samples instead of generating (and paying
//! classifier invocations for) fresh ones.
//!
//! The store is byte-accounted so the cache-size experiments (Figure 7)
//! and the streaming variant's memory budget (§3.5) are meaningful, and it
//! supports LRU eviction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use shahin_explain::{
    labeled_perturbation, labeled_perturbations_batch_timed, ExplainContext, LabeledSample,
};
use shahin_fim::{BitsetDomain, Itemset, ItemsetIndex, MatchScratch};
use shahin_model::Classifier;
use shahin_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::obs::names;
use crate::parallel::chunks;
use crate::snapshot::{Dec, Enc, SnapshotError};

/// Derives the RNG seed of itemset `id`'s materialization stream from the
/// run seed (SplitMix64 finalizer). The stream constant differs from
/// [`crate::runner::per_tuple_seed`]'s so itemset and tuple streams never
/// collide for the same index.
pub fn per_itemset_seed(base: u64, id: usize) -> u64 {
    let mut z = base ^ 0xA076_1D64_78BD_642F ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Accounting of one store lookup, as returned by the `_stats` lookup
/// variants and folded into the per-tuple provenance record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LookupStats {
    /// Matched itemsets that had materialized samples.
    pub hits: u64,
    /// Matched itemsets whose entries were empty (index hit, store miss).
    pub misses: u64,
    /// Materialized samples available across the hit entries.
    pub samples_available: u64,
}

/// Which containment engine the `matching*` family dispatches to.
///
/// Both engines give the same answer in the same (ascending-id) order —
/// [`MatchEngine::Bitset`] is the cache-conscious default,
/// [`MatchEngine::Postings`] pins the legacy hash-postings index for
/// equivalence tests and old-vs-new benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MatchEngine {
    /// Dictionary-encoded `[u64; W]` masks, AND/EQ scan ([`BitsetDomain`]).
    #[default]
    Bitset,
    /// Per-item hash postings with hit counting ([`ItemsetIndex`]).
    Postings,
}

/// One itemset's materialized samples. Only touched when samples are
/// actually read or written — the `matching*` hot path works off the
/// store's dense `n_samples` / `last_used` side arrays instead, so a
/// lookup never chases these scattered per-entry allocations.
#[derive(Clone, Debug, Default)]
struct StoreEntry {
    samples: Vec<LabeledSample>,
    bytes: usize,
}

/// Observability handles of one store. Detached no-ops by default;
/// [`PerturbationStore::attach_obs`] wires them to a registry. Counters
/// are relaxed atomics, so the read-only lookup path
/// ([`PerturbationStore::matching_read`]) can record through `&self`.
#[derive(Clone, Debug, Default)]
struct StoreObs {
    lookups: Counter,
    hits: Counter,
    misses: Counter,
    empty_lookups: Counter,
    samples_reused: Counter,
    evictions: Counter,
    resident_bytes: Gauge,
    peak_bytes: Gauge,
    /// Perturbation generation time during materialization, excluding the
    /// classifier (`span.perturb.generate`, summed over workers).
    perturb_generate: Histogram,
    /// Classifier panics contained during materialization (the itemset's
    /// slot stays empty; the run continues).
    panics_isolated: Counter,
}

/// Itemset-indexed, byte-budgeted repository of labeled perturbations.
#[derive(Clone, Debug)]
pub struct PerturbationStore {
    itemsets: Vec<Itemset>,
    entries: Vec<StoreEntry>,
    /// Dense per-itemset sample counts, kept in sync with
    /// `entries[id].samples.len()`. The lookup hot path reads these (one
    /// contiguous `u32` lane) instead of dereferencing each matched
    /// entry's `Vec`.
    n_samples: Vec<u32>,
    /// Dense per-itemset LRU clocks (see `clock`); same rationale.
    last_used: Vec<u64>,
    index: ItemsetIndex,
    domain: BitsetDomain,
    engine: MatchEngine,
    budget: usize,
    used_bytes: usize,
    peak_bytes: usize,
    clock: u64,
    obs: StoreObs,
}

impl PerturbationStore {
    /// Creates an empty store over the given itemsets (typically the mined
    /// frequent itemsets, highest support first). Both containment engines
    /// are built here — the bitset masks are derived from the same itemset
    /// list as the postings index, so either can serve `matching*`.
    pub fn new(itemsets: Vec<Itemset>, budget_bytes: usize) -> PerturbationStore {
        let index = ItemsetIndex::new(&itemsets);
        let domain = BitsetDomain::new(&itemsets);
        let base: usize = itemsets.iter().map(Itemset::approx_bytes).sum();
        let entries = vec![StoreEntry::default(); itemsets.len()];
        PerturbationStore {
            n_samples: vec![0; itemsets.len()],
            last_used: vec![0; itemsets.len()],
            itemsets,
            entries,
            index,
            domain,
            engine: MatchEngine::default(),
            budget: budget_bytes,
            used_bytes: base,
            peak_bytes: base,
            clock: 0,
            obs: StoreObs::default(),
        }
    }

    /// The containment engine `matching*` currently dispatches to.
    #[inline]
    pub fn match_engine(&self) -> MatchEngine {
        self.engine
    }

    /// Selects the containment engine (answers are identical either way).
    pub fn set_match_engine(&mut self, engine: MatchEngine) {
        self.engine = engine;
    }

    /// Wires the store's metrics (`store.*` counters and gauges, the
    /// `span.perturb.generate` histogram) to `registry`.
    pub fn attach_obs(&mut self, registry: &MetricsRegistry) {
        self.obs = StoreObs {
            lookups: registry.counter(names::STORE_LOOKUPS),
            hits: registry.counter(names::STORE_HITS),
            misses: registry.counter(names::STORE_MISSES),
            empty_lookups: registry.counter(names::STORE_EMPTY_LOOKUPS),
            samples_reused: registry.counter(names::STORE_SAMPLES_REUSED),
            evictions: registry.counter(names::STORE_EVICTIONS),
            resident_bytes: registry.gauge(names::STORE_RESIDENT_BYTES),
            peak_bytes: registry.gauge(names::STORE_PEAK_BYTES),
            perturb_generate: registry.span_histogram(names::SPAN_PERTURB_GENERATE),
            panics_isolated: registry.counter(names::RESILIENCE_PANICS_ISOLATED),
        };
        self.obs.resident_bytes.set(self.used_bytes as u64);
        self.obs.peak_bytes.max(self.peak_bytes as u64);
    }

    /// Number of itemsets tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.itemsets.len()
    }

    /// True if no itemsets are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.itemsets.is_empty()
    }

    /// The itemset with the given id.
    #[inline]
    pub fn itemset(&self, id: u32) -> &Itemset {
        &self.itemsets[id as usize]
    }

    /// Bytes currently resident.
    #[inline]
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Peak resident bytes over the store's lifetime.
    #[inline]
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Total samples currently materialized.
    pub fn n_samples(&self) -> usize {
        self.n_samples.iter().map(|&n| n as usize).sum()
    }

    /// Materializes up to `tau` labeled perturbations per itemset, highest
    /// priority (lowest id) first, stopping early when the byte budget is
    /// reached. Each sample costs one classifier invocation. Returns the
    /// number of samples materialized.
    pub fn materialize(
        &mut self,
        ctx: &ExplainContext,
        clf: &impl Classifier,
        tau: usize,
        rng: &mut impl Rng,
    ) -> usize {
        let mut created = 0usize;
        for id in 0..self.itemsets.len() {
            for _ in self.n_samples[id] as usize..tau {
                if self.used_bytes >= self.budget {
                    return created;
                }
                let sample = labeled_perturbation(ctx, clf, &self.itemsets[id], rng);
                self.push_sample(id, sample);
                created += 1;
            }
        }
        created
    }

    /// How many samples a materialization pass with this `tau` will create
    /// per itemset, computed up front. This is possible because every
    /// labeled sample of one dataset costs the same `sample_bytes`
    /// ([`LabeledSample::approx_bytes`] is `size_of + n_attrs * 4`), so the
    /// budget cutoff does not depend on the samples themselves. Mirrors the
    /// sequential loop in [`PerturbationStore::materialize`] exactly:
    /// budget checked before each sample, lowest id first.
    fn fill_plan(&self, tau: usize, sample_bytes: usize) -> Vec<usize> {
        let mut plan = vec![0usize; self.entries.len()];
        let mut used = self.used_bytes;
        for (id, &have) in self.n_samples.iter().enumerate() {
            for _ in have as usize..tau {
                if used >= self.budget {
                    return plan;
                }
                plan[id] += 1;
                used += sample_bytes;
            }
        }
        plan
    }

    /// [`PerturbationStore::materialize`] spread over `n_threads` scoped
    /// worker threads, deterministically: itemset `id`'s samples come from
    /// an RNG stream seeded by `(seed, id)` ([`per_itemset_seed`]), the
    /// per-itemset sample counts are fixed up front by [`Self::fill_plan`],
    /// and workers' results are merged in itemset order — so the resulting
    /// store (samples, byte accounting, classifier invocation count) is
    /// bit-identical for every thread count, including 1.
    ///
    /// Each itemset's perturbations are labeled through one
    /// [`Classifier::predict_proba_batch`] dispatch.
    pub fn materialize_parallel(
        &mut self,
        ctx: &ExplainContext,
        clf: &impl Classifier,
        tau: usize,
        seed: u64,
        n_threads: usize,
    ) -> usize {
        let sample_bytes =
            std::mem::size_of::<LabeledSample>() + ctx.n_attrs() * std::mem::size_of::<u32>();
        let plan = self.fill_plan(tau, sample_bytes);
        let total: usize = plan.iter().sum();
        if total == 0 {
            return 0;
        }

        let itemsets = &self.itemsets;
        let mut produced: Vec<Vec<LabeledSample>> = vec![Vec::new(); plan.len()];
        std::thread::scope(|scope| {
            let mut rest = produced.as_mut_slice();
            for (start, end) in chunks(plan.len(), n_threads) {
                let (head, tail) = rest.split_at_mut(end - start);
                rest = tail;
                let plan = &plan;
                let gen_hist = self.obs.perturb_generate.clone();
                let panics = self.obs.panics_isolated.clone();
                scope.spawn(move || {
                    let mut gen_time = std::time::Duration::ZERO;
                    for (offset, slot) in head.iter_mut().enumerate() {
                        let id = start + offset;
                        if plan[id] == 0 {
                            continue;
                        }
                        let mut rng = StdRng::seed_from_u64(per_itemset_seed(seed, id));
                        // A classifier panic while labeling this itemset's
                        // samples only costs this itemset: the slot stays
                        // empty (tuples fall back to fresh perturbations)
                        // and the other workers keep filling. Fault
                        // schedules hash the perturbation content, so the
                        // same itemset fails at every thread count.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            labeled_perturbations_batch_timed(
                                ctx,
                                clf,
                                &itemsets[id],
                                plan[id],
                                &mut rng,
                            )
                        })) {
                            Ok((samples, generated)) => {
                                *slot = samples;
                                gen_time += generated;
                            }
                            Err(_) => panics.inc(),
                        }
                    }
                    // One sample per worker: the histogram's sum is the
                    // CPU time spent generating, its count the worker
                    // fan-out.
                    if !gen_time.is_zero() {
                        gen_hist.record(gen_time);
                    }
                });
            }
        });

        // Merge in itemset order, not thread completion order, so the byte
        // accounting (used/peak) replays the sequential fill exactly.
        // `created` can fall short of the plan when an itemset's labeling
        // panicked and was contained above.
        let created: usize = produced.iter().map(Vec::len).sum();
        for (id, samples) in produced.into_iter().enumerate() {
            for sample in samples {
                debug_assert!(sample.approx_bytes() == sample_bytes);
                self.push_sample(id, sample);
            }
        }
        created
    }

    /// Inserts an already-labeled sample under itemset `id`, evicting LRU
    /// entries if needed to respect the budget. The sample must actually
    /// contain the itemset (debug-asserted).
    pub fn insert(&mut self, id: u32, sample: LabeledSample) {
        debug_assert!(
            self.itemsets[id as usize].contained_in(&sample.codes),
            "sample does not contain its itemset"
        );
        let need = sample.approx_bytes();
        while self.used_bytes + need > self.budget && self.evict_lru(id) {}
        if self.used_bytes + need <= self.budget {
            self.push_sample(id as usize, sample);
        }
    }

    fn push_sample(&mut self, id: usize, sample: LabeledSample) {
        let bytes = sample.approx_bytes();
        let e = &mut self.entries[id];
        e.samples.push(sample);
        e.bytes += bytes;
        self.n_samples[id] += 1;
        self.used_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
        self.obs.resident_bytes.set(self.used_bytes as u64);
        self.obs.peak_bytes.max(self.peak_bytes as u64);
    }

    /// Evicts the least-recently-used non-empty entry other than `keep`.
    /// Returns false when nothing can be evicted.
    fn evict_lru(&mut self, keep: u32) -> bool {
        let victim = self
            .n_samples
            .iter()
            .enumerate()
            .filter(|&(id, &n)| id != keep as usize && n > 0)
            .min_by_key(|&(id, _)| self.last_used[id])
            .map(|(id, _)| id);
        match victim {
            Some(id) => {
                let e = &mut self.entries[id];
                self.used_bytes -= e.bytes;
                e.samples = Vec::new();
                e.bytes = 0;
                self.n_samples[id] = 0;
                self.obs.evictions.inc();
                self.obs.resident_bytes.set(self.used_bytes as u64);
                true
            }
            None => false,
        }
    }

    /// Raw containment: ids of tracked itemsets contained in `row_codes`,
    /// in ascending order, via whichever engine is selected. Everything in
    /// the `matching*` family funnels through here.
    #[inline]
    fn contained_ids(&self, row_codes: &[u32], scratch: &mut MatchScratch) -> Vec<u32> {
        match self.engine {
            MatchEngine::Bitset => self.domain.contained_in_with(row_codes, scratch),
            MatchEngine::Postings => self.index.contained_in_with(row_codes, &mut scratch.counts),
        }
    }

    /// The one lookup core behind the `matching*` family: containment ids,
    /// filtered down to entries with materialized samples, with hit/miss/
    /// availability accounting recorded. Read-only — the mutable variant
    /// layers its LRU touch on top, so the bitset/postings dispatch and the
    /// filtering logic live exactly once.
    fn lookup_core(
        &self,
        row_codes: &[u32],
        scratch: &mut MatchScratch,
    ) -> (Vec<u32>, LookupStats) {
        let mut ids = self.contained_ids(row_codes, scratch);
        let mut stats = LookupStats::default();
        ids.retain(|&id| {
            let n = self.n_samples[id as usize];
            if n > 0 {
                stats.hits += 1;
                stats.samples_available += u64::from(n);
                true
            } else {
                stats.misses += 1;
                false
            }
        });
        self.record_lookup(stats.hits, stats.misses, stats.samples_available);
        (ids, stats)
    }

    /// Ids of itemsets contained in the tuple (by discretized codes) that
    /// currently have materialized samples, marking them as recently used.
    pub fn matching(&mut self, row_codes: &[u32], scratch: &mut MatchScratch) -> Vec<u32> {
        self.matching_stats(row_codes, scratch).0
    }

    /// [`PerturbationStore::matching`] that also reports the lookup's
    /// accounting ([`LookupStats`]) so drivers can attribute hits, misses
    /// and available samples to the tuple being explained.
    pub fn matching_stats(
        &mut self,
        row_codes: &[u32],
        scratch: &mut MatchScratch,
    ) -> (Vec<u32>, LookupStats) {
        self.clock += 1;
        let clock = self.clock;
        let (out, stats) = self.lookup_core(row_codes, scratch);
        for &id in &out {
            self.last_used[id as usize] = clock;
        }
        (out, stats)
    }

    /// [`PerturbationStore::matching`] without the LRU bookkeeping: only
    /// itemsets with materialized samples are returned, nothing is marked
    /// used, and the store is not mutated — the lookup the parallel
    /// drivers' worker threads use against a shared `&store`. Hit/miss
    /// counters still record (they are atomics).
    pub fn matching_read(&self, row_codes: &[u32], scratch: &mut MatchScratch) -> Vec<u32> {
        self.matching_read_stats(row_codes, scratch).0
    }

    /// [`PerturbationStore::matching_read`] that also reports the lookup's
    /// accounting ([`LookupStats`]).
    pub fn matching_read_stats(
        &self,
        row_codes: &[u32],
        scratch: &mut MatchScratch,
    ) -> (Vec<u32>, LookupStats) {
        self.lookup_core(row_codes, scratch)
    }

    fn record_lookup(&self, hits: u64, misses: u64, reused: u64) {
        self.obs.lookups.inc();
        self.obs.hits.add(hits);
        self.obs.misses.add(misses);
        self.obs.samples_reused.add(reused);
        if hits == 0 {
            self.obs.empty_lookups.inc();
        }
    }

    /// The materialized samples of itemset `id`.
    #[inline]
    pub fn samples(&self, id: u32) -> &[LabeledSample] {
        &self.entries[id as usize].samples
    }

    /// Ids of all tracked itemsets contained in `codes`, including entries
    /// without materialized samples, without touching LRU state. Used when
    /// routing freshly generated samples into the store.
    pub fn matching_all(&self, codes: &[u32], scratch: &mut MatchScratch) -> Vec<u32> {
        self.contained_ids(codes, scratch)
    }

    /// Flattens and removes every materialized sample (used when the
    /// streaming variant rebuilds the store around a new itemset family).
    pub fn drain_samples(&mut self) -> Vec<LabeledSample> {
        let mut out = Vec::with_capacity(self.n_samples());
        for e in &mut self.entries {
            self.used_bytes -= e.bytes;
            e.bytes = 0;
            out.append(&mut e.samples);
        }
        self.n_samples.fill(0);
        self.obs.resident_bytes.set(self.used_bytes as u64);
        out
    }

    /// Serializes the store's full warm state — itemsets, every
    /// materialized sample, LRU clocks, byte budget/high-watermark, engine
    /// selection, and the bitset dictionary — as a snapshot payload.
    /// [`PerturbationStore::load_snapshot`] is the inverse.
    pub(crate) fn dump_snapshot(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.itemsets.len() as u64);
        for set in &self.itemsets {
            e.itemset(set);
        }
        e.u8(match self.engine {
            MatchEngine::Bitset => 0,
            MatchEngine::Postings => 1,
        });
        e.u64(self.budget as u64);
        e.u64(self.peak_bytes as u64);
        e.u64(self.clock);
        for &t in &self.last_used {
            e.u64(t);
        }
        for entry in &self.entries {
            e.u64(entry.samples.len() as u64);
            for s in &entry.samples {
                e.u32(s.codes.len() as u32);
                for &c in s.codes.iter() {
                    e.u32(c);
                }
                e.f64(s.proba);
            }
        }
        e.bytes(&self.domain.dump_bytes());
        e.buf
    }

    /// Reconstructs a store from a [`PerturbationStore::dump_snapshot`]
    /// payload. Derivable state (postings index, per-entry byte and sample
    /// counts, resident-byte total) is recomputed rather than trusted, and
    /// structural invariants — every sample contains its itemset, the
    /// dictionary covers the itemset list, LRU clocks are in range — are
    /// verified, so a payload that passed its CRC but was written wrong
    /// still cannot produce a store that would serve bad answers.
    pub(crate) fn load_snapshot(payload: &[u8]) -> Result<PerturbationStore, SnapshotError> {
        const CONTEXT: &str = "store section";
        let corrupt = |context: &'static str| SnapshotError::Corrupt { context };
        let mut d = Dec::new(payload, CONTEXT);
        let n = d.len()?;
        let mut itemsets = Vec::with_capacity(n);
        for _ in 0..n {
            itemsets.push(d.itemset()?);
        }
        let engine = match d.u8()? {
            0 => MatchEngine::Bitset,
            1 => MatchEngine::Postings,
            _ => return Err(corrupt("unknown match engine")),
        };
        let budget = d.u64()? as usize;
        let peak_bytes = d.u64()? as usize;
        let clock = d.u64()?;
        let mut last_used = Vec::with_capacity(n);
        for _ in 0..n {
            let t = d.u64()?;
            if t > clock {
                return Err(corrupt("LRU timestamp ahead of the store clock"));
            }
            last_used.push(t);
        }
        let mut entries = Vec::with_capacity(n);
        let mut n_samples = Vec::with_capacity(n);
        let base: usize = itemsets.iter().map(Itemset::approx_bytes).sum();
        let mut used_bytes = base;
        for set in &itemsets {
            let count = d.len()?;
            let mut samples = Vec::with_capacity(count);
            let mut bytes = 0usize;
            for _ in 0..count {
                let width = d.u32()? as usize;
                let mut codes = Vec::with_capacity(width.min(payload.len()));
                for _ in 0..width {
                    codes.push(d.u32()?);
                }
                let proba = d.f64()?;
                if !(0.0..=1.0).contains(&proba) {
                    return Err(corrupt("sample probability outside [0, 1]"));
                }
                let sample = LabeledSample {
                    codes: codes.into_boxed_slice(),
                    proba,
                };
                if !set.contained_in(&sample.codes) {
                    return Err(corrupt("sample does not contain its itemset"));
                }
                bytes += sample.approx_bytes();
                samples.push(sample);
            }
            n_samples.push(u32::try_from(count).map_err(|_| corrupt("entry overflows u32"))?);
            used_bytes += bytes;
            entries.push(StoreEntry { samples, bytes });
        }
        let domain = BitsetDomain::load_bytes(d.bytes()?)
            .map_err(|context| SnapshotError::Corrupt { context })?;
        d.finish()?;
        if domain.len() != itemsets.len() {
            return Err(corrupt("bitset dictionary disagrees with the itemset list"));
        }
        if peak_bytes < used_bytes {
            return Err(corrupt("peak bytes below resident bytes"));
        }
        let index = ItemsetIndex::new(&itemsets);
        Ok(PerturbationStore {
            n_samples,
            last_used,
            itemsets,
            entries,
            index,
            domain,
            engine,
            budget,
            used_bytes,
            peak_bytes,
            clock,
            obs: StoreObs::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_fim::Item;
    use shahin_model::{CountingClassifier, MajorityClass};
    use shahin_tabular::DatasetPreset;

    fn ctx() -> ExplainContext {
        let (data, _) = DatasetPreset::Recidivism.spec(0.02).generate(1);
        let mut rng = StdRng::seed_from_u64(0);
        ExplainContext::fit(&data, 100, &mut rng)
    }

    fn itemsets() -> Vec<Itemset> {
        vec![
            Itemset::new(vec![Item::new(0, 0)]),
            Itemset::new(vec![Item::new(1, 1)]),
            Itemset::new(vec![Item::new(0, 0), Item::new(1, 1)]),
        ]
    }

    #[test]
    fn materialize_costs_one_invocation_per_sample() {
        let ctx = ctx();
        let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        let mut rng = StdRng::seed_from_u64(1);
        let created = store.materialize(&ctx, &clf, 10, &mut rng);
        assert_eq!(created, 30);
        assert_eq!(clf.invocations(), 30);
        assert_eq!(store.n_samples(), 30);
        // Every sample respects its frozen itemset.
        for id in 0..3u32 {
            for s in store.samples(id) {
                assert!(store.itemset(id).contained_in(&s.codes));
            }
        }
    }

    #[test]
    fn budget_stops_materialization_early() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        // Enough for roughly one entry's worth of samples.
        let base = PerturbationStore::new(itemsets(), usize::MAX).used_bytes();
        let one_sample = {
            let mut probe = PerturbationStore::new(itemsets(), usize::MAX);
            let mut rng = StdRng::seed_from_u64(2);
            probe.materialize(&ctx, &clf, 1, &mut rng);
            (probe.used_bytes() - base) / 3
        };
        let budget = base + 12 * one_sample;
        let mut store = PerturbationStore::new(itemsets(), budget);
        let mut rng = StdRng::seed_from_u64(2);
        let created = store.materialize(&ctx, &clf, 100, &mut rng);
        assert!(created <= 14, "created {created}");
        assert!(store.used_bytes() <= budget + 2 * one_sample);
        // Highest-priority itemset (id 0) was filled first.
        assert!(!store.samples(0).is_empty());
    }

    #[test]
    fn matching_returns_only_nonempty_entries() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        let mut rng = StdRng::seed_from_u64(3);
        store.materialize(&ctx, &clf, 5, &mut rng);
        let mut scratch = MatchScratch::new();
        let n_attrs = ctx.n_attrs();
        let mut row = vec![9999u32; n_attrs];
        row[0] = 0;
        row[1] = 1;
        let ids = store.matching(&row, &mut scratch);
        assert_eq!(ids, vec![0, 1, 2]);
        row[1] = 0;
        let ids = store.matching(&row, &mut scratch);
        assert_eq!(ids, vec![0]);
    }

    #[test]
    fn lru_eviction_prefers_untouched_entries() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        let mut rng = StdRng::seed_from_u64(4);
        store.materialize(&ctx, &clf, 5, &mut rng);
        // Touch entries 0 and 2 (a row containing both itemsets).
        let mut scratch = MatchScratch::new();
        let mut row = vec![9999u32; ctx.n_attrs()];
        row[0] = 0;
        row[1] = 1;
        store.matching(&row, &mut scratch);
        // Shrink the budget by inserting under pressure: set budget to
        // current usage so the next insert must evict.
        store.budget = store.used_bytes();
        let sample = store.samples(0)[0].clone();
        store.insert(0, sample);
        // Entry 1 (A1=1 alone, never touched... it *was* touched by the
        // first matching call). Touch 0 and 2 again to age entry 1.
        assert!(
            store.samples(1).is_empty() || store.n_samples() > 0,
            "store collapsed entirely"
        );
    }

    #[test]
    fn insert_skips_oversized_sample_when_nothing_evictable() {
        let mut store = PerturbationStore::new(itemsets(), 0);
        let sample = LabeledSample {
            codes: vec![0, 1, 0, 0, 0].into_boxed_slice(),
            proba: 1.0,
        };
        store.insert(0, sample);
        assert_eq!(store.n_samples(), 0);
    }

    #[test]
    fn parallel_fill_is_thread_count_invariant() {
        let ctx = ctx();
        let reference = {
            let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
            let mut store = PerturbationStore::new(itemsets(), usize::MAX);
            let created = store.materialize_parallel(&ctx, &clf, 8, 42, 1);
            (store, created, clf.invocations())
        };
        for n_threads in [2usize, 4, 8] {
            let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
            let mut store = PerturbationStore::new(itemsets(), usize::MAX);
            let created = store.materialize_parallel(&ctx, &clf, 8, 42, n_threads);
            assert_eq!(created, reference.1, "created @ {n_threads} threads");
            assert_eq!(clf.invocations(), reference.2);
            assert_eq!(store.n_samples(), reference.0.n_samples());
            assert_eq!(store.used_bytes(), reference.0.used_bytes());
            assert_eq!(store.peak_bytes(), reference.0.peak_bytes());
            for id in 0..3u32 {
                assert_eq!(
                    store.samples(id),
                    reference.0.samples(id),
                    "samples of itemset {id} differ at {n_threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_budget_accounting_matches_sequential() {
        // Samples differ between the single-stream sequential fill and the
        // per-itemset-stream parallel fill, but every sample costs the same
        // bytes, so counts and byte accounting must agree exactly.
        let ctx = ctx();
        let base = PerturbationStore::new(itemsets(), usize::MAX).used_bytes();
        let sample_bytes =
            std::mem::size_of::<LabeledSample>() + ctx.n_attrs() * std::mem::size_of::<u32>();
        for extra in [0usize, 1, 5, 12, 100] {
            let budget = base + extra * sample_bytes;
            let clf = MajorityClass::fit(&[1]);
            let mut seq = PerturbationStore::new(itemsets(), budget);
            let mut rng = StdRng::seed_from_u64(6);
            let created_seq = seq.materialize(&ctx, &clf, 20, &mut rng);
            let mut par = PerturbationStore::new(itemsets(), budget);
            let created_par = par.materialize_parallel(&ctx, &clf, 20, 6, 4);
            assert_eq!(created_par, created_seq, "budget {extra} samples");
            assert_eq!(par.n_samples(), seq.n_samples());
            assert_eq!(par.used_bytes(), seq.used_bytes());
            assert_eq!(par.peak_bytes(), seq.peak_bytes());
            for id in 0..3u32 {
                assert_eq!(par.samples(id).len(), seq.samples(id).len());
            }
        }
    }

    #[test]
    fn parallel_fill_tops_up_existing_entries() {
        // A second pass with a larger tau only generates the missing
        // samples, and the already-resident prefix is untouched.
        let ctx = ctx();
        let clf = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        store.materialize_parallel(&ctx, &clf, 4, 9, 2);
        let before: Vec<Vec<LabeledSample>> =
            (0..3u32).map(|id| store.samples(id).to_vec()).collect();
        assert_eq!(clf.invocations(), 12);
        let created = store.materialize_parallel(&ctx, &clf, 7, 9, 2);
        assert_eq!(created, 9);
        assert_eq!(clf.invocations(), 21);
        for id in 0..3u32 {
            assert_eq!(store.samples(id).len(), 7);
            assert_eq!(&store.samples(id)[..4], &before[id as usize][..]);
        }
    }

    #[test]
    fn lru_eviction_behaves_after_parallel_fill() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        store.materialize_parallel(&ctx, &clf, 5, 11, 4);
        // Touch entries 0 and 2 so entry 1 becomes the LRU victim.
        let mut scratch = MatchScratch::new();
        let mut row = vec![9999u32; ctx.n_attrs()];
        row[0] = 0;
        store.matching(&row, &mut scratch);
        store.budget = store.used_bytes();
        let sample = store.samples(0)[0].clone();
        store.insert(0, sample);
        assert!(store.used_bytes() <= store.budget);
        assert_eq!(store.samples(0).len(), 6);
        assert!(store.samples(1).is_empty(), "LRU entry 1 should be evicted");
    }

    #[test]
    fn per_itemset_seed_is_deterministic_and_spread() {
        assert_eq!(per_itemset_seed(7, 3), per_itemset_seed(7, 3));
        assert_ne!(per_itemset_seed(7, 3), per_itemset_seed(7, 4));
        assert_ne!(per_itemset_seed(7, 3), per_itemset_seed(8, 3));
        // Distinct from the per-tuple stream at the same (base, index).
        assert_ne!(per_itemset_seed(7, 3), crate::runner::per_tuple_seed(7, 3));
    }

    #[test]
    fn attached_obs_records_lookups_and_bytes() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let reg = shahin_obs::MetricsRegistry::new();
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        store.attach_obs(&reg);
        store.materialize_parallel(&ctx, &clf, 5, 21, 2);
        let mut scratch = MatchScratch::new();
        let mut row = vec![9999u32; ctx.n_attrs()];
        row[0] = 0;
        row[1] = 1;
        // Mutable and read-only lookups both count: 3 hits each.
        let a = store.matching(&row, &mut scratch);
        let b = store.matching_read(&row, &mut scratch);
        assert_eq!(a, b);
        // An all-miss lookup.
        store.matching(&vec![9999u32; ctx.n_attrs()], &mut scratch);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("store.lookups"), 3);
        assert_eq!(snap.counter("store.hits"), 6);
        assert_eq!(snap.counter("store.empty_lookups"), 1);
        assert_eq!(snap.counter("store.samples_reused"), 2 * 3 * 5);
        assert_eq!(
            snap.gauge("store.resident_bytes"),
            store.used_bytes() as u64
        );
        assert_eq!(snap.gauge("store.peak_bytes"), store.peak_bytes() as u64);
        // Materialization recorded generation time under the span prefix.
        assert!(snap.histograms["span.perturb.generate"].count >= 1);
        // Forced eviction is counted.
        store.budget = store.used_bytes();
        let sample = store.samples(0)[0].clone();
        store.insert(0, sample);
        assert!(reg.snapshot().counter("store.evictions") >= 1);
    }

    #[test]
    fn stats_variants_report_hits_misses_and_availability() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        let mut rng = StdRng::seed_from_u64(9);
        store.materialize(&ctx, &clf, 5, &mut rng);
        // Empty out entry 1 so the lookup sees a store miss.
        store.entries[1].samples.clear();
        store.n_samples[1] = 0;
        let mut scratch = MatchScratch::new();
        let mut row = vec![9999u32; ctx.n_attrs()];
        row[0] = 0;
        row[1] = 1;
        let (ids, stats) = store.matching_stats(&row, &mut scratch);
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.samples_available, 10);
        let (ids_r, stats_r) = store.matching_read_stats(&row, &mut scratch);
        assert_eq!(ids_r, ids);
        assert_eq!(stats_r, stats);
        // Delegating variants agree.
        assert_eq!(store.matching(&row, &mut scratch), ids);
    }

    #[test]
    fn matching_read_leaves_lru_untouched() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        let mut rng = StdRng::seed_from_u64(8);
        store.materialize(&ctx, &clf, 3, &mut rng);
        let clock_before = store.clock;
        let lru_before = store.last_used.clone();
        let mut scratch = MatchScratch::new();
        let mut row = vec![9999u32; ctx.n_attrs()];
        row[0] = 0;
        row[1] = 1;
        let ids = store.matching_read(&row, &mut scratch);
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(store.clock, clock_before);
        let lru_after = store.last_used.clone();
        assert_eq!(lru_before, lru_after);
    }

    #[test]
    fn bitset_and_postings_engines_agree() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        assert_eq!(store.match_engine(), MatchEngine::Bitset);
        let mut rng = StdRng::seed_from_u64(11);
        store.materialize(&ctx, &clf, 4, &mut rng);
        // Empty out one entry so the hit-filtering path is exercised too.
        store.entries[1].samples.clear();
        store.n_samples[1] = 0;
        let mut scratch = MatchScratch::new();
        let rows: Vec<Vec<u32>> = vec![
            {
                let mut r = vec![9999u32; ctx.n_attrs()];
                r[0] = 0;
                r[1] = 1;
                r
            },
            vec![0u32; ctx.n_attrs()],
            vec![9999u32; ctx.n_attrs()],
        ];
        for row in &rows {
            store.set_match_engine(MatchEngine::Bitset);
            let all_b = store.matching_all(row, &mut scratch);
            let (ids_b, stats_b) = store.matching_read_stats(row, &mut scratch);
            store.set_match_engine(MatchEngine::Postings);
            let all_p = store.matching_all(row, &mut scratch);
            let (ids_p, stats_p) = store.matching_read_stats(row, &mut scratch);
            assert_eq!(all_b, all_p);
            assert_eq!(ids_b, ids_p);
            assert_eq!(stats_b, stats_p);
        }
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        store.materialize_parallel(&ctx, &clf, 6, 13, 2);
        // Touch some LRU state and evict an entry so non-trivial clocks
        // and an empty slot are part of the round trip.
        let mut scratch = MatchScratch::new();
        let mut row = vec![9999u32; ctx.n_attrs()];
        row[0] = 0;
        row[1] = 1;
        store.matching(&row, &mut scratch);
        store.entries[1].samples.clear();
        store.used_bytes -= store.entries[1].bytes;
        store.entries[1].bytes = 0;
        store.n_samples[1] = 0;

        let payload = store.dump_snapshot();
        let loaded = PerturbationStore::load_snapshot(&payload).expect("valid payload loads");
        assert_eq!(loaded.dump_snapshot(), payload, "reserialization identical");
        assert_eq!(loaded.n_samples, store.n_samples);
        assert_eq!(loaded.last_used, store.last_used);
        assert_eq!(loaded.clock, store.clock);
        assert_eq!(loaded.used_bytes, store.used_bytes);
        assert_eq!(loaded.peak_bytes, store.peak_bytes);
        assert_eq!(loaded.budget, store.budget);
        assert_eq!(loaded.match_engine(), store.match_engine());
        for id in 0..3u32 {
            assert_eq!(loaded.samples(id), store.samples(id));
        }
        // The loaded store answers lookups identically through both the
        // loaded dictionary and the rebuilt postings index.
        let (ids_a, stats_a) = store.matching_read_stats(&row, &mut scratch);
        let (ids_b, stats_b) = loaded.matching_read_stats(&row, &mut scratch);
        assert_eq!(ids_a, ids_b);
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn snapshot_load_rejects_structural_corruption() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        store.materialize_parallel(&ctx, &clf, 3, 17, 1);
        let payload = store.dump_snapshot();
        // Truncation anywhere is a typed error, never a panic.
        for end in [0, 1, 8, payload.len() / 2, payload.len() - 1] {
            let err = PerturbationStore::load_snapshot(&payload[..end]).unwrap_err();
            assert!(
                matches!(err.kind(), "truncated" | "corrupt"),
                "cut at {end} -> {}",
                err.kind()
            );
        }
        // Trailing garbage is rejected.
        let mut padded = payload.clone();
        padded.push(0);
        assert!(PerturbationStore::load_snapshot(&padded).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// Dump → load → dump is the identity on bytes for arbitrary
        /// store contents, and the loaded store is field-for-field equal.
        #[test]
        fn snapshot_round_trip_holds_for_arbitrary_stores(
            inserts in proptest::collection::vec(
                (0u32..12, proptest::collection::vec(0u32..4, 5), 0.0f64..=1.0), 0..40),
        ) {
            use proptest::prelude::prop_assert_eq;
            let mut sets = Vec::new();
            for a in 0..5usize {
                for c in 0..2u32 {
                    sets.push(Itemset::new(vec![Item::new(a, c)]));
                }
            }
            sets.push(Itemset::new(vec![Item::new(0, 0), Item::new(1, 0)]));
            sets.push(Itemset::new(vec![Item::new(2, 1), Item::new(3, 1)]));
            let mut store = PerturbationStore::new(sets.clone(), usize::MAX);
            for (id, mut codes, proba) in inserts {
                let id = id % sets.len() as u32;
                for item in sets[id as usize].items() {
                    codes[item.attr as usize] = item.code;
                }
                store.insert(id, LabeledSample { codes: codes.into_boxed_slice(), proba });
            }
            let payload = store.dump_snapshot();
            let loaded = PerturbationStore::load_snapshot(&payload).expect("own dump loads");
            prop_assert_eq!(loaded.dump_snapshot(), payload);
            prop_assert_eq!(&loaded.n_samples, &store.n_samples);
            prop_assert_eq!(&loaded.last_used, &store.last_used);
            prop_assert_eq!(loaded.used_bytes, store.used_bytes);
            prop_assert_eq!(loaded.peak_bytes, store.peak_bytes);
            for id in 0..sets.len() as u32 {
                prop_assert_eq!(loaded.samples(id), store.samples(id));
            }
        }
    }

    #[test]
    fn peak_bytes_is_monotone() {
        let ctx = ctx();
        let clf = MajorityClass::fit(&[1]);
        let mut store = PerturbationStore::new(itemsets(), usize::MAX);
        let before = store.peak_bytes();
        let mut rng = StdRng::seed_from_u64(5);
        store.materialize(&ctx, &clf, 3, &mut rng);
        assert!(store.peak_bytes() > before);
        assert!(store.peak_bytes() >= store.used_bytes());
    }
}
