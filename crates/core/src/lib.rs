//! Shahin: faster explanation generation for multiple predictions.
//!
//! This crate implements the contribution of *"Shahin: Faster Algorithms
//! for Generating Explanations for Multiple Predictions"* (SIGMOD 2021):
//! multi-query-optimization–style batching for perturbation-based
//! explainers (LIME, Anchor, KernelSHAP).
//!
//! # How it works
//!
//! Given a batch of tuples to explain, Shahin:
//!
//! 1. mines **frequent itemsets** over a `max(1000, 1%)` sample of the
//!    batch (`shahin-fim`),
//! 2. **materializes** `τ` classifier-labeled perturbations per frequent
//!    itemset in a byte-budgeted [`PerturbationStore`],
//! 3. explains each tuple by **reusing** the materialized perturbations
//!    whose frozen itemset the tuple contains, generating (and paying
//!    classifier invocations for) only the remainder,
//! 4. for Anchor, additionally caches the **invariant** per-rule precision
//!    counts and coverage ([`anchor_cache`]),
//! 5. a **streaming** variant ([`ShahinStreaming`]) maintains the store
//!    under a memory budget with LRU eviction and periodic frequent-itemset
//!    (plus negative-border) refresh.
//!
//! Baselines from the paper's evaluation — [`baseline::sequential_lime`],
//! Dist-k thread parallelism, and the Greedy LRU cache — live in
//! [`baseline`], and [`runner`] provides the measurement harness used by
//! every experiment.
//!
//! # Quick start
//!
//! ```no_run
//! use shahin::{BatchConfig, ShahinBatch};
//! use shahin_explain::{ExplainContext, LimeExplainer};
//! use shahin_model::{CountingClassifier, ForestParams, RandomForest};
//! use shahin_tabular::{train_test_split, DatasetPreset};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let (data, labels) = DatasetPreset::CensusIncome.spec(0.1).generate(7);
//! let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
//! let forest = RandomForest::fit(&split.train, &split.train_labels,
//!                                &ForestParams::default(), &mut rng);
//! let clf = CountingClassifier::new(forest);
//! let ctx = ExplainContext::fit(&split.train, 1000, &mut rng);
//!
//! let shahin = ShahinBatch::new(BatchConfig::default());
//! let result = shahin.explain_lime(&ctx, &clf, &split.test,
//!                                  &LimeExplainer::default(), 7);
//! println!("{} explanations, {} classifier invocations",
//!          result.explanations.len(), result.metrics.invocations);
//! ```

pub mod anchor_cache;
pub mod baseline;
pub mod batch;
pub mod config;
pub mod greedy_cache;
pub mod metrics;
pub mod obs;
pub mod parallel;
pub(crate) mod quarantine;
pub mod runner;
pub mod shap_source;
pub mod snapshot;
pub mod store;
pub mod streaming;
pub mod summarize;
pub mod warm;

pub use anchor_cache::{CachingRuleSampler, SamplerStats, SharedAnchorCaches};
pub use baseline::{dist_k, Greedy};
pub use batch::ShahinBatch;
pub use config::{BatchConfig, Miner, StreamingConfig};
pub use greedy_cache::TaggedLruCache;
pub use metrics::{
    BatchReport, BatchResult, FailureKind, OverheadBreakdown, RunMetrics, TupleFailure,
};
pub use obs::{
    fold_provenance, register_standard, trace_sampled, EventSink, MetricsRegistry,
    MetricsSnapshot, ProvenanceRecord, ProvenanceSink, RequestTrace, StageSpan, TraceContext,
    TraceCounters, TraceSink, TraceSpan, TraceStore, TraceStoreConfig,
};
pub use parallel::chunks;
pub use runner::{
    per_tuple_seed, run, run_with_obs, ExplainerKind, Explanation, Method, RunReport,
};
pub use shap_source::StoreCoalitionSource;
pub use snapshot::{fault, SnapshotError, FORMAT_VERSION as SNAPSHOT_FORMAT_VERSION};
pub use store::{per_itemset_seed, LookupStats, MatchEngine, PerturbationStore};
pub use streaming::ShahinStreaming;
pub use summarize::{
    summarize_attributions, summarize_rules, top_k_overlap, AttributionSummary, RuleSummary,
};
pub use warm::{WarmEngine, WarmExplainer, WarmOutcome, WarmRequest};
