//! A long-lived, warm explanation engine for online serving.
//!
//! Every offline driver in this crate rebuilds the perturbation
//! repository per invocation and throws it away — exactly backwards for a
//! service answering a stream of explain requests. [`WarmEngine`] primes
//! the repository once over a *warm set* (the rows the service can be
//! asked about), then explains arbitrary micro-batches of those rows
//! against the resident [`PerturbationStore`] and lock-striped
//! [`SharedAnchorCaches`], so the materialization cost amortizes across
//! requests instead of within one batch.
//!
//! # Determinism
//!
//! The engine reproduces the offline [`crate::ShahinBatch`] parallel
//! drivers bit-for-bit: the store is materialized by the same
//! `prepare(..)` with the same `(config, seed)`, and each tuple's RNG
//! stream is derived from its *global* warm-set row index via
//! [`per_tuple_seed`] — never from its position inside a micro-batch. A
//! row therefore gets the same LIME/SHAP explanation no matter how
//! requests are coalesced, how many worker threads run, or when the
//! request arrives (Anchor rules are stable for crisp classifiers; its
//! invocation counts race, as in the offline parallel driver).
//!
//! # Refresh epochs
//!
//! [`WarmEngine::refresh`] rebuilds the store (same seed — bit-identical
//! contents) and bumps the provenance epoch, mirroring the streaming
//! driver's refresh rounds; the serve batcher calls it every
//! `refresh_every` micro-batches to bound staleness once warm sets become
//! mutable.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin_explain::{AnchorExplainer, ExplainContext, KernelShapExplainer, LimeExplainer};
use shahin_fim::MatchScratch;
use shahin_model::{Classifier, CountingClassifier};
use shahin_tabular::{Dataset, DiscreteTable};

use crate::anchor_cache::{CachingRuleSampler, SharedAnchorCaches};
use crate::batch::{estimate_base_value_guarded, ShahinBatch};
use crate::config::{BatchConfig, Miner};
use crate::metrics::TupleFailure;
use crate::obs::{
    names, register_standard, MetricsRegistry, ProvenanceCtx, StageSpan, TraceCounters, TraceSink,
};
use crate::parallel::chunks;
use crate::quarantine::{guard_tuple, QuarantineObs, TupleOutcome};
use crate::runner::{per_tuple_seed, Explanation, SHAP_BASE_SAMPLES};
use crate::shap_source::{pool_coalitions, StoreCoalitionSource};
use crate::snapshot::{
    Dec, Enc, SnapshotError, SnapshotReader, SnapshotWriter, TAG_CACHES, TAG_META, TAG_STORE,
};
use crate::store::{MatchEngine, PerturbationStore};

/// The explainer a [`WarmEngine`] serves (one per engine; a service that
/// offers several runs several engines over the same warm set).
#[derive(Clone, Debug)]
pub enum WarmExplainer {
    /// LIME feature attributions.
    Lime(LimeExplainer),
    /// Anchor rules.
    Anchor(AnchorExplainer),
    /// KernelSHAP feature attributions.
    Shap(KernelShapExplainer),
}

impl WarmExplainer {
    /// Canonical explainer name (matches [`crate::ExplainerKind::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            WarmExplainer::Lime(_) => "LIME",
            WarmExplainer::Anchor(_) => "Anchor",
            WarmExplainer::Shap(_) => "SHAP",
        }
    }

    /// The per-tuple sample budget used by automatic τ selection (the same
    /// `n_target` the offline drivers pass to `prepare`).
    fn n_target(&self) -> usize {
        match self {
            WarmExplainer::Lime(l) => l.params.n_samples,
            // Anchor has no fixed per-tuple count; 400 approximates the
            // bandit's typical draw budget (as in the offline driver).
            WarmExplainer::Anchor(_) => 400,
            WarmExplainer::Shap(s) => s.params.n_samples,
        }
    }
}

/// One explain request addressed to a warm engine: a *global* row index
/// into the warm set, plus the serving request id stamped onto the
/// tuple's provenance record.
#[derive(Clone, Copy, Debug)]
pub struct WarmRequest {
    /// Row index into the engine's warm set (`0..n_rows()`).
    pub row: usize,
    /// Serving request id for provenance tagging.
    pub request_id: u64,
    /// Trace id of the request's [`shahin_obs::RequestTrace`], if the
    /// serve layer is tracing it. When set (and the registry carries a
    /// [`TraceSink`]), the worker deposits per-stage [`StageSpan`]s —
    /// `retrieve`, `classify`, `explain` — keyed by this id, which the
    /// serve batcher collects into the request's span tree. `None` keeps
    /// the engine-side tracing cost at one branch per stage.
    pub trace: Option<u64>,
}

/// Outcome of one warm-served request.
#[derive(Clone, Debug)]
pub enum WarmOutcome {
    /// Explained; `degraded` mirrors the offline drivers' degraded flag
    /// (the resilience boundary absorbed incidents for this tuple).
    Ok {
        /// The explanation.
        explanation: Explanation,
        /// Explained under duress (retries absorbed, outputs sanitized).
        degraded: bool,
    },
    /// A panic unwound out of the tuple; it is quarantined and the other
    /// requests in the micro-batch are unaffected.
    Failed(TupleFailure),
}

/// One SplitMix64-style mixing step, folding `v` into the running hash.
fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The snapshot header's config fingerprint: a digest of everything the
/// warm state's *contents* depend on — the batch config (excluding
/// `n_threads`, which never changes results), the prime seed, the warm
/// set's shape, and which explainer the engine serves. Hydrating under a
/// different fingerprint would serve answers from the wrong state, so
/// [`WarmEngine::prime_from_snapshot`] rejects the mismatch up front.
fn snapshot_fingerprint(
    config: &BatchConfig,
    explainer: &WarmExplainer,
    warm: &Dataset,
    n_attrs: usize,
    seed: u64,
) -> u64 {
    let mut h = 0x5348_4148_494E_5753u64;
    for v in [
        config.min_support.to_bits(),
        config.max_itemset_len as u64,
        config.max_itemsets as u64,
        config.tau as u64,
        config.cache_budget_bytes as u64,
        u64::from(config.auto_tau),
        match config.miner {
            Miner::Apriori => 0,
            Miner::FpGrowth => 1,
        },
        match config.match_engine {
            MatchEngine::Bitset => 0,
            MatchEngine::Postings => 1,
        },
        seed,
        warm.n_rows() as u64,
        n_attrs as u64,
    ] {
        h = mix(h, v);
    }
    for b in explainer.name().bytes() {
        h = mix(h, u64::from(b));
    }
    h
}

/// Store + dictionary that a refresh swaps atomically.
struct WarmState {
    table: DiscreteTable,
    store: PerturbationStore,
}

/// The decoded, fully-validated contents of a snapshot — everything
/// hydration needs beyond what the caller already holds.
struct SnapshotParts {
    base: f64,
    store: PerturbationStore,
    caches: SharedAnchorCaches,
}

/// Opens, validates, and decodes a snapshot against the serving
/// configuration, borrowing everything — a rejection leaves the caller's
/// inputs intact for a cold-start fallback.
fn load_snapshot_parts(
    config: &BatchConfig,
    explainer: &WarmExplainer,
    n_attrs: usize,
    warm: &Dataset,
    seed: u64,
    reg: &MetricsRegistry,
    bytes: &[u8],
) -> Result<SnapshotParts, SnapshotError> {
    let expected = snapshot_fingerprint(config, explainer, warm, n_attrs, seed);
    let mut r = SnapshotReader::open(bytes, expected)?;
    let meta = r.section(TAG_META, "meta section")?;
    let mut d = Dec::new(meta, "meta section");
    let snap_seed = d.u64()?;
    let base = d.f64()?;
    let name = d.str()?;
    let n_rows = d.u64()?;
    let snap_attrs = d.u64()?;
    d.finish()?;
    // The fingerprint already binds these; re-checking the decoded
    // values guards against fingerprint collisions and writer bugs.
    if snap_seed != seed
        || name != explainer.name()
        || n_rows != warm.n_rows() as u64
        || snap_attrs != n_attrs as u64
    {
        return Err(SnapshotError::Corrupt {
            context: "meta disagrees with the serving configuration",
        });
    }
    if !base.is_finite() {
        return Err(SnapshotError::Corrupt {
            context: "non-finite SHAP base value",
        });
    }
    let store_payload = r.section(TAG_STORE, "store section")?;
    let caches_payload = r.section(TAG_CACHES, "anchor cache section")?;
    let store = PerturbationStore::load_snapshot(store_payload)?;
    let caches = SharedAnchorCaches::load_snapshot(caches_payload, reg)?;
    Ok(SnapshotParts {
        base,
        store,
        caches,
    })
}

/// A primed, resident explanation engine (see the module docs).
pub struct WarmEngine<C: Classifier> {
    shahin: ShahinBatch,
    ctx: ExplainContext,
    clf: CountingClassifier<C>,
    warm: Dataset,
    explainer: WarmExplainer,
    /// Obs-wired Anchor clone (the offline driver wires it per run).
    anchor: Option<AnchorExplainer>,
    caches: SharedAnchorCaches,
    seed: u64,
    /// SHAP base value, estimated once at prime time (0.5 otherwise).
    base: f64,
    state: RwLock<WarmState>,
    epoch: AtomicU64,
    obs: MetricsRegistry,
    /// Tenant this engine serves under (`None` outside a multi-tenant
    /// cluster); stamped onto every provenance record the engine emits.
    tenant: Option<Arc<str>>,
}

impl<C: Classifier> WarmEngine<C> {
    /// Builds the engine and materializes the repository over `warm` —
    /// the same preparation the offline drivers run per batch, paid once.
    pub fn prime(
        config: BatchConfig,
        explainer: WarmExplainer,
        ctx: ExplainContext,
        clf: CountingClassifier<C>,
        warm: Dataset,
        seed: u64,
        reg: &MetricsRegistry,
    ) -> WarmEngine<C> {
        register_standard(reg);
        let shahin = ShahinBatch::new(config).with_obs(reg);
        let mut rng = StdRng::seed_from_u64(seed);
        let prep = shahin.prepare(&ctx, &clf, &warm, explainer.n_target(), seed, &mut rng);
        let quarantine = QuarantineObs::new(reg);
        let base = match &explainer {
            WarmExplainer::Shap(_) => {
                estimate_base_value_guarded(&ctx, &clf, SHAP_BASE_SAMPLES, &mut rng, &quarantine)
            }
            _ => 0.5,
        };
        let caches = SharedAnchorCaches::with_obs(reg);
        let anchor = match &explainer {
            WarmExplainer::Anchor(a) => Some(a.clone().with_obs(reg)),
            _ => None,
        };
        WarmEngine {
            shahin,
            ctx,
            clf,
            warm,
            explainer,
            anchor,
            caches,
            seed,
            base,
            state: RwLock::new(WarmState {
                table: prep.table,
                store: prep.store,
            }),
            epoch: AtomicU64::new(0),
            obs: reg.clone(),
            tenant: None,
        }
    }

    /// Rows in the warm set; valid request rows are `0..n_rows()`.
    pub fn n_rows(&self) -> usize {
        self.warm.n_rows()
    }

    /// Completed refresh rounds (the provenance epoch of the next tuple).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The explainer this engine serves.
    pub fn explainer_name(&self) -> &'static str {
        self.explainer.name()
    }

    /// Resolved worker count ([`BatchConfig::resolved_n_threads`]) —
    /// also the shard count the serve cluster partitions this engine's
    /// requests into.
    pub fn n_workers(&self) -> usize {
        self.shahin.config.resolved_n_threads()
    }

    /// Total classifier invocations through this engine's classifier
    /// (materialization + explanations).
    pub fn invocations(&self) -> u64 {
        self.clf.invocations()
    }

    /// The registry this engine records into (the serve layer shares it
    /// for its `serve.*` metrics).
    pub fn obs(&self) -> &MetricsRegistry {
        &self.obs
    }

    /// Labels this engine with the tenant it serves; every provenance
    /// record it emits from then on carries the name. The tenancy
    /// registry applies this between materialization and the first
    /// request — single-tenant servers never set it, so their lineage
    /// schema is unchanged.
    pub fn set_tenant(&mut self, tenant: &str) {
        self.tenant = Some(Arc::from(tenant));
    }

    /// The tenant label, if one was set.
    pub fn tenant(&self) -> Option<&Arc<str>> {
        self.tenant.as_ref()
    }

    /// A stable signature of the frozen itemsets warm row `row` is
    /// contained in: the SplitMix64 fold of each matched itemset's
    /// `(attr, code)` items. Rows matching the same itemset family hash
    /// identically, so a consistent-hash shard map built on these
    /// signatures routes reuse-compatible rows to the same worker —
    /// reuse locality survives sharding. Containment ignores
    /// materialization state (`matching_all`, not `matching`), so the
    /// signature is stable across refreshes and LRU churn, and the
    /// lookup records no `store.*` accounting.
    pub fn row_signature(&self, row: usize) -> u64 {
        let state = self.state.read();
        let mut scratch = MatchScratch::new();
        Self::signature_of(&state, row, &mut scratch)
    }

    /// [`WarmEngine::row_signature`] for the whole warm set in one
    /// read-lock acquisition — what the tenancy layer builds its per-row
    /// shard table from at materialization time.
    pub fn row_signatures(&self) -> Vec<u64> {
        let state = self.state.read();
        let mut scratch = MatchScratch::new();
        (0..self.warm.n_rows())
            .map(|row| Self::signature_of(&state, row, &mut scratch))
            .collect()
    }

    fn signature_of(state: &WarmState, row: usize, scratch: &mut MatchScratch) -> u64 {
        let codes = state.table.row(row);
        let matched = state.store.matching_all(&codes, scratch);
        let mut h = 0x5348_5244_5349_4721u64;
        for &id in &matched {
            for item in state.store.itemset(id).items() {
                h = mix(h, (u64::from(item.attr) << 32) | u64::from(item.code));
            }
        }
        mix(h, matched.len() as u64)
    }

    /// Itemset entries resident in the warm perturbation store right
    /// now (briefly takes the state read lock; the serve monitor samples
    /// this into the `serve.warm_entries` gauge).
    pub fn store_entries(&self) -> usize {
        self.state.read().store.len()
    }

    /// Bytes resident in the warm perturbation store right now (sampled
    /// into `serve.warm_bytes`).
    pub fn store_bytes(&self) -> usize {
        self.state.read().store.used_bytes()
    }

    /// Rebuilds the store with the prime seed (bit-identical contents,
    /// so served explanations are epoch-invariant) and bumps the epoch.
    pub fn refresh(&self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let prep = self.shahin.prepare(
            &self.ctx,
            &self.clf,
            &self.warm,
            self.explainer.n_target(),
            self.seed,
            &mut rng,
        );
        {
            let mut state = self.state.write();
            state.table = prep.table;
            state.store = prep.store;
        }
        self.epoch.fetch_add(1, Ordering::Relaxed);
        self.obs.counter(names::SERVE_REFRESHES).inc();
    }

    /// Writes a checksummed snapshot of the engine's warm state to `path`
    /// (atomically: temp file + fsync + rename, so a crash mid-write never
    /// corrupts the last good snapshot). The state read lock is held only
    /// while the store is dumped to an in-memory buffer — serving stalls
    /// for the dump, not for the disk. Returns the snapshot size in bytes.
    pub fn write_snapshot(&self, path: &Path) -> Result<u64, SnapshotError> {
        let bytes = self.snapshot_bytes();
        shahin_obs::write_atomic(path, &bytes)?;
        Ok(bytes.len() as u64)
    }

    /// The serialized snapshot (header + checksummed sections) as an
    /// in-memory buffer; [`WarmEngine::write_snapshot`] persists it.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let fingerprint = snapshot_fingerprint(
            &self.shahin.config,
            &self.explainer,
            &self.warm,
            self.ctx.n_attrs(),
            self.seed,
        );
        let mut meta = Enc::new();
        meta.u64(self.seed);
        meta.f64(self.base);
        meta.str(self.explainer.name());
        meta.u64(self.warm.n_rows() as u64);
        meta.u64(self.ctx.n_attrs() as u64);
        let store_payload = self.state.read().store.dump_snapshot();
        let caches_payload = self.caches.dump_snapshot();
        let mut w = SnapshotWriter::new(fingerprint);
        w.section(TAG_META, &meta.buf);
        w.section(TAG_STORE, &store_payload);
        w.section(TAG_CACHES, &caches_payload);
        w.finish()
    }

    /// Builds a warm engine by hydrating `bytes` — a snapshot a donor
    /// engine wrote under the *same* `(config, explainer, warm, seed)` —
    /// instead of re-mining and re-materializing. No classifier is
    /// invoked: the store's samples, the Anchor caches' evidence, and the
    /// SHAP base value all come from the snapshot, and the discretized
    /// warm table is recomputed from `warm` (an RNG-free pure function,
    /// identical to what `prime` builds). The hydrated engine serves
    /// bit-identical explanations to the donor.
    ///
    /// Every validation failure is a typed [`SnapshotError`]; callers log
    /// it, count `persist.load_rejected`, and fall back to a cold
    /// [`WarmEngine::prime`].
    #[allow(clippy::too_many_arguments)]
    pub fn prime_from_snapshot(
        config: BatchConfig,
        explainer: WarmExplainer,
        ctx: ExplainContext,
        clf: CountingClassifier<C>,
        warm: Dataset,
        seed: u64,
        reg: &MetricsRegistry,
        bytes: &[u8],
    ) -> Result<WarmEngine<C>, SnapshotError> {
        let parts =
            load_snapshot_parts(&config, &explainer, ctx.n_attrs(), &warm, seed, reg, bytes)?;
        Ok(Self::assemble_hydrated(
            config, explainer, ctx, clf, warm, seed, reg, parts,
        ))
    }

    /// The crash-tolerant startup path: hydrates from `bytes` when it
    /// validates, and otherwise degrades to a cold [`WarmEngine::prime`]
    /// — never a panic, never a dead process. Returns the engine plus
    /// the typed rejection if the snapshot was refused (the caller's log
    /// line). `persist.loads_ok` / `persist.load_rejected` are counted
    /// here so every caller reports recovery the same way; passing
    /// `None` (no snapshot offered) counts neither.
    #[allow(clippy::too_many_arguments)]
    pub fn prime_warm_or_cold(
        config: BatchConfig,
        explainer: WarmExplainer,
        ctx: ExplainContext,
        clf: CountingClassifier<C>,
        warm: Dataset,
        seed: u64,
        reg: &MetricsRegistry,
        bytes: Option<&[u8]>,
    ) -> (WarmEngine<C>, Option<SnapshotError>) {
        let rejection = match bytes {
            None => None,
            Some(bytes) => {
                match load_snapshot_parts(&config, &explainer, ctx.n_attrs(), &warm, seed, reg, bytes)
                {
                    Ok(parts) => {
                        reg.counter(names::PERSIST_LOADS_OK).inc();
                        let eng = Self::assemble_hydrated(
                            config, explainer, ctx, clf, warm, seed, reg, parts,
                        );
                        return (eng, None);
                    }
                    Err(e) => {
                        reg.counter(names::PERSIST_LOAD_REJECTED).inc();
                        Some(e)
                    }
                }
            }
        };
        (
            Self::prime(config, explainer, ctx, clf, warm, seed, reg),
            rejection,
        )
    }

    /// Builds the engine around fully-validated snapshot parts. (A
    /// rejection before this point leaves at most idempotently-registered
    /// metric names behind, which a cold prime registers anyway.)
    #[allow(clippy::too_many_arguments)]
    fn assemble_hydrated(
        config: BatchConfig,
        explainer: WarmExplainer,
        ctx: ExplainContext,
        clf: CountingClassifier<C>,
        warm: Dataset,
        seed: u64,
        reg: &MetricsRegistry,
        parts: SnapshotParts,
    ) -> WarmEngine<C> {
        let SnapshotParts {
            base,
            mut store,
            caches,
        } = parts;
        register_standard(reg);
        store.set_match_engine(config.match_engine);
        store.attach_obs(reg);
        let table = ctx.discretizer().encode_dataset(&warm);
        let shahin = ShahinBatch::new(config).with_obs(reg);
        let anchor = match &explainer {
            WarmExplainer::Anchor(a) => Some(a.clone().with_obs(reg)),
            _ => None,
        };
        WarmEngine {
            shahin,
            ctx,
            clf,
            warm,
            explainer,
            anchor,
            caches,
            seed,
            base,
            state: RwLock::new(WarmState { table, store }),
            epoch: AtomicU64::new(0),
            obs: reg.clone(),
            tenant: None,
        }
    }

    /// Explains one micro-batch against the warm repository, spreading
    /// the requests over [`BatchConfig::n_threads`] workers. Outcomes are
    /// returned in request order; a quarantined tuple fails only its own
    /// slot. Rows must be `< n_rows()` (the serve layer validates before
    /// admission; this panics on out-of-range rows).
    pub fn explain(&self, requests: &[WarmRequest]) -> Vec<WarmOutcome> {
        let n_threads = self.shahin.config.resolved_n_threads();
        let mut assign = vec![0usize; requests.len()];
        for (worker, (start, end)) in chunks(requests.len(), n_threads).into_iter().enumerate() {
            for a in &mut assign[start..end] {
                *a = worker;
            }
        }
        self.explain_assigned(requests, &assign, n_threads)
    }

    /// [`WarmEngine::explain`] with an explicit request→worker
    /// assignment: request `i` is explained by worker `assign[i]`
    /// (`assign[i] < n_workers`). The serve cluster routes each request
    /// to the worker its row's shard hashes to, so a row's store
    /// neighborhood stays on one worker's cache. Outcomes are returned
    /// in request order and are bit-identical to [`WarmEngine::explain`]
    /// under *any* assignment: each tuple's RNG stream is a function of
    /// its global row alone, and workers only read the shared state.
    pub fn explain_assigned(
        &self,
        requests: &[WarmRequest],
        assign: &[usize],
        n_workers: usize,
    ) -> Vec<WarmOutcome> {
        assert_eq!(assign.len(), requests.len(), "one worker per request");
        let state = self.state.read();
        let table = &state.table;
        let store = &state.store;
        let epoch = self.epoch.load(Ordering::Relaxed);
        let retrieve_hist = self.obs.span_histogram(names::SPAN_RETRIEVE_MATCH);
        let surrogate_hist = self.obs.span_histogram(names::SPAN_SURROGATE_FIT);
        let prov = ProvenanceCtx::new(&self.obs, "Shahin-Serve", self.explainer.name())
            .with_tenant(self.tenant.clone());
        let quarantine = QuarantineObs::new(&self.obs);
        let traces = self.obs.trace_sink();

        let mut by_worker: Vec<Vec<usize>> = vec![Vec::new(); n_workers.max(1)];
        for (i, &worker) in assign.iter().enumerate() {
            by_worker[worker].push(i);
        }
        let mut results: Vec<Vec<(usize, TupleOutcome<Explanation>)>> =
            (0..by_worker.len()).map(|_| Vec::new()).collect();
        std::thread::scope(|scope| {
            for (worker, (idxs, out)) in by_worker.iter().zip(results.iter_mut()).enumerate() {
                if idxs.is_empty() {
                    continue;
                }
                let retrieve_hist = retrieve_hist.clone();
                let surrogate_hist = surrogate_hist.clone();
                let prov = prov.clone();
                let quarantine = quarantine.clone();
                let traces = traces.clone();
                std::thread::Builder::new()
                    .name(format!("worker-{worker}"))
                    .spawn_scoped(scope, move || {
                        let mut scratch = MatchScratch::new();
                        for &i in idxs {
                            out.push((
                                i,
                                self.explain_one(
                                    requests[i],
                                    epoch,
                                    table,
                                    store,
                                    &retrieve_hist,
                                    &surrogate_hist,
                                    &prov,
                                    &quarantine,
                                    traces.as_deref(),
                                    &mut scratch,
                                ),
                            ));
                        }
                    })
                    .expect("spawn warm worker");
            }
        });

        let mut slots: Vec<Option<TupleOutcome<Explanation>>> =
            (0..requests.len()).map(|_| None).collect();
        for (i, outcome) in results.into_iter().flatten() {
            slots[i] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|slot| match slot.expect("every request visited") {
                TupleOutcome::Ok(explanation) => WarmOutcome::Ok {
                    explanation,
                    degraded: false,
                },
                TupleOutcome::Degraded(explanation) => WarmOutcome::Ok {
                    explanation,
                    degraded: true,
                },
                TupleOutcome::Failed(failure) => WarmOutcome::Failed(failure),
            })
            .collect()
    }

    /// One guarded tuple: the offline parallel drivers' worker body,
    /// keyed on the *global* warm-set row so the explanation is identical
    /// to the offline run regardless of micro-batch composition.
    #[allow(clippy::too_many_arguments)]
    fn explain_one(
        &self,
        req: WarmRequest,
        epoch: u64,
        table: &DiscreteTable,
        store: &PerturbationStore,
        retrieve_hist: &crate::obs::Histogram,
        surrogate_hist: &crate::obs::Histogram,
        prov: &ProvenanceCtx,
        quarantine: &QuarantineObs,
        traces: Option<&TraceSink>,
        scratch: &mut MatchScratch,
    ) -> TupleOutcome<Explanation> {
        let row = req.row;
        let prov = prov.tagged(req.request_id, req.trace);
        // Armed only when the request carries a trace id AND the registry
        // has a sink; the untraced path pays one `Option` check per stage.
        // Tracing must never perturb the explanation: it takes no RNG
        // draws and the per-tuple seed stays a function of the row alone.
        let trace = match (traces, req.trace) {
            (Some(sink), Some(id)) => Some((sink, id)),
            _ => None,
        };
        let (ctx, clf) = (&self.ctx, &self.clf);
        guard_tuple(row as u32, quarantine, |incidents0| {
            let t0 = prov.start();
            let codes = table.row(row);
            let retrieve = retrieve_hist.start();
            let stage_t = trace.map(|_| Instant::now());
            let (matched, lookup) = store.matching_read_stats(&codes, scratch);
            if let Some((sink, id)) = trace {
                let start = stage_t.expect("armed with the trace");
                sink.push(
                    id,
                    StageSpan {
                        name: "retrieve",
                        start,
                        dur: start.elapsed(),
                        counters: TraceCounters {
                            store_hits: lookup.hits,
                            store_misses: lookup.misses,
                            ..TraceCounters::default()
                        },
                    },
                );
            }
            drop(retrieve);
            let instance = self.warm.instance(row);
            match &self.explainer {
                WarmExplainer::Lime(lime) => {
                    let mut tuple_rng = StdRng::seed_from_u64(per_tuple_seed(self.seed, row));
                    let pooled = matched.iter().flat_map(|&id| store.samples(id).iter());
                    let _fit = surrogate_hist.start();
                    let stage_t = trace.map(|_| Instant::now());
                    let (weights, reuse) = lime.explain_with_reused_counted(
                        ctx,
                        clf,
                        &instance,
                        pooled,
                        &mut tuple_rng,
                    );
                    if let Some((sink, id)) = trace {
                        push_explain_stages(
                            sink,
                            id,
                            stage_t.expect("armed with the trace"),
                            reuse.reused,
                            reuse.fresh,
                            reuse.invocations,
                        );
                    }
                    let degraded =
                        reuse.clamped > 0 || shahin_model::degraded_incidents() > incidents0;
                    prov.record(
                        row as u32,
                        epoch,
                        &matched,
                        lookup,
                        reuse.reused,
                        reuse.fresh,
                        reuse.invocations,
                        (0, 0),
                        degraded,
                        t0,
                    );
                    (Explanation::Weights(weights), degraded)
                }
                WarmExplainer::Anchor(_) => {
                    let anchor = self
                        .anchor
                        .as_ref()
                        .expect("anchor engine has a wired clone");
                    let stage_t = trace.map(|_| Instant::now());
                    let target = clf.predict(&instance);
                    if let Some((sink, id)) = trace {
                        let start = stage_t.expect("armed with the trace");
                        sink.push(
                            id,
                            StageSpan {
                                name: "classify",
                                start,
                                dur: start.elapsed(),
                                counters: TraceCounters {
                                    invocations: 1,
                                    ..TraceCounters::default()
                                },
                            },
                        );
                    }
                    let mut sampler = CachingRuleSampler::new(
                        ctx,
                        clf,
                        store,
                        &matched,
                        &self.caches,
                        per_tuple_seed(self.seed, row),
                    );
                    let stage_t = trace.map(|_| Instant::now());
                    let explanation = anchor.explain_with_sampler(&codes, target, &mut sampler);
                    let stats = sampler.stats();
                    if let Some((sink, id)) = trace {
                        let start = stage_t.expect("armed with the trace");
                        sink.push(
                            id,
                            StageSpan {
                                name: "explain",
                                start,
                                dur: start.elapsed(),
                                counters: TraceCounters {
                                    samples_reused: stats.reused,
                                    samples_fresh: stats.fresh,
                                    invocations: stats.fresh,
                                    ..TraceCounters::default()
                                },
                            },
                        );
                    }
                    let degraded = shahin_model::degraded_incidents() > incidents0;
                    prov.record(
                        row as u32,
                        epoch,
                        &matched,
                        lookup,
                        stats.reused,
                        stats.fresh,
                        stats.fresh + 1,
                        (stats.cache_hits, stats.cache_misses),
                        degraded,
                        t0,
                    );
                    (Explanation::Rule(explanation), degraded)
                }
                WarmExplainer::Shap(shap) => {
                    let mut tuple_rng = StdRng::seed_from_u64(per_tuple_seed(self.seed, row));
                    let pooled = pool_coalitions(store, &matched, shap.params.n_samples / 2);
                    let mut source = StoreCoalitionSource::new(store, matched.clone());
                    let _fit = surrogate_hist.start();
                    let stage_t = trace.map(|_| Instant::now());
                    let (weights, reuse) = shap.explain_with_counted(
                        ctx,
                        clf,
                        &instance,
                        self.base,
                        pooled,
                        &mut source,
                        &mut tuple_rng,
                    );
                    if let Some((sink, id)) = trace {
                        push_explain_stages(
                            sink,
                            id,
                            stage_t.expect("armed with the trace"),
                            reuse.reused,
                            reuse.fresh,
                            reuse.invocations,
                        );
                    }
                    let degraded =
                        reuse.clamped > 0 || shahin_model::degraded_incidents() > incidents0;
                    prov.record(
                        row as u32,
                        epoch,
                        &matched,
                        lookup,
                        reuse.reused,
                        reuse.fresh,
                        reuse.invocations,
                        (0, 0),
                        degraded,
                        t0,
                    );
                    (Explanation::Weights(weights), degraded)
                }
            }
        })
    }
}

/// Deposits the surrogate explainers' stage spans for one traced tuple:
/// an `explain` span timing the whole surrogate fit (sample top-up +
/// regression) carrying the reuse counters, plus a zero-length `classify`
/// marker at its start carrying the classifier-invocation attribution.
/// LIME/SHAP drive the classifier from inside the fit, so classify wall
/// time is not separable — only Anchor's direct target probe gets a timed
/// classify span — but the invocation *count* is exact either way.
fn push_explain_stages(
    sink: &TraceSink,
    id: u64,
    start: Instant,
    reused: u64,
    fresh: u64,
    invocations: u64,
) {
    let dur = start.elapsed();
    sink.push(
        id,
        StageSpan {
            name: "classify",
            start,
            dur: Duration::ZERO,
            counters: TraceCounters {
                invocations,
                ..TraceCounters::default()
            },
        },
    );
    sink.push(
        id,
        StageSpan {
            name: "explain",
            start,
            dur,
            counters: TraceCounters {
                samples_reused: reused,
                samples_fresh: fresh,
                ..TraceCounters::default()
            },
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use shahin_explain::LimeParams;
    use shahin_model::MajorityClass;
    use shahin_tabular::{train_test_split, DatasetPreset};

    fn setup() -> (ExplainContext, CountingClassifier<MajorityClass>, Dataset) {
        let (data, labels) = DatasetPreset::Recidivism.spec(0.05).generate(5);
        let mut rng = StdRng::seed_from_u64(5);
        let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
        let ctx = ExplainContext::fit(&split.train, 300, &mut rng);
        let clf = CountingClassifier::new(MajorityClass::fit(&split.train_labels));
        let rows: Vec<usize> = (0..30.min(split.test.n_rows())).collect();
        (ctx, clf, split.test.select(&rows))
    }

    fn lime() -> LimeExplainer {
        LimeExplainer::new(LimeParams {
            n_samples: 60,
            ..Default::default()
        })
    }

    fn engine(n_threads: usize) -> (WarmEngine<MajorityClass>, Dataset, ExplainContext) {
        let (ctx, clf, warm) = setup();
        let cfg = BatchConfig {
            n_threads: Some(n_threads),
            ..Default::default()
        };
        let reg = MetricsRegistry::new();
        let eng = WarmEngine::prime(
            cfg,
            WarmExplainer::Lime(lime()),
            ctx.clone(),
            clf,
            warm.clone(),
            11,
            &reg,
        );
        (eng, warm, ctx)
    }

    #[test]
    fn warm_engine_matches_offline_batch_parallel_for_any_micro_batching() {
        let (ctx, clf, warm) = setup();
        let offline = ShahinBatch::new(BatchConfig {
            n_threads: Some(2),
            ..Default::default()
        })
        .explain_lime_parallel(&ctx, &clf, &warm, &lime(), 11);

        for n_threads in [1usize, 4] {
            let (eng, _, _) = engine(n_threads);
            // Shuffled rows, ragged micro-batches: results must only
            // depend on the global row index.
            let order: Vec<usize> = (0..warm.n_rows()).rev().collect();
            let mut served: Vec<Option<Explanation>> = vec![None; warm.n_rows()];
            for chunk in order.chunks(7) {
                let reqs: Vec<WarmRequest> = chunk
                    .iter()
                    .map(|&row| WarmRequest {
                        row,
                        request_id: row as u64,
                        trace: None,
                    })
                    .collect();
                for (req, out) in reqs.iter().zip(eng.explain(&reqs)) {
                    match out {
                        WarmOutcome::Ok { explanation, .. } => served[req.row] = Some(explanation),
                        WarmOutcome::Failed(f) => panic!("unexpected failure: {f:?}"),
                    }
                }
            }
            for (row, offline_w) in offline.explanations.iter().enumerate() {
                let w = served[row].as_ref().unwrap().weights().unwrap();
                assert_eq!(w, offline_w, "row {row}, {n_threads} threads");
            }
        }
    }

    #[test]
    fn assigned_explains_are_bit_identical_for_any_partition() {
        let (eng, warm, _) = engine(2);
        let reqs: Vec<WarmRequest> = (0..warm.n_rows())
            .map(|row| WarmRequest {
                row,
                request_id: row as u64,
                trace: None,
            })
            .collect();
        let weights_of = |outs: Vec<WarmOutcome>| -> Vec<shahin_explain::FeatureWeights> {
            outs.into_iter()
                .map(|o| match o {
                    WarmOutcome::Ok { explanation, .. } => explanation.weights().unwrap().clone(),
                    WarmOutcome::Failed(f) => panic!("{f:?}"),
                })
                .collect()
        };
        let baseline = weights_of(eng.explain(&reqs));
        // Signature-derived sharding, round-robin, and everything-on-one
        // must all reproduce the default path bit-for-bit.
        for n_workers in [1usize, 3, 8] {
            let sharded: Vec<usize> = reqs
                .iter()
                .map(|r| (eng.row_signature(r.row) % n_workers as u64) as usize)
                .collect();
            let round_robin: Vec<usize> = (0..reqs.len()).map(|i| i % n_workers).collect();
            for assign in [sharded, round_robin] {
                let got = weights_of(eng.explain_assigned(&reqs, &assign, n_workers));
                assert_eq!(got, baseline, "partition changed results at {n_workers}");
            }
        }
    }

    #[test]
    fn row_signatures_are_stable_and_refresh_invariant() {
        let (eng, warm, _) = engine(1);
        let sigs = eng.row_signatures();
        assert_eq!(sigs.len(), warm.n_rows());
        for (row, &sig) in sigs.iter().enumerate() {
            assert_eq!(eng.row_signature(row), sig, "row {row} signature unstable");
        }
        assert!(
            sigs.iter().collect::<std::collections::HashSet<_>>().len() > 1,
            "signatures should separate rows with different itemset families"
        );
        eng.refresh();
        assert_eq!(eng.row_signatures(), sigs, "refresh changed signatures");
    }

    #[test]
    fn repeated_requests_for_one_row_are_identical_and_refresh_preserves_results() {
        let (eng, _, _) = engine(2);
        let req = [WarmRequest {
            row: 3,
            request_id: 1,
            trace: None,
        }];
        let first = match &eng.explain(&req)[0] {
            WarmOutcome::Ok { explanation, .. } => explanation.weights().unwrap().clone(),
            WarmOutcome::Failed(f) => panic!("{f:?}"),
        };
        eng.refresh();
        assert_eq!(eng.epoch(), 1);
        let second = match &eng.explain(&req)[0] {
            WarmOutcome::Ok { explanation, .. } => explanation.weights().unwrap().clone(),
            WarmOutcome::Failed(f) => panic!("{f:?}"),
        };
        assert_eq!(first, second, "refresh must not change served results");
    }

    #[test]
    fn provenance_records_carry_request_ids_and_epochs() {
        use shahin_obs::ProvenanceSink;
        use std::sync::Arc;

        let (ctx, clf, warm) = setup();
        let reg = MetricsRegistry::new();
        let sink = Arc::new(ProvenanceSink::new());
        reg.attach_provenance_sink(Arc::clone(&sink));
        let traces = Arc::new(TraceSink::new());
        reg.attach_trace_sink(Arc::clone(&traces));
        let eng = WarmEngine::prime(
            BatchConfig::default(),
            WarmExplainer::Lime(lime()),
            ctx,
            clf,
            warm,
            11,
            &reg,
        );
        eng.explain(&[
            WarmRequest {
                row: 0,
                request_id: 100,
                trace: Some(40),
            },
            WarmRequest {
                row: 1,
                request_id: 101,
                trace: None,
            },
        ]);
        let recs = sink.records();
        assert_eq!(recs.len(), 2);
        let requests: Vec<Option<u64>> = recs.iter().map(|r| r.request).collect();
        assert!(requests.contains(&Some(100)) && requests.contains(&Some(101)));
        for r in &recs {
            assert_eq!(&*r.method, "Shahin-Serve");
            assert_eq!(r.epoch, 0);
            assert!(r.to_json().contains("\"request\": "));
        }

        // The traced request's lineage joins against its trace id; the
        // untraced one carries none and deposits no stage spans.
        let traced = recs.iter().find(|r| r.request == Some(100)).unwrap();
        assert_eq!(traced.trace_id, Some(40));
        let untraced = recs.iter().find(|r| r.request == Some(101)).unwrap();
        assert_eq!(untraced.trace_id, None);
        let stages = traces.take(40);
        let names: Vec<&str> = stages.iter().map(|s| s.name).collect();
        assert_eq!(names, ["retrieve", "classify", "explain"]);
        let mut totals = TraceCounters::default();
        for s in &stages {
            totals.absorb(&s.counters);
        }
        assert_eq!(totals.invocations, traced.invocations);
        assert_eq!(totals.samples_reused, traced.samples_reused);
        assert_eq!(totals.samples_fresh, traced.samples_fresh);
        assert_eq!(totals.store_misses, traced.store_misses);
        assert!(traces.is_empty(), "row 1 was untraced — nothing left over");
    }

    #[test]
    fn tracing_does_not_change_served_explanations() {
        use std::sync::Arc;

        let (ctx, clf, warm) = setup();
        let reg = MetricsRegistry::new();
        let traces = Arc::new(TraceSink::new());
        reg.attach_trace_sink(Arc::clone(&traces));
        let eng = WarmEngine::prime(
            BatchConfig {
                n_threads: Some(2),
                ..Default::default()
            },
            WarmExplainer::Lime(lime()),
            ctx,
            clf,
            warm,
            11,
            &reg,
        );
        let bare = [WarmRequest {
            row: 5,
            request_id: 1,
            trace: None,
        }];
        let traced = [WarmRequest {
            row: 5,
            request_id: 2,
            trace: Some(9),
        }];
        let w_bare = match &eng.explain(&bare)[0] {
            WarmOutcome::Ok { explanation, .. } => explanation.weights().unwrap().clone(),
            WarmOutcome::Failed(f) => panic!("{f:?}"),
        };
        let w_traced = match &eng.explain(&traced)[0] {
            WarmOutcome::Ok { explanation, .. } => explanation.weights().unwrap().clone(),
            WarmOutcome::Failed(f) => panic!("{f:?}"),
        };
        assert_eq!(w_bare, w_traced, "tracing must not perturb explanations");
        let stages = traces.take(9);
        assert_eq!(stages.len(), 3);
        assert!(stages.iter().all(|s| s.dur <= s.start.elapsed()));
    }

    fn explain_all(
        eng: &WarmEngine<MajorityClass>,
        n_rows: usize,
    ) -> Vec<shahin_explain::FeatureWeights> {
        let reqs: Vec<WarmRequest> = (0..n_rows)
            .map(|row| WarmRequest {
                row,
                request_id: row as u64,
                trace: None,
            })
            .collect();
        eng.explain(&reqs)
            .into_iter()
            .map(|out| match out {
                WarmOutcome::Ok { explanation, .. } => explanation.weights().unwrap().clone(),
                WarmOutcome::Failed(f) => panic!("{f:?}"),
            })
            .collect()
    }

    #[test]
    fn hydrated_engine_is_bit_identical_to_its_donor_at_any_worker_count() {
        let (ctx, clf, warm) = setup();
        let reg = MetricsRegistry::new();
        let donor = WarmEngine::prime(
            BatchConfig {
                n_threads: Some(2),
                ..Default::default()
            },
            WarmExplainer::Lime(lime()),
            ctx.clone(),
            clf,
            warm.clone(),
            11,
            &reg,
        );
        // Touch LRU state so non-trivial clocks ride along in the dump.
        let donor_served = explain_all(&donor, warm.n_rows());
        let bytes = donor.snapshot_bytes();
        let mut explain_invocations: Vec<u64> = Vec::new();

        for n_threads in [1usize, 2, 8] {
            // setup() is deterministic, so this classifier is identical to
            // the donor's (hydration itself never invokes it).
            let (_, fresh_clf, _) = setup();
            let reg = MetricsRegistry::new();
            let eng = WarmEngine::prime_from_snapshot(
                BatchConfig {
                    n_threads: Some(n_threads),
                    ..Default::default()
                },
                WarmExplainer::Lime(lime()),
                ctx.clone(),
                fresh_clf,
                warm.clone(),
                11,
                &reg,
                &bytes,
            )
            .expect("snapshot hydrates");
            assert_eq!(
                eng.invocations(),
                0,
                "hydration must not invoke the classifier"
            );
            assert_eq!(eng.store_entries(), donor.store_entries());
            assert_eq!(eng.store_bytes(), donor.store_bytes());
            let served = explain_all(&eng, warm.n_rows());
            assert_eq!(
                served, donor_served,
                "hydrated explanations differ at {n_threads} workers"
            );
            explain_invocations.push(eng.invocations());
            // The hydrated engine re-dumps to the donor's exact bytes.
            assert_eq!(eng.snapshot_bytes(), bytes);
        }
        assert!(
            explain_invocations.windows(2).all(|w| w[0] == w[1]),
            "explain invocations must be worker-count invariant: {explain_invocations:?}"
        );
    }

    #[test]
    fn hydration_rejects_every_injected_corruption_class() {
        use crate::snapshot::fault::{corrupt, Corruption};

        let (ctx, clf, warm) = setup();
        let reg = MetricsRegistry::new();
        let donor = WarmEngine::prime(
            BatchConfig::default(),
            WarmExplainer::Lime(lime()),
            ctx.clone(),
            clf,
            warm.clone(),
            11,
            &reg,
        );
        let bytes = donor.snapshot_bytes();
        let hydrate = |damaged: &[u8], seed: u64| {
            WarmEngine::prime_from_snapshot(
                BatchConfig::default(),
                WarmExplainer::Lime(lime()),
                ctx.clone(),
                CountingClassifier::new(MajorityClass::fit(&[1])),
                warm.clone(),
                seed,
                &MetricsRegistry::new(),
                damaged,
            )
        };
        for seed in 0..10u64 {
            for class in Corruption::ALL {
                let damaged = corrupt(&bytes, class, seed);
                let err = match hydrate(&damaged, 11) {
                    Ok(_) => panic!("{class:?} seed {seed} was accepted"),
                    Err(e) => e,
                };
                match class {
                    Corruption::StaleVersion => assert_eq!(err.kind(), "wrong_version"),
                    Corruption::TornWrite | Corruption::Truncation => assert!(
                        matches!(err.kind(), "truncated" | "bad_magic" | "crc_mismatch"),
                        "{class:?} seed {seed} -> {}",
                        err.kind()
                    ),
                    Corruption::BitFlip => assert!(
                        matches!(err.kind(), "crc_mismatch" | "truncated" | "corrupt"),
                        "{class:?} seed {seed} -> {}",
                        err.kind()
                    ),
                }
            }
        }
        // A different prime seed is a different config fingerprint: valid
        // bytes, wrong state — rejected before any payload is read.
        let err = hydrate(&bytes, 12).err().expect("seed skew must be rejected");
        assert_eq!(err.kind(), "fingerprint_mismatch");
        // And the undamaged snapshot still hydrates.
        assert!(hydrate(&bytes, 11).is_ok());
    }

    #[test]
    fn write_snapshot_persists_atomically_and_round_trips() {
        let (ctx, clf, warm) = setup();
        let reg = MetricsRegistry::new();
        let donor = WarmEngine::prime(
            BatchConfig::default(),
            WarmExplainer::Lime(lime()),
            ctx.clone(),
            clf,
            warm.clone(),
            11,
            &reg,
        );
        let dir = std::env::temp_dir().join(format!("shahin_warm_snap_{}", std::process::id()));
        let path = dir.join("nested/warm.snap");
        let written = donor.write_snapshot(&path).expect("snapshot writes");
        let on_disk = std::fs::read(&path).expect("snapshot file exists");
        assert_eq!(on_disk.len() as u64, written);
        assert_eq!(on_disk, donor.snapshot_bytes());
        let eng = WarmEngine::prime_from_snapshot(
            BatchConfig::default(),
            WarmExplainer::Lime(lime()),
            ctx,
            CountingClassifier::new(MajorityClass::fit(&[1])),
            warm,
            11,
            &MetricsRegistry::new(),
            &on_disk,
        )
        .expect("on-disk snapshot hydrates");
        assert_eq!(eng.store_entries(), donor.store_entries());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_rows_fail_only_their_own_slot() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;

        // Healthy while the store is primed; panics for a window of calls
        // armed afterwards, so a prefix of the micro-batch's rows is
        // quarantined while later rows explain normally.
        struct TrapAfter {
            calls: AtomicU64,
            trap_at: AtomicU64,
        }
        impl Classifier for TrapAfter {
            fn predict_proba(&self, _inst: &[shahin_tabular::Feature]) -> f64 {
                let n = self.calls.fetch_add(1, Ordering::Relaxed);
                let trap_at = self.trap_at.load(Ordering::Relaxed);
                // A panic unwinds out on a row's first call, so each
                // quarantined row consumes one call of this window.
                if n >= trap_at && n < trap_at + 3 {
                    panic!("trap sprung");
                }
                0.7
            }
        }

        let (ctx, _clf, warm) = setup();
        let trap = Arc::new(TrapAfter {
            calls: AtomicU64::new(0),
            trap_at: AtomicU64::new(u64::MAX),
        });
        let reg = MetricsRegistry::new();
        let eng = WarmEngine::prime(
            BatchConfig {
                n_threads: Some(1),
                ..Default::default()
            },
            WarmExplainer::Lime(lime()),
            ctx,
            CountingClassifier::new(Arc::clone(&trap)),
            warm.clone(),
            11,
            &reg,
        );
        trap.trap_at
            .store(trap.calls.load(Ordering::Relaxed), Ordering::Relaxed);
        let reqs: Vec<WarmRequest> = (0..6)
            .map(|row| WarmRequest {
                row,
                request_id: row as u64,
                trace: None,
            })
            .collect();
        let outs = eng.explain(&reqs);
        assert_eq!(outs.len(), reqs.len());
        let failed = outs
            .iter()
            .filter(|o| matches!(o, WarmOutcome::Failed(_)))
            .count();
        assert!(failed >= 1, "the armed trap must quarantine a row");
        assert!(
            failed < reqs.len(),
            "rows after the trap window must survive"
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counter(names::RESILIENCE_TUPLES_FAILED), failed as u64);
    }
}
