//! A minimal JSON reader for the benchmark artifacts (`BENCH_*.json`,
//! metrics snapshots). The parser lives in [`shahin_obs::json`] — one
//! hand-rolled JSON implementation for the whole workspace (exporters,
//! this reader, and the serve wire protocol) — and is re-exported here so
//! the bench binaries keep their historical import path.

pub use shahin_obs::json::{escape, fmt_f64, Json};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_metrics_snapshot() {
        use shahin::{register_standard, MetricsRegistry};
        let reg = MetricsRegistry::new();
        register_standard(&reg);
        let v = Json::parse(&reg.snapshot().to_json()).expect("snapshot parses");
        assert!(v.at(&["counters", "store.lookups"]).is_some());
        assert!(v.at(&["counters", "serve.requests"]).is_some());
        assert!(v.at(&["gauges", "provenance.records"]).is_some());
        assert!(v.at(&["gauges", "serve.queue_depth"]).is_some());
    }

    #[test]
    fn shared_helpers_are_reachable_through_the_reexport() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(fmt_f64(2.5), "2.5");
    }
}
