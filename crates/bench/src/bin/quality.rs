//! §4.2 "Explanation Quality": fidelity of Shahin's explanations relative
//! to the sequential baseline.
//!
//! The paper's findings to check: identical feature rankings for all three
//! explainers (average Kendall-τ ≈ 1); Anchor and SHAP explanations
//! essentially identical; LIME's maximum weight deviation small (≤ 0.1,
//! comparable to the seed-to-seed variation of LIME itself).

use shahin::runner::{attribution_fidelity, rule_agreement};
use shahin::{run, top_k_overlap, ExplainerKind, Method};
use shahin_bench::{base_seed, bench_anchor, f2, row, scaled, workload};
use shahin_explain::{KernelShapExplainer, LimeExplainer, LimeParams, ShapParams};
use shahin_linalg::euclidean_distance;
use shahin_tabular::DatasetPreset;

fn main() {
    let seed = base_seed();
    let n = scaled(200);
    let w = workload(DatasetPreset::CensusIncome, 1.0, seed);
    let batch = w.batch(n);

    println!("# Explanation Quality: Shahin vs Sequential (Census-Income, batch {n})");
    println!(
        "{}",
        row(&[
            "explainer".into(),
            "variant".into(),
            "avg Euclidean".into(),
            "max Euclidean".into(),
            "avg Kendall-tau".into(),
            "top-5 overlap".into(),
        ])
    );

    // Quality runs use larger sample budgets than the speed sweeps so the
    // baseline itself is stable enough to compare against (the paper's
    // Python defaults are larger still: LIME 5000, SHAP ~2048).
    let lime = ExplainerKind::Lime(LimeExplainer::new(LimeParams {
        n_samples: 1000,
        ..Default::default()
    }));
    let shap = ExplainerKind::Shap(KernelShapExplainer::new(ShapParams {
        n_samples: 512,
        ..Default::default()
    }));
    for (kind, label) in [(lime, "LIME"), (shap, "SHAP")] {
        let seq = run(&Method::Sequential, &kind, &w.ctx, &w.clf, &batch, seed);
        // Seed-to-seed variation of the baseline itself — the paper's
        // yardstick for LIME's deviation.
        let seq2 = run(
            &Method::Sequential,
            &kind,
            &w.ctx,
            &w.clf,
            &batch,
            seed ^ 0x1234,
        );
        for (variant, r) in [
            ("self (reseeded)", &seq2),
            (
                "Shahin-Batch",
                &run(
                    &Method::Batch(Default::default()),
                    &kind,
                    &w.ctx,
                    &w.clf,
                    &batch,
                    seed,
                ),
            ),
            (
                "Shahin-Streaming",
                &run(
                    &Method::Streaming(Default::default()),
                    &kind,
                    &w.ctx,
                    &w.clf,
                    &batch,
                    seed,
                ),
            ),
        ] {
            let (avg_d, avg_tau) = attribution_fidelity(&seq.explanations, &r.explanations);
            let max_d = seq
                .explanations
                .iter()
                .zip(&r.explanations)
                .map(|(a, b)| {
                    euclidean_distance(
                        &a.weights().expect("weights").weights,
                        &b.weights().expect("weights").weights,
                    )
                })
                .fold(0.0f64, f64::max);
            let seq_w: Vec<_> = seq
                .explanations
                .iter()
                .map(|e| e.weights().expect("weights").clone())
                .collect();
            let r_w: Vec<_> = r
                .explanations
                .iter()
                .map(|e| e.weights().expect("weights").clone())
                .collect();
            let overlap = top_k_overlap(&seq_w, &r_w, 5);
            println!(
                "{}",
                row(&[
                    label.into(),
                    variant.into(),
                    format!("{avg_d:.4}"),
                    format!("{max_d:.4}"),
                    f2(avg_tau),
                    format!("{:.0}%", 100.0 * overlap),
                ])
            );
        }
    }

    // Anchor: rule agreement + precision/coverage deltas.
    let kind = ExplainerKind::Anchor(bench_anchor());
    let seq = run(&Method::Sequential, &kind, &w.ctx, &w.clf, &batch, seed);
    for (variant, r) in [
        (
            "Shahin-Batch",
            run(
                &Method::Batch(Default::default()),
                &kind,
                &w.ctx,
                &w.clf,
                &batch,
                seed,
            ),
        ),
        (
            "Shahin-Streaming",
            run(
                &Method::Streaming(Default::default()),
                &kind,
                &w.ctx,
                &w.clf,
                &batch,
                seed,
            ),
        ),
    ] {
        let agree = rule_agreement(&seq.explanations, &r.explanations);
        let avg_prec_delta: f64 = seq
            .explanations
            .iter()
            .zip(&r.explanations)
            .map(|(a, b)| {
                (a.rule().expect("rule").precision - b.rule().expect("rule").precision).abs()
            })
            .sum::<f64>()
            / seq.explanations.len() as f64;
        println!(
            "{}",
            row(&[
                "Anchor".into(),
                variant.into(),
                format!("rule agreement {:.1}%", 100.0 * agree),
                format!("avg |precision delta| {avg_prec_delta:.4}"),
                String::new(),
            ])
        );
    }
}
