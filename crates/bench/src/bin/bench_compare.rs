//! Perf-regression gate: diffs a freshly produced benchmark artifact
//! against a committed baseline and exits non-zero when the run regressed.
//!
//! ```text
//! bench_compare parallel baselines/ci/BENCH_parallel.json BENCH_parallel.json
//! bench_compare obs      baselines/ci/BENCH_obs.json      BENCH_obs.json
//! ```
//!
//! Checks, per artifact kind:
//!
//! * `parallel` — workload knobs (dataset, batch, latency, seed) must match
//!   the baseline exactly, sequential invocation counts must match exactly
//!   for every explainer (the single-threaded drivers are deterministic),
//!   parallel LIME/SHAP invocations must match exactly, parallel Anchor
//!   invocations may drift within `SHAHIN_CMP_TOL_ANCHOR_PCT` (threads race
//!   to publish precision evidence), wall times may grow at most
//!   `SHAHIN_CMP_TOL_WALL_PCT` and speedups shrink at most
//!   `SHAHIN_CMP_TOL_SPEEDUP_PCT`.
//! * `obs` — the fresh run's `overhead_pct` and `traced_overhead_pct` must
//!   stay under `budget_pct` plus `SHAHIN_CMP_TOL_OVERHEAD_PCT` extra
//!   points of slack, and the no-op wall may grow at most the wall
//!   tolerance over the baseline.
//! * `serve` — the warm server must beat the cold per-request arm within
//!   the fresh artifact itself (lower mean latency, higher store-hit
//!   rate, fewer invocations per request); hit rates and invocation
//!   counts must match the baseline exactly (the warm engine and the
//!   request schedule are deterministic), and warm mean latency /
//!   throughput may drift at most the wall tolerance.
//! * `obs_live` — the fresh run's live-scrape `overhead_pct` must stay
//!   under its own `budget_pct` plus `SHAHIN_CMP_TOL_OVERHEAD_PCT`
//!   extra slack, the scraper must have completed at least one poll,
//!   and scraped throughput may shrink at most the wall tolerance
//!   against the baseline.
//! * `trace` — the fresh run's request-tracing `overhead_pct` must stay
//!   under its own `budget_pct` plus the overhead slack, the traced
//!   server must have retained at least one trace, and traced
//!   throughput may shrink at most the wall tolerance against the
//!   baseline.
//! * `persist` — inside the fresh run, the restart drill must hold: the
//!   hydrated restart took zero classifier invocations, produced
//!   bit-identical explanations, and reached
//!   `SHAHIN_CMP_MIN_RESTART_SPEEDUP` (default 2.0) over the cold
//!   re-prime; deterministic quantities (snapshot size, restart and
//!   serve invocation counts, the explanation fingerprint) must match
//!   the baseline exactly; hydrated restart wall time may drift at most
//!   the wall tolerance.
//! * `tenancy` — the Zipf tenant mix (seed-derived) must reproduce the
//!   baseline exactly; inside the fresh run the FaaS lifecycle must
//!   hold: re-admitted tenants serve bit-identical explanations, every
//!   tenant cold-started, was evicted, and re-hydrated, the first-touch
//!   cold start dominates keepalive latency, and hydrated re-admission
//!   beats the cold start by `SHAHIN_CMP_MIN_HYDRATED_SPEEDUP` (default
//!   2.0); keepalive throughput and cold-start latency may drift at most
//!   the wall tolerance against the baseline.
//! * `layout` — inside the fresh run, both layout arms must agree
//!   bit-for-bit (invocations, explanation fingerprints, lookup counts;
//!   parallel Anchor invocations get the Anchor tolerance); deterministic
//!   cells must reproduce the baseline's invocation counts exactly; wall
//!   times may drift at most the wall tolerance; the artifact's best cell
//!   must reach `SHAHIN_CMP_MIN_MATCH_SPEEDUP` (default 1.5) on the
//!   `retrieve.match` span; and per explainer the best thread cell must
//!   reach `SHAHIN_CMP_MIN_WALL_SPEEDUP` (default 0.9) end-to-end.
//!
//! Tolerances are percentages read from the environment so CI can tighten
//! or relax them without a rebuild. Defaults are generous on wall time
//! (shared CI runners are noisy) and exact on everything deterministic.

use std::process::ExitCode;

use shahin_bench::env_f64;
use shahin_bench::json::Json;

/// Collected failures; the gate reports all of them before exiting.
struct Gate {
    failures: Vec<String>,
    checks: usize,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            failures: Vec::new(),
            checks: 0,
        }
    }

    fn check(&mut self, ok: bool, msg: String) {
        self.checks += 1;
        if ok {
            println!("  ok: {msg}");
        } else {
            println!("  REGRESSION: {msg}");
            self.failures.push(msg);
        }
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read benchmark artifact '{path}': {e}"))?;
    Json::parse(&text).map_err(|e| format!("'{path}' is not valid JSON: {e}"))
}

fn num(doc: &Json, path: &[&str], file: &str) -> Result<f64, String> {
    doc.at(path)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("'{file}' is missing numeric field {}", path.join(".")))
}

/// The workload knobs must match or every other comparison is meaningless.
fn check_same_workload(
    gate: &mut Gate,
    base: &Json,
    fresh: &Json,
    keys: &[&str],
) -> Result<(), String> {
    for key in keys {
        let (b, f) = (base.get(key), fresh.get(key));
        if b != f {
            return Err(format!(
                "workload mismatch on '{key}' (baseline {b:?} vs fresh {f:?}); \
                 regenerate the baseline with the gate's knobs"
            ));
        }
        gate.check(true, format!("workload '{key}' matches ({f:?})"));
    }
    Ok(())
}

fn compare_parallel(gate: &mut Gate, base: &Json, fresh: &Json) -> Result<(), String> {
    let tol_wall = env_f64("SHAHIN_CMP_TOL_WALL_PCT", 75.0);
    let tol_speedup = env_f64("SHAHIN_CMP_TOL_SPEEDUP_PCT", 40.0);
    let tol_anchor = env_f64("SHAHIN_CMP_TOL_ANCHOR_PCT", 15.0);
    check_same_workload(
        gate,
        base,
        fresh,
        &["dataset", "batch", "latency_us", "seed"],
    )?;

    let explainers = base
        .get("explainers")
        .and_then(Json::as_obj)
        .ok_or("baseline has no 'explainers' object")?;
    for (name, base_e) in explainers {
        let fresh_e = fresh
            .at(&["explainers", name])
            .ok_or_else(|| format!("fresh run is missing explainer '{name}'"))?;
        let deterministic = name != "Anchor";

        let b_inv = num(base_e, &["sequential", "invocations"], "baseline")?;
        let f_inv = num(fresh_e, &["sequential", "invocations"], "fresh")?;
        gate.check(
            b_inv == f_inv,
            format!("{name} sequential invocations {f_inv} (baseline {b_inv})"),
        );
        let b_wall = num(base_e, &["sequential", "wall_s"], "baseline")?;
        let f_wall = num(fresh_e, &["sequential", "wall_s"], "fresh")?;
        gate.check(
            f_wall <= b_wall * (1.0 + tol_wall / 100.0),
            format!(
                "{name} sequential wall {f_wall:.3}s within {tol_wall}% of baseline {b_wall:.3}s"
            ),
        );

        let threads = base_e
            .get("threads")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("baseline '{name}' has no 'threads' object"))?;
        for (t, base_t) in threads {
            let fresh_t = fresh_e
                .at(&["threads", t])
                .ok_or_else(|| format!("fresh '{name}' is missing thread count {t}"))?;
            let b_inv = num(base_t, &["invocations"], "baseline")?;
            let f_inv = num(fresh_t, &["invocations"], "fresh")?;
            if deterministic {
                gate.check(
                    b_inv == f_inv,
                    format!("{name} x{t} invocations {f_inv} (baseline {b_inv}, exact)"),
                );
            } else {
                let drift = 100.0 * (f_inv - b_inv).abs() / b_inv.max(1.0);
                gate.check(
                    drift <= tol_anchor,
                    format!(
                        "{name} x{t} invocations {f_inv} within {tol_anchor}% of \
                         baseline {b_inv} (drift {drift:.1}%)"
                    ),
                );
            }
            let b_wall = num(base_t, &["wall_s"], "baseline")?;
            let f_wall = num(fresh_t, &["wall_s"], "fresh")?;
            gate.check(
                f_wall <= b_wall * (1.0 + tol_wall / 100.0),
                format!(
                    "{name} x{t} wall {f_wall:.3}s within {tol_wall}% of baseline {b_wall:.3}s"
                ),
            );
            let b_speedup = num(base_t, &["speedup"], "baseline")?;
            let f_speedup = num(fresh_t, &["speedup"], "fresh")?;
            gate.check(
                f_speedup >= b_speedup * (1.0 - tol_speedup / 100.0),
                format!(
                    "{name} x{t} speedup {f_speedup:.2}x within {tol_speedup}% of \
                     baseline {b_speedup:.2}x"
                ),
            );
        }
    }
    Ok(())
}

fn compare_obs(gate: &mut Gate, base: &Json, fresh: &Json) -> Result<(), String> {
    let tol_wall = env_f64("SHAHIN_CMP_TOL_WALL_PCT", 75.0);
    // Extra percentage points of slack on top of the bench's own budget:
    // the budget is a target measured on quiet hardware, and a shared CI
    // runner can add a point or two of scheduler noise to runs this short.
    let tol_overhead = env_f64("SHAHIN_CMP_TOL_OVERHEAD_PCT", 0.0);
    check_same_workload(
        gate,
        base,
        fresh,
        &["dataset", "explainer", "batch", "seed"],
    )?;

    let budget = num(fresh, &["budget_pct"], "fresh")? + tol_overhead;
    let overhead = num(fresh, &["overhead_pct"], "fresh")?;
    gate.check(
        overhead < budget,
        format!("instrumentation overhead {overhead:.2}% within the {budget}% budget"),
    );
    if let Some(traced) = fresh.get("traced_overhead_pct").and_then(Json::as_f64) {
        gate.check(
            traced < budget,
            format!("tracing-enabled overhead {traced:.2}% within the {budget}% budget"),
        );
    }
    let b_noop = num(base, &["noop_s"], "baseline")?;
    let f_noop = num(fresh, &["noop_s"], "fresh")?;
    gate.check(
        f_noop <= b_noop * (1.0 + tol_wall / 100.0),
        format!("no-op wall {f_noop:.3}s within {tol_wall}% of baseline {b_noop:.3}s"),
    );
    Ok(())
}

fn compare_serve(gate: &mut Gate, base: &Json, fresh: &Json) -> Result<(), String> {
    let tol_wall = env_f64("SHAHIN_CMP_TOL_WALL_PCT", 75.0);
    check_same_workload(
        gate,
        base,
        fresh,
        &["dataset", "requests", "concurrency", "warm_rows", "seed"],
    )?;

    // The headline claim, gated inside the fresh run itself: a warm
    // server beats cold per-request batch invocation.
    let warm_mean = num(fresh, &["warm", "mean_ms"], "fresh")?;
    let cold_mean = num(fresh, &["cold", "mean_ms"], "fresh")?;
    gate.check(
        warm_mean < cold_mean,
        format!("warm mean latency {warm_mean:.2}ms beats cold {cold_mean:.2}ms"),
    );
    let warm_hits = num(fresh, &["warm", "store_hit_rate"], "fresh")?;
    let cold_hits = num(fresh, &["cold", "store_hit_rate"], "fresh")?;
    gate.check(
        warm_hits > cold_hits,
        format!("warm store-hit rate {warm_hits:.3} beats cold {cold_hits:.3}"),
    );
    let warm_inv = num(fresh, &["warm", "invocations_per_request"], "fresh")?;
    let cold_inv = num(fresh, &["cold", "invocations_per_request"], "fresh")?;
    gate.check(
        warm_inv < cold_inv,
        format!("warm {warm_inv:.1} invocations/request beats cold {cold_inv:.1}"),
    );

    // Deterministic quantities must match the baseline exactly: the warm
    // store contents and the request schedule are seed-derived.
    for (arm, field) in [
        ("warm", "store_hit_rate"),
        ("warm", "invocations_per_request"),
        ("cold", "store_hit_rate"),
        ("cold", "invocations_per_request"),
    ] {
        let b = num(base, &[arm, field], "baseline")?;
        let f = num(fresh, &[arm, field], "fresh")?;
        gate.check(b == f, format!("{arm} {field} {f} (baseline {b}, exact)"));
    }

    // Latency and throughput are hardware-dependent: wall tolerance.
    let b_mean = num(base, &["warm", "mean_ms"], "baseline")?;
    gate.check(
        warm_mean <= b_mean * (1.0 + tol_wall / 100.0),
        format!("warm mean {warm_mean:.2}ms within {tol_wall}% of baseline {b_mean:.2}ms"),
    );
    let b_rps = num(base, &["warm", "throughput_rps"], "baseline")?;
    let f_rps = num(fresh, &["warm", "throughput_rps"], "fresh")?;
    gate.check(
        f_rps >= b_rps * (1.0 - tol_wall / 100.0),
        format!("warm throughput {f_rps:.1} req/s within {tol_wall}% of baseline {b_rps:.1}"),
    );
    Ok(())
}

fn compare_obs_live(gate: &mut Gate, base: &Json, fresh: &Json) -> Result<(), String> {
    let tol_wall = env_f64("SHAHIN_CMP_TOL_WALL_PCT", 75.0);
    // Same rationale as `obs`: the budget targets quiet hardware and a
    // shared CI runner can add noise to runs this short.
    let tol_overhead = env_f64("SHAHIN_CMP_TOL_OVERHEAD_PCT", 0.0);
    check_same_workload(
        gate,
        base,
        fresh,
        &[
            "dataset",
            "requests",
            "concurrency",
            "warm_rows",
            "seed",
            "reps",
        ],
    )?;

    let budget = num(fresh, &["budget_pct"], "fresh")? + tol_overhead;
    let overhead = num(fresh, &["overhead_pct"], "fresh")?;
    gate.check(
        overhead < budget,
        format!("live-scrape overhead {overhead:.2}% within the {budget}% budget"),
    );
    let scrapes = num(fresh, &["scrapes"], "fresh")?;
    gate.check(
        scrapes > 0.0,
        format!("scraper completed {scrapes} metrics polls"),
    );

    // Throughput is hardware-dependent: wall tolerance.
    let b_rps = num(base, &["scrape_rps"], "baseline")?;
    let f_rps = num(fresh, &["scrape_rps"], "fresh")?;
    gate.check(
        f_rps >= b_rps * (1.0 - tol_wall / 100.0),
        format!("scraped throughput {f_rps:.1} req/s within {tol_wall}% of baseline {b_rps:.1}"),
    );
    Ok(())
}

fn compare_trace(gate: &mut Gate, base: &Json, fresh: &Json) -> Result<(), String> {
    let tol_wall = env_f64("SHAHIN_CMP_TOL_WALL_PCT", 75.0);
    // Same rationale as `obs_live`: the 1% budget targets quiet
    // hardware; CI slack is opt-in via the environment.
    let tol_overhead = env_f64("SHAHIN_CMP_TOL_OVERHEAD_PCT", 0.0);
    check_same_workload(
        gate,
        base,
        fresh,
        &[
            "dataset",
            "requests",
            "concurrency",
            "warm_rows",
            "seed",
            "reps",
        ],
    )?;

    let budget = num(fresh, &["budget_pct"], "fresh")? + tol_overhead;
    let overhead = num(fresh, &["overhead_pct"], "fresh")?;
    gate.check(
        overhead < budget,
        format!("tracing overhead {overhead:.2}% within the {budget}% budget"),
    );
    let retained = num(fresh, &["retained"], "fresh")?;
    gate.check(
        retained > 0.0,
        format!("traced server retained {retained} traces (tracer was live)"),
    );

    // Throughput is hardware-dependent: wall tolerance.
    let b_rps = num(base, &["traced_rps"], "baseline")?;
    let f_rps = num(fresh, &["traced_rps"], "fresh")?;
    gate.check(
        f_rps >= b_rps * (1.0 - tol_wall / 100.0),
        format!("traced throughput {f_rps:.1} req/s within {tol_wall}% of baseline {b_rps:.1}"),
    );
    Ok(())
}

fn compare_persist(gate: &mut Gate, base: &Json, fresh: &Json) -> Result<(), String> {
    let tol_wall = env_f64("SHAHIN_CMP_TOL_WALL_PCT", 75.0);
    let min_speedup = env_f64("SHAHIN_CMP_MIN_RESTART_SPEEDUP", 2.0);
    check_same_workload(gate, base, fresh, &["dataset", "requests", "warm_rows", "seed"])?;

    // The headline claim, inside the fresh run itself: hydrating from a
    // snapshot restarts warm — no classifier calls, same explanations,
    // and much faster than re-priming from scratch.
    let hyd_inv = num(fresh, &["hydrated", "restart_invocations"], "fresh")?;
    gate.check(
        hyd_inv == 0.0,
        format!("hydrated restart took {hyd_inv} classifier invocations (must be 0)"),
    );
    let bit_identical = fresh
        .at(&["hydrated", "bit_identical"])
        .and_then(Json::as_bool)
        .unwrap_or(false);
    gate.check(
        bit_identical,
        "hydrated replica serves bit-identical explanations".into(),
    );
    let speedup = num(fresh, &["restart_speedup"], "fresh")?;
    gate.check(
        speedup >= min_speedup,
        format!("restart-to-warm speedup {speedup:.2}x >= {min_speedup:.2}x"),
    );

    // Everything the snapshot pipeline computes is seed-derived and must
    // reproduce the baseline exactly: the snapshot's size, the cold
    // re-prime's invoice, both arms' serve-time invocations, and the
    // explanation fingerprint.
    for path in [
        &["snapshot_bytes"][..],
        &["cold", "restart_invocations"],
        &["cold", "serve_invocations"],
        &["hydrated", "serve_invocations"],
    ] {
        let b = num(base, path, "baseline")?;
        let f = num(fresh, path, "fresh")?;
        gate.check(
            b == f,
            format!("{} {f} (baseline {b}, exact)", path.join(".")),
        );
    }
    let b_fp = base.get("fingerprint").and_then(Json::as_str);
    let f_fp = fresh.get("fingerprint").and_then(Json::as_str);
    gate.check(
        b_fp.is_some() && b_fp == f_fp,
        format!("explanation fingerprint {f_fp:?} (baseline {b_fp:?}, exact)"),
    );

    // Hydration wall time is hardware-dependent: wall tolerance.
    let b_wall = num(base, &["hydrated", "restart_s"], "baseline")?;
    let f_wall = num(fresh, &["hydrated", "restart_s"], "fresh")?;
    gate.check(
        f_wall <= b_wall * (1.0 + tol_wall / 100.0),
        format!("hydrated restart {f_wall:.3}s within {tol_wall}% of baseline {b_wall:.3}s"),
    );
    Ok(())
}

fn compare_tenancy(gate: &mut Gate, base: &Json, fresh: &Json) -> Result<(), String> {
    let tol_wall = env_f64("SHAHIN_CMP_TOL_WALL_PCT", 75.0);
    let min_hydrated = env_f64("SHAHIN_CMP_MIN_HYDRATED_SPEEDUP", 2.0);
    check_same_workload(
        gate,
        base,
        fresh,
        &["dataset", "tenants", "requests", "warm_rows", "seed"],
    )?;

    // The Zipf tenant mix is seed-derived and must reproduce exactly.
    let (b_mix, f_mix) = (base.get("mix"), fresh.get("mix"));
    gate.check(
        b_mix.is_some() && b_mix == f_mix,
        format!("zipf tenant mix {f_mix:?} (baseline {b_mix:?}, exact)"),
    );

    // The FaaS lifecycle claims, inside the fresh run itself: every
    // tenant cold-started, idled out, and came back bit-identical via a
    // snapshot hydration.
    let bit_identical = fresh
        .get("bit_identical")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    gate.check(
        bit_identical,
        "re-admitted tenants serve bit-identical explanations".into(),
    );
    let tenants = num(fresh, &["tenants"], "fresh")?;
    let cold_starts = num(fresh, &["cold_starts"], "fresh")?;
    gate.check(
        cold_starts >= 2.0 * tenants,
        format!("{cold_starts} cold starts cover first touch and re-admission of {tenants} tenants"),
    );
    for key in ["evictions", "hydrations"] {
        let v = num(fresh, &[key], "fresh")?;
        gate.check(v >= tenants, format!("{key} {v} cover all {tenants} tenants"));
    }
    let cold_ms = num(fresh, &["cold_start_ms"], "fresh")?;
    let keepalive_ms = num(fresh, &["keepalive", "mean_ms"], "fresh")?;
    gate.check(
        cold_ms > keepalive_ms,
        format!("cold start {cold_ms:.1} ms dominates keepalive {keepalive_ms:.2} ms"),
    );
    let speedup = num(fresh, &["hydrated_speedup"], "fresh")?;
    gate.check(
        speedup >= min_hydrated,
        format!("hydrated re-admission {speedup:.2}x >= {min_hydrated:.2}x over a cold start"),
    );

    // Throughput and latency are hardware-dependent: wall tolerance.
    let b_rps = num(base, &["keepalive", "throughput_rps"], "baseline")?;
    let f_rps = num(fresh, &["keepalive", "throughput_rps"], "fresh")?;
    gate.check(
        f_rps >= b_rps * (1.0 - tol_wall / 100.0),
        format!("keepalive throughput {f_rps:.1} req/s within {tol_wall}% of baseline {b_rps:.1}"),
    );
    let b_cold = num(base, &["cold_start_ms"], "baseline")?;
    gate.check(
        cold_ms <= b_cold * (1.0 + tol_wall / 100.0),
        format!("cold start {cold_ms:.1} ms within {tol_wall}% of baseline {b_cold:.1} ms"),
    );
    Ok(())
}

fn compare_layout(gate: &mut Gate, base: &Json, fresh: &Json) -> Result<(), String> {
    let tol_wall = env_f64("SHAHIN_CMP_TOL_WALL_PCT", 75.0);
    let tol_anchor = env_f64("SHAHIN_CMP_TOL_ANCHOR_PCT", 15.0);
    let min_match = env_f64("SHAHIN_CMP_MIN_MATCH_SPEEDUP", 1.5);
    let min_wall = env_f64("SHAHIN_CMP_MIN_WALL_SPEEDUP", 0.9);
    check_same_workload(gate, base, fresh, &["dataset", "batch", "seed"])?;

    let explainers = base
        .get("explainers")
        .and_then(Json::as_obj)
        .ok_or("baseline has no 'explainers' object")?;
    // The headline ≥1.5x retrieve.match claim is gated on the best cell
    // of the whole artifact: a shared CI runner timeslices the
    // multi-thread cells and LIME's back-to-back lookups run against warm
    // caches that dilute the span ratio, but the engine's advantage must
    // show up clearly somewhere (in practice in the Anchor cells, whose
    // interleaved classifier work is exactly the motivating workload).
    let mut best_match = 0.0f64;
    for (name, base_e) in explainers {
        let fresh_e = fresh
            .at(&["explainers", name])
            .ok_or_else(|| format!("fresh run is missing explainer '{name}'"))?;
        let threads = base_e
            .get("threads")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("baseline '{name}' has no 'threads' object"))?;
        let mut best_wall = 0.0f64;
        for (t, base_t) in threads {
            let fresh_t = fresh_e
                .at(&["threads", t])
                .ok_or_else(|| format!("fresh '{name}' is missing thread count {t}"))?;
            // Parallel Anchor invocation counts race (parallel.rs); every
            // other cell is bit-deterministic.
            let deterministic = name != "Anchor" || t == "1";

            // Cross-arm identity inside the fresh run: both layouts saw
            // the same tuples and produced the same explanations.
            let f_leg_inv = num(fresh_t, &["legacy", "invocations"], "fresh")?;
            let f_flat_inv = num(fresh_t, &["flat", "invocations"], "fresh")?;
            if deterministic {
                gate.check(
                    f_leg_inv == f_flat_inv,
                    format!(
                        "{name} x{t} invocations identical across layouts \
                         ({f_flat_inv} vs legacy {f_leg_inv})"
                    ),
                );
                let f_leg_fp = fresh_t.at(&["legacy", "fingerprint"]);
                let f_flat_fp = fresh_t.at(&["flat", "fingerprint"]);
                gate.check(
                    f_leg_fp.is_some() && f_leg_fp == f_flat_fp,
                    format!("{name} x{t} explanation fingerprints identical across layouts"),
                );
            } else {
                let drift = 100.0 * (f_flat_inv - f_leg_inv).abs() / f_leg_inv.max(1.0);
                gate.check(
                    drift <= tol_anchor,
                    format!(
                        "{name} x{t} invocations {f_flat_inv} within {tol_anchor}% of \
                         legacy arm {f_leg_inv} (drift {drift:.1}%)"
                    ),
                );
            }
            let f_leg_cnt = num(fresh_t, &["legacy", "match_count"], "fresh")?;
            let f_flat_cnt = num(fresh_t, &["flat", "match_count"], "fresh")?;
            gate.check(
                f_leg_cnt == f_flat_cnt,
                format!("{name} x{t} lookup count identical across layouts ({f_flat_cnt})"),
            );

            // Against the committed baseline: deterministic cells must
            // reproduce exactly, wall times may drift within tolerance.
            if deterministic {
                let b_inv = num(base_t, &["flat", "invocations"], "baseline")?;
                gate.check(
                    b_inv == f_flat_inv,
                    format!("{name} x{t} invocations {f_flat_inv} (baseline {b_inv}, exact)"),
                );
            }
            for arm in ["legacy", "flat"] {
                let b_wall = num(base_t, &[arm, "wall_s"], "baseline")?;
                let f_wall = num(fresh_t, &[arm, "wall_s"], "fresh")?;
                gate.check(
                    f_wall <= b_wall * (1.0 + tol_wall / 100.0),
                    format!(
                        "{name} x{t} {arm} wall {f_wall:.3}s within {tol_wall}% of \
                         baseline {b_wall:.3}s"
                    ),
                );
            }
            best_match = best_match.max(num(fresh_t, &["match_speedup"], "fresh")?);
            best_wall = best_wall.max(num(fresh_t, &["wall_speedup"], "fresh")?);
        }
        gate.check(
            best_wall >= min_wall,
            format!("{name} best wall speedup {best_wall:.2}x >= {min_wall:.2}x"),
        );
    }
    gate.check(
        best_match >= min_match,
        format!("best retrieve.match speedup {best_match:.2}x >= {min_match:.2}x"),
    );
    Ok(())
}

fn run(args: &[String]) -> Result<Vec<String>, String> {
    let [kind, base_path, fresh_path] = args else {
        return Err(
            "usage: bench_compare <parallel|obs|serve|obs_live|trace|persist|tenancy|layout> \
             <baseline.json> <fresh.json>"
                .into(),
        );
    };
    let base = load(base_path)?;
    let fresh = load(fresh_path)?;
    println!("comparing {fresh_path} against baseline {base_path} ({kind})");
    let mut gate = Gate::new();
    match kind.as_str() {
        "parallel" => compare_parallel(&mut gate, &base, &fresh)?,
        "obs" => compare_obs(&mut gate, &base, &fresh)?,
        "serve" => compare_serve(&mut gate, &base, &fresh)?,
        "obs_live" => compare_obs_live(&mut gate, &base, &fresh)?,
        "trace" => compare_trace(&mut gate, &base, &fresh)?,
        "persist" => compare_persist(&mut gate, &base, &fresh)?,
        "tenancy" => compare_tenancy(&mut gate, &base, &fresh)?,
        "layout" => compare_layout(&mut gate, &base, &fresh)?,
        other => return Err(format!("unknown artifact kind '{other}'")),
    }
    println!(
        "{} checks, {} regression(s)",
        gate.checks,
        gate.failures.len()
    );
    Ok(gate.failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(failures) if failures.is_empty() => ExitCode::SUCCESS,
        Ok(failures) => {
            eprintln!("bench_compare: {} regression(s):", failures.len());
            for f in failures {
                eprintln!("  - {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_compare: error: {e}");
            ExitCode::FAILURE
        }
    }
}
