//! Figure 5: Shahin's bookkeeping overhead (frequent itemset mining +
//! perturbation retrieval) as a percentage of total runtime, for the LIME
//! explainer on Census-Income. The paper reports ~3% at batch 10K and ~2%
//! at 50K.

use shahin::{run, ExplainerKind, Method};
use shahin_bench::{base_seed, bench_lime, row, scaled, secs, workload};
use shahin_tabular::DatasetPreset;

fn main() {
    let seed = base_seed();
    let batch_sizes: Vec<usize> = [100, 500, 1000, 2000, 5000]
        .iter()
        .map(|&n| scaled(n))
        .collect();
    let w = workload(DatasetPreset::CensusIncome, 1.0, seed);
    let kind = ExplainerKind::Lime(bench_lime());

    println!("# Figure 5: Overhead of Shahin (LIME, Census-Income)");
    println!(
        "{}",
        row(&[
            "batch".into(),
            "overhead %".into(),
            "fim".into(),
            "retrieval".into(),
            "materialization".into(),
            "total wall".into(),
        ])
    );

    for &n in &batch_sizes {
        let batch = w.batch(n);
        let r = run(
            &Method::Batch(Default::default()),
            &kind,
            &w.ctx,
            &w.clf,
            &batch,
            seed,
        );
        println!(
            "{}",
            row(&[
                batch.n_rows().to_string(),
                format!("{:.2}%", 100.0 * r.metrics.overhead_fraction()),
                secs(r.metrics.overhead.fim.as_secs_f64()),
                secs(r.metrics.overhead.retrieval.as_secs_f64()),
                secs(r.metrics.overhead.materialization.as_secs_f64()),
                secs(r.metrics.wall.as_secs_f64()),
            ])
        );
    }
}
