//! Figure 2: speedup of Shahin vs the Dist-1/4/8 and GREEDY baselines on
//! Census-Income, per explainer, as the batch size grows.
//!
//! Speedup ratio = sequential time / method time (and the same on
//! classifier invocations, the machine-independent variant).

use shahin::metrics::{speedup_invocations, speedup_wall};
use shahin::{run, ExplainerKind, Greedy, Method};
use shahin_bench::{base_seed, bench_anchor, bench_lime, bench_shap, f2, row, scaled, workload};
use shahin_tabular::DatasetPreset;

fn main() {
    let seed = base_seed();
    let batch_sizes: Vec<usize> = [10, 100, 1000, 2000].iter().map(|&n| scaled(n)).collect();
    let w = workload(DatasetPreset::CensusIncome, 1.0, seed);

    println!("# Figure 2: Speedup of Shahin vs baselines (Census-Income)");
    println!(
        "{}",
        row(&[
            "explainer".into(),
            "batch".into(),
            "method".into(),
            "speedup(wall)".into(),
            "speedup(invocations)".into(),
        ])
    );

    for kind in [
        ExplainerKind::Lime(bench_lime()),
        ExplainerKind::Anchor(bench_anchor()),
        ExplainerKind::Shap(bench_shap()),
    ] {
        for &n in &batch_sizes {
            let batch = w.batch(n);
            if batch.n_rows() < n {
                eprintln!("  (batch {n} truncated to {})", batch.n_rows());
            }
            let seq = run(&Method::Sequential, &kind, &w.ctx, &w.clf, &batch, seed);
            let methods: Vec<Method> = vec![
                Method::Dist(4),
                Method::Dist(8),
                Method::Greedy(Greedy::default_budget(&batch)),
                Method::Batch(Default::default()),
                Method::Streaming(Default::default()),
            ];
            report(&kind, n, "Dist-1", &seq, &seq);
            for method in methods {
                let r = run(&method, &kind, &w.ctx, &w.clf, &batch, seed);
                report(&kind, n, &method.name(), &seq, &r);
            }
        }
    }
}

fn report(
    kind: &ExplainerKind,
    batch: usize,
    method: &str,
    seq: &shahin::RunReport,
    r: &shahin::RunReport,
) {
    println!(
        "{}",
        row(&[
            kind.name().into(),
            batch.to_string(),
            method.into(),
            f2(speedup_wall(&seq.metrics, &r.metrics)),
            f2(speedup_invocations(&seq.metrics, &r.metrics)),
        ])
    );
}
