//! Data-layout benchmark (DESIGN.md §5g): the cache-conscious hot paths —
//! bitset itemset matching + CSR-flattened forest — against the legacy
//! postings index + nested trees, end-to-end through the batch drivers at
//! 1/2/8 threads on Census-Income. Emits `BENCH_layout.json`.
//!
//! Both arms run the *same* seeds and workload, so everything the drivers
//! compute is bit-identical by construction (enforced by the equivalence
//! tests and re-checked here via explanation fingerprints); only the wall
//! clock and the `retrieve.match` span may differ. The classifier is the
//! raw forest — no simulated latency — because the point of this bench is
//! the compute the layouts remove, not a model-server round trip.
//!
//! Per explainer × thread count the artifact records, for each arm:
//! wall seconds, classifier invocations, the summed `retrieve.match` span
//! (nanoseconds + lookup count) and an FNV-1a fingerprint of every
//! explanation; plus the derived `match_speedup` / `wall_speedup`
//! (legacy ÷ new).
//!
//! Environment knobs (on top of the shared `SHAHIN_SEED`):
//!
//! * `SHAHIN_LAYOUT_BATCH` — tuples per batch (default 5000),
//! * `SHAHIN_LAYOUT_THREADS` — comma-separated thread counts (default
//!   1,2,8),
//! * `SHAHIN_LAYOUT_REPS` — runs per arm, minimum taken (default 2),
//! * `SHAHIN_LAYOUT_OUT` — output path (default BENCH_layout.json).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::{
    run_with_obs, BatchConfig, ExplainerKind, MatchEngine, Method, MetricsRegistry,
};
use shahin_bench::{base_seed, bench_anchor, bench_lime, env_u64, explanation_fingerprint, f2, secs, write_artifact};
use shahin_explain::ExplainContext;
use shahin_model::{CountingClassifier, ForestLayout, ForestParams, RandomForest};
use shahin_tabular::{train_test_split, DatasetPreset};

/// One arm's measurements for one (explainer, thread count) cell.
struct Measurement {
    wall_s: f64,
    invocations: u64,
    match_ns: u64,
    match_count: u64,
    fingerprint: u64,
}


fn measure_once(
    method: &Method,
    kind: &ExplainerKind,
    ctx: &ExplainContext,
    clf: &CountingClassifier<RandomForest>,
    batch: &shahin_tabular::Dataset,
    seed: u64,
) -> Measurement {
    clf.reset();
    // A fresh registry per run: the retrieve.match histogram then holds
    // exactly this run's lookups.
    let obs = MetricsRegistry::new();
    let start = Instant::now();
    let report = run_with_obs(method, kind, ctx, clf, batch, seed, &obs);
    let wall_s = start.elapsed().as_secs_f64();
    let snap = obs.snapshot();
    let hist = snap
        .histograms
        .get("span.retrieve.match")
        .cloned()
        .unwrap_or_default();
    Measurement {
        wall_s,
        invocations: clf.invocations(),
        match_ns: hist.sum_ns,
        match_count: hist.count,
        fingerprint: explanation_fingerprint(&report.explanations),
    }
}

/// Minimum-of-`reps` measurement: on a shared box the first run pays cold
/// caches and page faults, and any single run can absorb a preemption —
/// noise only ever *adds* time, so the per-arm minimum is the robust
/// estimator of the layout's true cost (the first run doubles as warmup).
/// When `deterministic` (everything except parallel Anchor, whose
/// precision-evidence race makes invocation counts run-dependent — see
/// `parallel.rs`), invocations, fingerprint and lookup count must not
/// vary across runs and are asserted.
#[allow(clippy::too_many_arguments)]
fn measure(
    method: &Method,
    kind: &ExplainerKind,
    ctx: &ExplainContext,
    clf: &CountingClassifier<RandomForest>,
    batch: &shahin_tabular::Dataset,
    seed: u64,
    reps: u64,
    deterministic: bool,
) -> Measurement {
    let mut best = measure_once(method, kind, ctx, clf, batch, seed);
    for _ in 1..reps.max(1) {
        let next = measure_once(method, kind, ctx, clf, batch, seed);
        if deterministic {
            assert_eq!(next.invocations, best.invocations, "nondeterministic run");
            assert_eq!(next.fingerprint, best.fingerprint, "nondeterministic run");
            assert_eq!(next.match_count, best.match_count, "nondeterministic run");
        }
        best.wall_s = best.wall_s.min(next.wall_s);
        best.match_ns = best.match_ns.min(next.match_ns);
    }
    best
}

fn json_arm(m: &Measurement) -> String {
    format!(
        "{{\"wall_s\": {:.6}, \"invocations\": {}, \"match_ns\": {}, \"match_count\": {}, \"fingerprint\": \"{:016x}\"}}",
        m.wall_s, m.invocations, m.match_ns, m.match_count, m.fingerprint
    )
}

fn main() {
    let seed = base_seed();
    let batch_n = env_u64("SHAHIN_LAYOUT_BATCH", 5000) as usize;
    let reps = env_u64("SHAHIN_LAYOUT_REPS", 2);
    let threads: Vec<usize> = std::env::var("SHAHIN_LAYOUT_THREADS")
        .unwrap_or_else(|_| "1,2,8".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let out_path =
        std::env::var("SHAHIN_LAYOUT_OUT").unwrap_or_else(|_| "BENCH_layout.json".into());

    let preset = DatasetPreset::CensusIncome;
    let (data, labels) = preset.spec(1.0).generate(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams::default(),
        &mut rng,
    );
    let flat_clf = CountingClassifier::new(forest.clone());
    let legacy_clf = CountingClassifier::new(forest.with_layout(ForestLayout::Nested));
    let ctx = ExplainContext::fit(&split.train, 1000, &mut rng);
    let batch_n = batch_n.min(split.test.n_rows());
    let batch = split.test.select(&(0..batch_n).collect::<Vec<_>>());

    println!(
        "# Layouts: {} tuples of {}, flat+bitset vs nested+postings",
        batch_n,
        preset.name()
    );

    // One discarded warmup of each arm on a small prefix so the first
    // measured cell does not pay the process's cold start (page faults,
    // lazy allocator growth) that later cells never see.
    let warm = split
        .test
        .select(&(0..200.min(batch_n)).collect::<Vec<_>>());
    for (engine, clf) in [
        (MatchEngine::Postings, &legacy_clf),
        (MatchEngine::Bitset, &flat_clf),
    ] {
        let cfg = BatchConfig {
            n_threads: Some(1),
            match_engine: engine,
            ..Default::default()
        };
        measure_once(
            &Method::Batch(cfg),
            &ExplainerKind::Lime(bench_lime()),
            &ctx,
            clf,
            &warm,
            seed,
        );
    }

    let mut blocks: Vec<String> = Vec::new();
    for kind in [
        ExplainerKind::Lime(bench_lime()),
        ExplainerKind::Anchor(bench_anchor()),
    ] {
        let mut thread_entries: Vec<String> = Vec::new();
        for &t in &threads {
            let config = |engine| BatchConfig {
                n_threads: Some(t),
                match_engine: engine,
                ..Default::default()
            };
            let method = |engine| {
                if t == 1 {
                    Method::Batch(config(engine))
                } else {
                    Method::BatchParallel(config(engine))
                }
            };
            // Parallel Anchor's invocation counts are run-dependent (the
            // precision-evidence race, see parallel.rs); everything else
            // must be exactly reproducible.
            let deterministic = t == 1 || matches!(kind, ExplainerKind::Lime(_));
            let legacy = measure(
                &method(MatchEngine::Postings),
                &kind,
                &ctx,
                &legacy_clf,
                &batch,
                seed,
                reps,
                deterministic,
            );
            let flat = measure(
                &method(MatchEngine::Bitset),
                &kind,
                &ctx,
                &flat_clf,
                &batch,
                seed,
                reps,
                deterministic,
            );
            let match_speedup = legacy.match_ns as f64 / (flat.match_ns as f64).max(1.0);
            let wall_speedup = legacy.wall_s / flat.wall_s.max(1e-12);
            println!(
                "{} x{t}: wall {} -> {} ({}x), retrieve.match {} -> {} ({}x), invocations {} vs {}",
                kind.name(),
                secs(legacy.wall_s),
                secs(flat.wall_s),
                f2(wall_speedup),
                secs(legacy.match_ns as f64 * 1e-9),
                secs(flat.match_ns as f64 * 1e-9),
                f2(match_speedup),
                legacy.invocations,
                flat.invocations,
            );
            thread_entries.push(format!(
                "\"{t}\": {{\"legacy\": {}, \"flat\": {}, \"match_speedup\": {:.3}, \"wall_speedup\": {:.3}}}",
                json_arm(&legacy),
                json_arm(&flat),
                match_speedup,
                wall_speedup
            ));
        }
        blocks.push(format!(
            "    \"{}\": {{\n      \"threads\": {{{}}}\n    }}",
            kind.name(),
            thread_entries.join(", ")
        ));
    }

    let json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"batch\": {},\n  \"seed\": {},\n  \"explainers\": {{\n{}\n  }}\n}}\n",
        preset.name(),
        batch_n,
        seed,
        blocks.join(",\n")
    );
    write_artifact(&out_path, &json);
    println!("wrote {out_path}");
}
