//! Figure 3: speedup ratio of Shahin-Batch over the sequential baseline
//! for LIME, Anchor, and SHAP across all five datasets, as the batch size
//! grows.

use shahin::metrics::{speedup_invocations, speedup_wall};
use shahin::{run, ExplainerKind, Method};
use shahin_bench::{base_seed, bench_anchor, bench_lime, bench_shap, f2, row, scaled, workload};
use shahin_tabular::DatasetPreset;

fn main() {
    let seed = base_seed();
    let batch_sizes: Vec<usize> = [10, 100, 1000, 2000].iter().map(|&n| scaled(n)).collect();

    println!("# Figure 3: Speedup Ratio of Shahin-Batch across datasets");
    println!(
        "{}",
        row(&[
            "dataset".into(),
            "explainer".into(),
            "batch".into(),
            "speedup(wall)".into(),
            "speedup(invocations)".into(),
        ])
    );

    for preset in DatasetPreset::all() {
        let w = workload(preset, 1.0, seed);
        for kind in [
            ExplainerKind::Lime(bench_lime()),
            ExplainerKind::Anchor(bench_anchor()),
            ExplainerKind::Shap(bench_shap()),
        ] {
            for &n in &batch_sizes {
                let batch = w.batch(n);
                let seq = run(&Method::Sequential, &kind, &w.ctx, &w.clf, &batch, seed);
                let sh = run(
                    &Method::Batch(Default::default()),
                    &kind,
                    &w.ctx,
                    &w.clf,
                    &batch,
                    seed,
                );
                println!(
                    "{}",
                    row(&[
                        w.name.into(),
                        kind.name().into(),
                        batch.n_rows().to_string(),
                        f2(speedup_wall(&seq.metrics, &sh.metrics)),
                        f2(speedup_invocations(&seq.metrics, &sh.metrics)),
                    ])
                );
            }
        }
    }
}
