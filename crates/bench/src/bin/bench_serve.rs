//! Serving load generator: warm micro-batching server vs cold
//! per-request batch invocation. Emits `BENCH_serve.json`.
//!
//! The **warm** arm primes a [`shahin::WarmEngine`] over the warm set,
//! starts a `shahin-serve` TCP server on an ephemeral loopback port, and
//! drives it with closed-loop clients (each sends a request, waits for
//! the response, repeats). Concurrent clients get coalesced into
//! micro-batches that share the resident perturbation store.
//!
//! The **cold** arm answers the *same* request sequence the way the
//! offline drivers would: one `ShahinBatch::explain_lime` per request
//! over a 1-tuple batch — which re-mines and re-materializes per
//! request, and degenerates automatic τ selection to τ=1, so almost
//! every perturbation is generated (and paid for) fresh.
//!
//! Environment knobs (on top of the shared `SHAHIN_SEED`,
//! `SHAHIN_COST_US`):
//!
//! * `SHAHIN_SERVE_REQUESTS` — total requests per arm (default 120),
//! * `SHAHIN_SERVE_CONCURRENCY` — closed-loop clients (default 4),
//! * `SHAHIN_SERVE_WARM_ROWS` — warm-set size (default 200),
//! * `SHAHIN_SERVE_OUT` — artifact path (default BENCH_serve.json),
//! * `SHAHIN_SERVE_ADDR` — external mode: skip the in-process server and
//!   cold arm, drive an already-running server at this address instead
//!   (used by the CI smoke script against `shahin-cli serve`),
//! * `SHAHIN_SERVE_SHUTDOWN` — external mode: send an admin `shutdown`
//!   frame after the run when set to 1.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use shahin::{
    BatchConfig, MetricsRegistry, ProvenanceSink, ShahinBatch, WarmEngine, WarmExplainer,
};
use shahin_bench::json::Json;
use shahin_bench::{base_seed, bench_lime, env_u64, f2, workload, write_artifact};
use shahin_serve::{ServeConfig, Server};
use shahin_tabular::DatasetPreset;

/// Deterministic request row for client `c`'s `i`-th request: the same
/// sequence drives both arms, so their work is identical tuple-for-tuple.
fn request_row(c: usize, i: usize, seed: u64, warm_rows: usize) -> usize {
    (c * 7919 + i * 104_729 + seed as usize) % warm_rows
}

/// One arm's latency profile.
struct ArmStats {
    wall_s: f64,
    latencies_ms: Vec<f64>,
    store_hit_rate: f64,
    invocations_per_request: f64,
}

impl ArmStats {
    fn mean_ms(&self) -> f64 {
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len().max(1) as f64
    }

    fn percentile_ms(&self, q: f64) -> f64 {
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }

    fn throughput_rps(&self) -> f64 {
        self.latencies_ms.len() as f64 / self.wall_s.max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"throughput_rps\": {:.3}, \"mean_ms\": {:.4}, \"p50_ms\": {:.4}, \
             \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"store_hit_rate\": {:.6}, \
             \"invocations_per_request\": {:.3}}}",
            self.throughput_rps(),
            self.mean_ms(),
            self.percentile_ms(0.50),
            self.percentile_ms(0.95),
            self.percentile_ms(0.99),
            self.store_hit_rate,
            self.invocations_per_request
        )
    }
}

/// Closed-loop clients against a live server; returns per-request
/// latencies (ms) in completion order and the arm wall time.
fn drive_clients(
    addr: &str,
    concurrency: usize,
    requests: usize,
    seed: u64,
    warm_rows: usize,
) -> (f64, Vec<f64>) {
    let per_client = requests / concurrency.max(1);
    let t0 = Instant::now();
    let mut all: Vec<f64> = Vec::with_capacity(requests);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|c| {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect to serve endpoint");
                    stream.set_nodelay(true).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    let mut reader = BufReader::new(stream);
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut line = String::new();
                    for i in 0..per_client {
                        let row = request_row(c, i, seed, warm_rows);
                        let frame =
                            format!("{{\"id\": {i}, \"method\": \"explain\", \"row\": {row}}}\n");
                        let t = Instant::now();
                        reader.get_mut().write_all(frame.as_bytes()).unwrap();
                        line.clear();
                        reader.read_line(&mut line).unwrap();
                        latencies.push(t.elapsed().as_secs_f64() * 1e3);
                        let v = Json::parse(&line).expect("response frame parses");
                        assert_eq!(
                            v.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "explain failed: {line}"
                        );
                    }
                    latencies
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
    });
    (t0.elapsed().as_secs_f64(), all)
}

fn hit_rate(sink: &ProvenanceSink) -> f64 {
    let t = sink.totals();
    let denom = (t.samples_reused + t.samples_fresh) as f64;
    if denom == 0.0 {
        0.0
    } else {
        t.samples_reused as f64 / denom
    }
}

fn main() {
    let seed = base_seed();
    let concurrency = (env_u64("SHAHIN_SERVE_CONCURRENCY", 4) as usize).max(1);
    // Rounded down to a multiple of the client count (closed-loop clients
    // send equal shares).
    let requests =
        (env_u64("SHAHIN_SERVE_REQUESTS", 120) as usize / concurrency).max(1) * concurrency;
    let warm_rows = env_u64("SHAHIN_SERVE_WARM_ROWS", 200) as usize;
    let out_path = std::env::var("SHAHIN_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());

    // External mode: measure a server someone else started (CI smoke).
    if let Ok(addr) = std::env::var("SHAHIN_SERVE_ADDR") {
        println!("# Serving load (external): {requests} requests, {concurrency} clients -> {addr}");
        let (wall_s, latencies_ms) = drive_clients(&addr, concurrency, requests, seed, warm_rows);
        let stats = ArmStats {
            wall_s,
            latencies_ms,
            store_hit_rate: 0.0,
            invocations_per_request: 0.0,
        };
        println!(
            "external: {:.1} req/s, mean {} ms, p95 {} ms",
            stats.throughput_rps(),
            f2(stats.mean_ms()),
            f2(stats.percentile_ms(0.95))
        );
        if env_u64("SHAHIN_SERVE_SHUTDOWN", 0) == 1 {
            let mut stream = TcpStream::connect(&addr).expect("connect for shutdown");
            stream
                .write_all(b"{\"id\": 0, \"method\": \"shutdown\"}\n")
                .expect("send shutdown frame");
            println!("sent shutdown frame");
        }
        let json = format!(
            "{{\n  \"mode\": \"external\",\n  \"requests\": {requests},\n  \"concurrency\": {concurrency},\n  \"warm_rows\": {warm_rows},\n  \"seed\": {seed},\n  \"warm\": {}\n}}\n",
            stats.to_json()
        );
        write_artifact(&out_path, &json);
        println!("wrote {out_path}");
        return;
    }

    let preset = DatasetPreset::Recidivism;
    println!(
        "# Serving load: {requests} requests, {concurrency} clients, {warm_rows} warm rows of {}",
        preset.name()
    );

    // ---- Warm arm: micro-batching server over a primed repository. ----
    let warm_stats = {
        let w = workload(preset, 0.2, seed);
        let warm_rows = warm_rows.min(w.max_batch());
        let warm = w.batch(warm_rows);
        let reg = MetricsRegistry::new();
        let sink = Arc::new(ProvenanceSink::new());
        reg.attach_provenance_sink(Arc::clone(&sink));
        let engine = Arc::new(WarmEngine::prime(
            BatchConfig::default(),
            WarmExplainer::Lime(bench_lime()),
            w.ctx,
            w.clf,
            warm,
            seed,
            &reg,
        ));
        let prime_invocations = engine.invocations();
        println!("warm: primed ({prime_invocations} invocations)");
        let engine_for_stats = Arc::clone(&engine);
        let handle = Server::start(
            engine,
            ServeConfig {
                max_delay: Duration::from_millis(2),
                ..Default::default()
            },
        )
        .expect("server binds");
        let addr = handle.addr().to_string();
        let (wall_s, latencies_ms) = drive_clients(&addr, concurrency, requests, seed, warm_rows);
        handle.shutdown();
        let served = handle.wait();
        let stats = ArmStats {
            wall_s,
            latencies_ms,
            store_hit_rate: hit_rate(&sink),
            invocations_per_request: (engine_for_stats.invocations() - prime_invocations) as f64
                / served.max(1) as f64,
        };
        println!(
            "warm: {:.1} req/s, mean {} ms, p95 {} ms, store hit rate {}, {} invocations/request",
            stats.throughput_rps(),
            f2(stats.mean_ms()),
            f2(stats.percentile_ms(0.95)),
            f2(stats.store_hit_rate),
            f2(stats.invocations_per_request)
        );
        stats
    };

    // ---- Cold arm: one offline batch invocation per request. ----
    let cold_stats = {
        let w = workload(preset, 0.2, seed);
        let warm_rows = warm_rows.min(w.max_batch());
        let warm = w.batch(warm_rows);
        let reg = MetricsRegistry::new();
        let sink = Arc::new(ProvenanceSink::new());
        reg.attach_provenance_sink(Arc::clone(&sink));
        let shahin = ShahinBatch::new(BatchConfig::default()).with_obs(&reg);
        let lime = bench_lime();
        let (ctx, clf) = (&w.ctx, &w.clf);
        let invocations0 = clf.invocations();
        let per_client = requests / concurrency.max(1);
        let t0 = Instant::now();
        let mut latencies_ms: Vec<f64> = Vec::with_capacity(requests);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|c| {
                    let (warm, shahin, lime) = (&warm, &shahin, &lime);
                    scope.spawn(move || {
                        let mut latencies = Vec::with_capacity(per_client);
                        for i in 0..per_client {
                            let row = request_row(c, i, seed, warm_rows);
                            let one = warm.select(&[row]);
                            let t = Instant::now();
                            let result = shahin.explain_lime(ctx, clf, &one, lime, seed);
                            latencies.push(t.elapsed().as_secs_f64() * 1e3);
                            assert_eq!(result.explanations.len(), 1);
                        }
                        latencies
                    })
                })
                .collect();
            for h in handles {
                latencies_ms.extend(h.join().expect("cold client thread"));
            }
        });
        let stats = ArmStats {
            wall_s: t0.elapsed().as_secs_f64(),
            latencies_ms,
            store_hit_rate: hit_rate(&sink),
            invocations_per_request: (clf.invocations() - invocations0) as f64
                / requests.max(1) as f64,
        };
        println!(
            "cold: {:.1} req/s, mean {} ms, p95 {} ms, store hit rate {}, {} invocations/request",
            stats.throughput_rps(),
            f2(stats.mean_ms()),
            f2(stats.percentile_ms(0.95)),
            f2(stats.store_hit_rate),
            f2(stats.invocations_per_request)
        );
        stats
    };

    println!(
        "warm vs cold: {}x mean latency, {}x throughput",
        f2(cold_stats.mean_ms() / warm_stats.mean_ms().max(1e-9)),
        f2(warm_stats.throughput_rps() / cold_stats.throughput_rps().max(1e-9))
    );

    let json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"requests\": {requests},\n  \"concurrency\": {concurrency},\n  \"warm_rows\": {warm_rows},\n  \"seed\": {seed},\n  \"warm\": {},\n  \"cold\": {},\n  \"mean_speedup\": {:.3}\n}}\n",
        preset.name(),
        warm_stats.to_json(),
        cold_stats.to_json(),
        cold_stats.mean_ms() / warm_stats.mean_ms().max(1e-9)
    );
    write_artifact(&out_path, &json);
    println!("wrote {out_path}");
}
