//! Serving load generator: warm micro-batching server vs cold
//! per-request batch invocation. Emits `BENCH_serve.json`.
//!
//! The **warm** arm primes a [`shahin::WarmEngine`] over the warm set,
//! starts a `shahin-serve` TCP server on an ephemeral loopback port, and
//! drives it with closed-loop clients (each sends a request, waits for
//! the response, repeats). Concurrent clients get coalesced into
//! micro-batches that share the resident perturbation store.
//!
//! The **cold** arm answers the *same* request sequence the way the
//! offline drivers would: one `ShahinBatch::explain_lime` per request
//! over a 1-tuple batch — which re-mines and re-materializes per
//! request, and degenerates automatic τ selection to τ=1, so almost
//! every perturbation is generated (and paid for) fresh.
//!
//! Environment knobs (on top of the shared `SHAHIN_SEED`,
//! `SHAHIN_COST_US`):
//!
//! * `SHAHIN_SERVE_REQUESTS` — total requests per arm (default 120),
//! * `SHAHIN_SERVE_CONCURRENCY` — closed-loop clients (default 4),
//! * `SHAHIN_SERVE_WARM_ROWS` — warm-set size (default 200),
//! * `SHAHIN_SERVE_OUT` — artifact path (default BENCH_serve.json),
//! * `SHAHIN_SERVE_ADDR` — external mode: skip the in-process server and
//!   cold arm, drive an already-running server at this address instead
//!   (used by the CI smoke script against `shahin-cli serve`),
//! * `SHAHIN_SERVE_SHUTDOWN` — external mode: send an admin `shutdown`
//!   frame after the run when set to 1.
//!
//! A third **scrape** arm measures the live observability plane: a
//! closed-loop load (`SHAHIN_OBS_LIVE_REQUESTS`, default 12x the serve
//! arms so each drive spans several scrape intervals) is driven twice per
//! repetition against one warm server — once bare, once with a sidecar
//! client polling the `metrics` admin frame every
//! `SHAHIN_OBS_LIVE_SCRAPE_MS` (default 500) milliseconds (an order of
//! magnitude hotter than a real scraper's multi-second cadence) — and
//! the median of the per-repetition paired overheads is taken (each
//! pair's drives are adjacent in time, so machine-state drift cancels,
//! and the median sheds scheduler outliers). The run asserts scraping
//! costs < `SHAHIN_OBS_LIVE_BUDGET_PCT` (default 1%) of throughput and
//! emits `SHAHIN_OBS_LIVE_OUT` (default `BENCH_obs_live.json`), gated
//! in CI by `bench_compare obs_live`. `SHAHIN_OBS_LIVE_REPS` (default
//! 7) sets the repetitions.
//!
//! A fourth **tracing** arm measures request-scoped tracing the same
//! way: two servers share one warm engine — one with tracing disabled
//! (`trace_store: 0`), one at the default tail-sampling configuration —
//! and paired order-alternating drives (`SHAHIN_TRACE_REQUESTS`,
//! `SHAHIN_TRACE_REPS`) yield a median overhead asserted below
//! `SHAHIN_TRACE_BUDGET_PCT` (default 1%) and written to
//! `SHAHIN_TRACE_OUT` (default `BENCH_trace.json`), gated in CI by
//! `bench_compare trace`.
//!
//! A fifth **persist** arm is the restart drill: a donor engine primes,
//! answers a deterministic request sequence, and snapshots its warm
//! state; then two restarts answer the *same* sequence — one cold
//! (full re-prime, paying every mining and classifier call again) and
//! one hydrated from the snapshot via the `--warm-from` path (zero
//! classifier invocations to restart). The arm asserts all three
//! engines produce bit-identical explanations (FNV-1a fingerprints)
//! and emits `SHAHIN_PERSIST_OUT` (default `BENCH_persist.json`),
//! gated in CI by `bench_compare persist`.
//!
//! A sixth **tenancy** arm drills the multi-tenant cluster: N tenants
//! (`SHAHIN_TENANCY_TENANTS`, default 3) behind one listener, each with
//! its own model and warm set, driven by a seed-derived Zipf tenant mix
//! (`SHAHIN_TENANCY_REQUESTS` requests). It measures cold-start
//! latency (first touch per tenant, paying lazy materialization) vs
//! keepalive latency (the warm steady state), then lets every tenant
//! idle past the keepalive (`SHAHIN_TENANCY_IDLE_MS`, default 3000) so
//! the lifecycle controller evicts them all — writing at-evict
//! snapshots — and re-admits each with a hydrated, classifier-free cold
//! start, asserting the re-admitted explanations are bit-identical to
//! the first serving. Emits `SHAHIN_TENANCY_OUT` (default
//! `BENCH_tenancy.json`), gated in CI by `bench_compare tenancy`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use shahin::{
    BatchConfig, MetricsRegistry, ProvenanceSink, ShahinBatch, WarmEngine, WarmExplainer,
    WarmOutcome, WarmRequest,
};
use shahin_bench::json::Json;
use shahin_bench::{
    base_seed, bench_lime, env_u64, explanation_fingerprint, f2, workload, write_artifact,
};
use shahin_serve::{ServeConfig, Server};
use shahin_tabular::DatasetPreset;

/// Deterministic request row for client `c`'s `i`-th request: the same
/// sequence drives both arms, so their work is identical tuple-for-tuple.
fn request_row(c: usize, i: usize, seed: u64, warm_rows: usize) -> usize {
    (c * 7919 + i * 104_729 + seed as usize) % warm_rows
}

/// One arm's latency profile.
struct ArmStats {
    wall_s: f64,
    latencies_ms: Vec<f64>,
    store_hit_rate: f64,
    invocations_per_request: f64,
}

impl ArmStats {
    fn mean_ms(&self) -> f64 {
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len().max(1) as f64
    }

    fn percentile_ms(&self, q: f64) -> f64 {
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }

    fn throughput_rps(&self) -> f64 {
        self.latencies_ms.len() as f64 / self.wall_s.max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"throughput_rps\": {:.3}, \"mean_ms\": {:.4}, \"p50_ms\": {:.4}, \
             \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"store_hit_rate\": {:.6}, \
             \"invocations_per_request\": {:.3}}}",
            self.throughput_rps(),
            self.mean_ms(),
            self.percentile_ms(0.50),
            self.percentile_ms(0.95),
            self.percentile_ms(0.99),
            self.store_hit_rate,
            self.invocations_per_request
        )
    }
}

/// Closed-loop clients against a live server; returns per-request
/// latencies (ms) in completion order and the arm wall time.
fn drive_clients(
    addr: &str,
    concurrency: usize,
    requests: usize,
    seed: u64,
    warm_rows: usize,
) -> (f64, Vec<f64>) {
    let per_client = requests / concurrency.max(1);
    let t0 = Instant::now();
    let mut all: Vec<f64> = Vec::with_capacity(requests);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|c| {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect to serve endpoint");
                    stream.set_nodelay(true).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    let mut reader = BufReader::new(stream);
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut line = String::new();
                    for i in 0..per_client {
                        let row = request_row(c, i, seed, warm_rows);
                        let frame =
                            format!("{{\"id\": {i}, \"method\": \"explain\", \"row\": {row}}}\n");
                        let t = Instant::now();
                        reader.get_mut().write_all(frame.as_bytes()).unwrap();
                        line.clear();
                        reader.read_line(&mut line).unwrap();
                        latencies.push(t.elapsed().as_secs_f64() * 1e3);
                        let v = Json::parse(&line).expect("response frame parses");
                        assert_eq!(
                            v.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "explain failed: {line}"
                        );
                    }
                    latencies
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
    });
    (t0.elapsed().as_secs_f64(), all)
}

fn hit_rate(sink: &ProvenanceSink) -> f64 {
    let t = sink.totals();
    let denom = (t.samples_reused + t.samples_fresh) as f64;
    if denom == 0.0 {
        0.0
    } else {
        t.samples_reused as f64 / denom
    }
}

/// Sends one admin frame and returns the parsed response.
fn admin_round_trip(addr: &str, frame: &str) -> Json {
    let stream = TcpStream::connect(addr).expect("connect for admin frame");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    reader.get_mut().write_all(frame.as_bytes()).unwrap();
    reader.get_mut().write_all(b"\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    Json::parse(&line).expect("admin response parses")
}

/// Polls the `metrics` admin frame on its own connection every
/// `interval` until `stop` flips, validating each response; returns the
/// number of successful scrapes.
fn scrape_loop(addr: &str, interval: Duration, stop: &std::sync::atomic::AtomicBool) -> u64 {
    let stream = TcpStream::connect(addr).expect("connect scraper");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut scrapes = 0u64;
    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
        reader
            .get_mut()
            .write_all(b"{\"id\": 1, \"method\": \"metrics\"}\n")
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let v = Json::parse(&line).expect("metrics frame parses");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let text = v
            .get("metrics")
            .and_then(Json::as_str)
            .expect("exposition text");
        assert!(text.contains("# TYPE serve_requests_total counter"));
        scrapes += 1;
        std::thread::sleep(interval);
    }
    scrapes
}

fn main() {
    let seed = base_seed();
    let concurrency = (env_u64("SHAHIN_SERVE_CONCURRENCY", 4) as usize).max(1);
    // Rounded down to a multiple of the client count (closed-loop clients
    // send equal shares).
    let requests =
        (env_u64("SHAHIN_SERVE_REQUESTS", 120) as usize / concurrency).max(1) * concurrency;
    let warm_rows = env_u64("SHAHIN_SERVE_WARM_ROWS", 200) as usize;
    let out_path = std::env::var("SHAHIN_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());

    // External mode: measure a server someone else started (CI smoke).
    if let Ok(addr) = std::env::var("SHAHIN_SERVE_ADDR") {
        println!("# Serving load (external): {requests} requests, {concurrency} clients -> {addr}");
        let (wall_s, latencies_ms) = drive_clients(&addr, concurrency, requests, seed, warm_rows);
        let stats = ArmStats {
            wall_s,
            latencies_ms,
            store_hit_rate: 0.0,
            invocations_per_request: 0.0,
        };
        println!(
            "external: {:.1} req/s, mean {} ms, p95 {} ms",
            stats.throughput_rps(),
            f2(stats.mean_ms()),
            f2(stats.percentile_ms(0.95))
        );
        if env_u64("SHAHIN_SERVE_SHUTDOWN", 0) == 1 {
            let mut stream = TcpStream::connect(&addr).expect("connect for shutdown");
            stream
                .write_all(b"{\"id\": 0, \"method\": \"shutdown\"}\n")
                .expect("send shutdown frame");
            println!("sent shutdown frame");
        }
        let json = format!(
            "{{\n  \"mode\": \"external\",\n  \"requests\": {requests},\n  \"concurrency\": {concurrency},\n  \"warm_rows\": {warm_rows},\n  \"seed\": {seed},\n  \"warm\": {}\n}}\n",
            stats.to_json()
        );
        write_artifact(&out_path, &json);
        println!("wrote {out_path}");
        return;
    }

    let preset = DatasetPreset::Recidivism;
    println!(
        "# Serving load: {requests} requests, {concurrency} clients, {warm_rows} warm rows of {}",
        preset.name()
    );

    // ---- Warm arm: micro-batching server over a primed repository. ----
    let warm_stats = {
        let w = workload(preset, 0.2, seed);
        let warm_rows = warm_rows.min(w.max_batch());
        let warm = w.batch(warm_rows);
        let reg = MetricsRegistry::new();
        let sink = Arc::new(ProvenanceSink::new());
        reg.attach_provenance_sink(Arc::clone(&sink));
        let engine = Arc::new(WarmEngine::prime(
            BatchConfig::default(),
            WarmExplainer::Lime(bench_lime()),
            w.ctx,
            w.clf,
            warm,
            seed,
            &reg,
        ));
        let prime_invocations = engine.invocations();
        println!("warm: primed ({prime_invocations} invocations)");
        let engine_for_stats = Arc::clone(&engine);
        let handle = Server::start(
            engine,
            ServeConfig {
                max_delay: Duration::from_millis(2),
                ..Default::default()
            },
        )
        .expect("server binds");
        let addr = handle.addr().to_string();
        let (wall_s, latencies_ms) = drive_clients(&addr, concurrency, requests, seed, warm_rows);
        handle.shutdown();
        let served = handle.wait();
        let stats = ArmStats {
            wall_s,
            latencies_ms,
            store_hit_rate: hit_rate(&sink),
            invocations_per_request: (engine_for_stats.invocations() - prime_invocations) as f64
                / served.max(1) as f64,
        };
        println!(
            "warm: {:.1} req/s, mean {} ms, p95 {} ms, store hit rate {}, {} invocations/request",
            stats.throughput_rps(),
            f2(stats.mean_ms()),
            f2(stats.percentile_ms(0.95)),
            f2(stats.store_hit_rate),
            f2(stats.invocations_per_request)
        );
        stats
    };

    // ---- Cold arm: one offline batch invocation per request. ----
    let cold_stats = {
        let w = workload(preset, 0.2, seed);
        let warm_rows = warm_rows.min(w.max_batch());
        let warm = w.batch(warm_rows);
        let reg = MetricsRegistry::new();
        let sink = Arc::new(ProvenanceSink::new());
        reg.attach_provenance_sink(Arc::clone(&sink));
        let shahin = ShahinBatch::new(BatchConfig::default()).with_obs(&reg);
        let lime = bench_lime();
        let (ctx, clf) = (&w.ctx, &w.clf);
        let invocations0 = clf.invocations();
        let per_client = requests / concurrency.max(1);
        let t0 = Instant::now();
        let mut latencies_ms: Vec<f64> = Vec::with_capacity(requests);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|c| {
                    let (warm, shahin, lime) = (&warm, &shahin, &lime);
                    scope.spawn(move || {
                        let mut latencies = Vec::with_capacity(per_client);
                        for i in 0..per_client {
                            let row = request_row(c, i, seed, warm_rows);
                            let one = warm.select(&[row]);
                            let t = Instant::now();
                            let result = shahin.explain_lime(ctx, clf, &one, lime, seed);
                            latencies.push(t.elapsed().as_secs_f64() * 1e3);
                            assert_eq!(result.explanations.len(), 1);
                        }
                        latencies
                    })
                })
                .collect();
            for h in handles {
                latencies_ms.extend(h.join().expect("cold client thread"));
            }
        });
        let stats = ArmStats {
            wall_s: t0.elapsed().as_secs_f64(),
            latencies_ms,
            store_hit_rate: hit_rate(&sink),
            invocations_per_request: (clf.invocations() - invocations0) as f64
                / requests.max(1) as f64,
        };
        println!(
            "cold: {:.1} req/s, mean {} ms, p95 {} ms, store hit rate {}, {} invocations/request",
            stats.throughput_rps(),
            f2(stats.mean_ms()),
            f2(stats.percentile_ms(0.95)),
            f2(stats.store_hit_rate),
            f2(stats.invocations_per_request)
        );
        stats
    };

    println!(
        "warm vs cold: {}x mean latency, {}x throughput",
        f2(cold_stats.mean_ms() / warm_stats.mean_ms().max(1e-9)),
        f2(warm_stats.throughput_rps() / cold_stats.throughput_rps().max(1e-9))
    );

    let json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"requests\": {requests},\n  \"concurrency\": {concurrency},\n  \"warm_rows\": {warm_rows},\n  \"seed\": {seed},\n  \"warm\": {},\n  \"cold\": {},\n  \"mean_speedup\": {:.3}\n}}\n",
        preset.name(),
        warm_stats.to_json(),
        cold_stats.to_json(),
        cold_stats.mean_ms() / warm_stats.mean_ms().max(1e-9)
    );
    write_artifact(&out_path, &json);
    println!("wrote {out_path}");

    // ---- Scrape arm: does live exposition cost throughput? ----
    let obs_out =
        std::env::var("SHAHIN_OBS_LIVE_OUT").unwrap_or_else(|_| "BENCH_obs_live.json".into());
    let reps = (env_u64("SHAHIN_OBS_LIVE_REPS", 7) as usize).max(1);
    let scrape_ms = env_u64("SHAHIN_OBS_LIVE_SCRAPE_MS", 500).max(1);
    // Each drive must be long enough that a sub-1% throughput delta is
    // measurable at all (and spans several scrape intervals), so this
    // arm defaults to 12x the serve arms' request count (still rounded
    // to a multiple of the client count).
    let obs_requests =
        (env_u64("SHAHIN_OBS_LIVE_REQUESTS", 12 * requests as u64) as usize / concurrency).max(1)
            * concurrency;
    let budget_pct = std::env::var("SHAHIN_OBS_LIVE_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);
    println!(
        "# Scrape overhead: {obs_requests} requests/drive, {reps} reps, \
         metrics poll every {scrape_ms} ms"
    );

    let (noscrape_rps, scrape_rps, scrapes) = {
        let w = workload(preset, 0.2, seed);
        let warm_rows = warm_rows.min(w.max_batch());
        let warm = w.batch(warm_rows);
        let reg = MetricsRegistry::new();
        let engine = Arc::new(WarmEngine::prime(
            BatchConfig::default(),
            WarmExplainer::Lime(bench_lime()),
            w.ctx,
            w.clf,
            warm,
            seed,
            &reg,
        ));
        // A generous max_delay makes every micro-batch reliably gather
        // all closed-loop clients, which removes batch-composition
        // jitter from the throughput signal — this arm measures the
        // *scraping* delta, and needs the quietest possible baseline.
        let handle = Server::start(
            engine,
            ServeConfig {
                max_delay: Duration::from_millis(5),
                monitor_interval: Duration::from_millis(50),
                windows: 32,
                ..Default::default()
            },
        )
        .expect("server binds");
        let addr = handle.addr().to_string();

        // One untimed warmup drive: the first pass over a fresh server
        // pays one-time costs (thread spawns, allocator growth, branch
        // warmup) that would otherwise land entirely on the bare arm.
        drive_clients(&addr, concurrency, obs_requests, seed, warm_rows);

        // Alternate bare/scraped drives against one warm server —
        // swapping which goes first each rep — so drift (page cache,
        // turbo, a noisy neighbour) hits both arms symmetrically and
        // each rep yields one paired overhead measurement. If the
        // first round's median misses the budget, one more round is
        // pooled in before judging: on a busy shared core a single
        // multi-hundred-ms scheduler stall can land on enough drives
        // of one arm to swing a 7-pair median past 1%.
        let mut no_all: Vec<f64> = Vec::with_capacity(2 * reps);
        let mut scr_all: Vec<f64> = Vec::with_capacity(2 * reps);
        let mut scrapes = 0u64;
        for round in 0..2 {
            for rep in 0..reps {
                let drive_bare = || {
                    let (wall_s, lats) =
                        drive_clients(&addr, concurrency, obs_requests, seed, warm_rows);
                    lats.len() as f64 / wall_s.max(1e-9)
                };
                let drive_scraped = || {
                    let stop = std::sync::atomic::AtomicBool::new(false);
                    let mut rps = 0.0f64;
                    let mut polled = 0u64;
                    std::thread::scope(|scope| {
                        let scraper = scope
                            .spawn(|| scrape_loop(&addr, Duration::from_millis(scrape_ms), &stop));
                        let (wall_s, lats) =
                            drive_clients(&addr, concurrency, obs_requests, seed, warm_rows);
                        rps = lats.len() as f64 / wall_s.max(1e-9);
                        stop.store(true, std::sync::atomic::Ordering::Relaxed);
                        polled = scraper.join().expect("scraper thread");
                    });
                    (rps, polled)
                };
                let (no_rps, (scr_rps, polled)) = if rep % 2 == 0 {
                    let no = drive_bare();
                    (no, drive_scraped())
                } else {
                    let scraped = drive_scraped();
                    (drive_bare(), scraped)
                };
                no_all.push(no_rps);
                scr_all.push(scr_rps);
                scrapes += polled;
                println!("rep {rep}: bare {no_rps:.1} req/s, scraped {scr_rps:.1} req/s");
            }
            let mut sorted: Vec<f64> = no_all
                .iter()
                .zip(&scr_all)
                .map(|(no, scr)| 100.0 * (no - scr) / no.max(1e-9))
                .collect();
            sorted.sort_by(|a, b| a.total_cmp(b));
            if round == 0 && sorted[sorted.len() / 2] >= budget_pct {
                println!("first-round median missed the budget; pooling a second round");
            } else {
                break;
            }
        }

        // One windowed-stats sanity check while the server is still up.
        let stats = admin_round_trip(&addr, "{\"id\": 2, \"method\": \"stats\"}");
        assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
        assert!(
            stats.get("stats").is_some(),
            "stats frame carries a summary object"
        );

        handle.shutdown();
        handle.wait();
        (no_all, scr_all, scrapes)
    };

    fn median(values: &[f64]) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted[sorted.len() / 2]
    }
    let pair_overheads: Vec<f64> = noscrape_rps
        .iter()
        .zip(&scrape_rps)
        .map(|(no, scr)| 100.0 * (no - scr) / no.max(1e-9))
        .collect();
    let overhead_pct = median(&pair_overheads);
    let noscrape_rps = median(&noscrape_rps);
    let scrape_rps = median(&scrape_rps);
    println!(
        "scrape overhead: bare {noscrape_rps:.1} req/s vs scraped {scrape_rps:.1} req/s \
         median ({} pct, {scrapes} scrapes, budget {} pct)",
        f2(overhead_pct),
        f2(budget_pct)
    );
    assert!(
        scrapes > 0,
        "the scraper must have completed at least one poll"
    );
    assert!(
        overhead_pct < budget_pct,
        "live scraping cost {overhead_pct:.2}% of throughput (budget {budget_pct:.2}%)"
    );

    let obs_json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"requests\": {obs_requests},\n  \"concurrency\": {concurrency},\n  \"warm_rows\": {warm_rows},\n  \"seed\": {seed},\n  \"reps\": {reps},\n  \"scrape_interval_ms\": {scrape_ms},\n  \"noscrape_rps\": {noscrape_rps:.3},\n  \"scrape_rps\": {scrape_rps:.3},\n  \"overhead_pct\": {overhead_pct:.3},\n  \"budget_pct\": {budget_pct:.3},\n  \"scrapes\": {scrapes}\n}}\n",
        preset.name()
    );
    write_artifact(&obs_out, &obs_json);
    println!("wrote {obs_out}");

    // ---- Tracing arm: does request-scoped tracing cost throughput? ----
    let trace_out = std::env::var("SHAHIN_TRACE_OUT").unwrap_or_else(|_| "BENCH_trace.json".into());
    let trace_reps = (env_u64("SHAHIN_TRACE_REPS", 7) as usize).max(1);
    let trace_requests =
        (env_u64("SHAHIN_TRACE_REQUESTS", 12 * requests as u64) as usize / concurrency).max(1)
            * concurrency;
    let trace_budget_pct = std::env::var("SHAHIN_TRACE_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);
    println!(
        "# Tracing overhead: {trace_requests} requests/drive, {trace_reps} reps, \
         default tail sampling"
    );

    let (bare_rps, traced_rps, retained) = {
        let w = workload(preset, 0.2, seed);
        let warm_rows = warm_rows.min(w.max_batch());
        let warm = w.batch(warm_rows);
        let reg = MetricsRegistry::new();
        let engine = Arc::new(WarmEngine::prime(
            BatchConfig::default(),
            WarmExplainer::Lime(bench_lime()),
            w.ctx,
            w.clf,
            warm,
            seed,
            &reg,
        ));
        // Both servers share the primed engine: the bare one admits
        // requests without trace contexts (trace_store: 0), so the
        // engine's stage capture stays dormant on its path, and sharing
        // keeps the warm store identical between arms.
        let quiet = ServeConfig {
            max_delay: Duration::from_millis(5),
            monitor_interval: Duration::from_millis(50),
            windows: 32,
            ..Default::default()
        };
        let bare_handle = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                trace_store: 0,
                ..quiet.clone()
            },
        )
        .expect("bare server binds");
        let traced_handle = Server::start(engine, quiet).expect("traced server binds");
        let bare_addr = bare_handle.addr().to_string();
        let traced_addr = traced_handle.addr().to_string();

        // Untimed warmup on each server (thread spawns, allocator
        // growth) so one-time costs land on neither timed arm.
        drive_clients(&bare_addr, concurrency, trace_requests, seed, warm_rows);
        drive_clients(&traced_addr, concurrency, trace_requests, seed, warm_rows);

        // Same pooled-second-round estimator as the scrape arm: one
        // paired overhead per rep, order alternating, judged by median.
        let mut bare_all: Vec<f64> = Vec::with_capacity(2 * trace_reps);
        let mut traced_all: Vec<f64> = Vec::with_capacity(2 * trace_reps);
        for round in 0..2 {
            for rep in 0..trace_reps {
                let drive = |addr: &str| {
                    let (wall_s, lats) =
                        drive_clients(addr, concurrency, trace_requests, seed, warm_rows);
                    lats.len() as f64 / wall_s.max(1e-9)
                };
                let (bare, traced) = if rep % 2 == 0 {
                    let b = drive(&bare_addr);
                    (b, drive(&traced_addr))
                } else {
                    let t = drive(&traced_addr);
                    (drive(&bare_addr), t)
                };
                bare_all.push(bare);
                traced_all.push(traced);
                println!("rep {rep}: bare {bare:.1} req/s, traced {traced:.1} req/s");
            }
            let mut sorted: Vec<f64> = bare_all
                .iter()
                .zip(&traced_all)
                .map(|(no, tr)| 100.0 * (no - tr) / no.max(1e-9))
                .collect();
            sorted.sort_by(|a, b| a.total_cmp(b));
            if round == 0 && sorted[sorted.len() / 2] >= trace_budget_pct {
                println!("first-round median missed the budget; pooling a second round");
            } else {
                break;
            }
        }

        // The traced server must actually have retained traces — an
        // accidentally-dormant tracer would measure 0% overhead.
        let slowest = admin_round_trip(
            &traced_addr,
            "{\"id\": 3, \"method\": \"trace\", \"slowest\": 1}",
        );
        assert_eq!(slowest.get("ok").and_then(Json::as_bool), Some(true));
        let retained = slowest
            .get("store")
            .and_then(|s| s.get("retained"))
            .and_then(Json::as_f64)
            .expect("trace frame carries store totals") as u64;

        bare_handle.shutdown();
        traced_handle.shutdown();
        bare_handle.wait();
        traced_handle.wait();
        (bare_all, traced_all, retained)
    };

    let trace_pair_overheads: Vec<f64> = bare_rps
        .iter()
        .zip(&traced_rps)
        .map(|(no, tr)| 100.0 * (no - tr) / no.max(1e-9))
        .collect();
    let trace_overhead_pct = median(&trace_pair_overheads);
    let bare_rps = median(&bare_rps);
    let traced_rps = median(&traced_rps);
    println!(
        "tracing overhead: bare {bare_rps:.1} req/s vs traced {traced_rps:.1} req/s \
         median ({} pct, {retained} traces retained, budget {} pct)",
        f2(trace_overhead_pct),
        f2(trace_budget_pct)
    );
    assert!(
        retained > 0,
        "the traced server must have retained at least one trace"
    );
    assert!(
        trace_overhead_pct < trace_budget_pct,
        "tracing cost {trace_overhead_pct:.2}% of throughput (budget {trace_budget_pct:.2}%)"
    );

    let trace_json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"requests\": {trace_requests},\n  \"concurrency\": {concurrency},\n  \"warm_rows\": {warm_rows},\n  \"seed\": {seed},\n  \"reps\": {trace_reps},\n  \"bare_rps\": {bare_rps:.3},\n  \"traced_rps\": {traced_rps:.3},\n  \"overhead_pct\": {trace_overhead_pct:.3},\n  \"budget_pct\": {trace_budget_pct:.3},\n  \"retained\": {retained}\n}}\n",
        preset.name()
    );
    write_artifact(&trace_out, &trace_json);
    println!("wrote {trace_out}");

    // ---- Persist arm: the restart drill, cold re-prime vs hydration. ----
    let persist_out =
        std::env::var("SHAHIN_PERSIST_OUT").unwrap_or_else(|_| "BENCH_persist.json".into());
    // Distinct rows keep serve-time invocation counts deterministic:
    // duplicate rows inside one micro-batch would race on who inserts the
    // fresh perturbations first, and this arm gates counts exactly.
    let persist_requests = (env_u64("SHAHIN_PERSIST_REQUESTS", requests as u64) as usize)
        .min(env_u64("SHAHIN_SERVE_WARM_ROWS", 200) as usize);
    println!(
        "# Restart drill: {persist_requests} requests, cold re-prime vs --warm-from hydration"
    );

    let sequence = |warm_rows: usize| -> Vec<WarmRequest> {
        (0..persist_requests.min(warm_rows))
            .map(|i| WarmRequest {
                row: i,
                request_id: i as u64,
                trace: None,
            })
            .collect()
    };
    let serve_fingerprint = |engine: &WarmEngine<_>, warm_rows: usize| -> (u64, u64) {
        let before = engine.invocations();
        let outcomes = engine.explain(&sequence(warm_rows));
        let explanations: Vec<_> = outcomes
            .into_iter()
            .map(|o| match o {
                WarmOutcome::Ok { explanation, .. } => explanation,
                WarmOutcome::Failed(f) => panic!("restart drill request failed: {f:?}"),
            })
            .collect();
        (
            explanation_fingerprint(&explanations),
            engine.invocations() - before,
        )
    };

    // Donor: prime, serve the sequence, snapshot the repository —
    // exactly what a production server writes at drain. (Serving never
    // mutates the store, so this equals the post-prime state — the
    // canonical-dump property the e2e suite pins down.)
    let (donor_bytes, donor_fp, donor_warm_rows) = {
        let w = workload(preset, 0.2, seed);
        let warm_rows = warm_rows.min(w.max_batch());
        let warm = w.batch(warm_rows);
        let reg = MetricsRegistry::new();
        let engine = WarmEngine::prime(
            BatchConfig::default(),
            WarmExplainer::Lime(bench_lime()),
            w.ctx,
            w.clf,
            warm,
            seed,
            &reg,
        );
        let (fp, serve_inv) = serve_fingerprint(&engine, warm_rows);
        println!(
            "donor: primed ({} invocations), served ({serve_inv} invocations), snapshotting",
            engine.invocations() - serve_inv
        );
        (engine.snapshot_bytes(), fp, warm_rows)
    };

    // Cold restart: a fresh process re-primes from scratch and re-pays
    // the donor's entire materialization bill before it can serve.
    let (cold_restart_s, cold_restart_inv, cold_serve_inv, cold_fp) = {
        let w = workload(preset, 0.2, seed);
        let warm = w.batch(donor_warm_rows);
        let reg = MetricsRegistry::new();
        let t0 = Instant::now();
        let engine = WarmEngine::prime(
            BatchConfig::default(),
            WarmExplainer::Lime(bench_lime()),
            w.ctx,
            w.clf,
            warm,
            seed,
            &reg,
        );
        let restart_s = t0.elapsed().as_secs_f64();
        let restart_inv = engine.invocations();
        let (fp, serve_inv) = serve_fingerprint(&engine, donor_warm_rows);
        (restart_s, restart_inv, serve_inv, fp)
    };

    // Hydrated restart: the same fresh process warms from the snapshot —
    // no mining, no classifier calls — and serves the identical sequence
    // (serve-time reads never mutate the store, so its serve invoice
    // matches the cold arm's exactly; only the restart bill differs).
    let (hyd_restart_s, hyd_restart_inv, hyd_serve_inv, hyd_fp) = {
        let w = workload(preset, 0.2, seed);
        let warm = w.batch(donor_warm_rows);
        let reg = MetricsRegistry::new();
        let t0 = Instant::now();
        let engine = WarmEngine::prime_from_snapshot(
            BatchConfig::default(),
            WarmExplainer::Lime(bench_lime()),
            w.ctx,
            w.clf,
            warm,
            seed,
            &reg,
            &donor_bytes,
        )
        .expect("the donor snapshot hydrates");
        let restart_s = t0.elapsed().as_secs_f64();
        let restart_inv = engine.invocations();
        let (fp, serve_inv) = serve_fingerprint(&engine, donor_warm_rows);
        (restart_s, restart_inv, serve_inv, fp)
    };

    let bit_identical = cold_fp == donor_fp && hyd_fp == donor_fp;
    assert!(
        bit_identical,
        "restart drill fingerprints diverged: donor {donor_fp:016x}, \
         cold {cold_fp:016x}, hydrated {hyd_fp:016x}"
    );
    assert_eq!(hyd_restart_inv, 0, "hydration must be classifier-free");
    let restart_speedup = cold_restart_s / hyd_restart_s.max(1e-9);
    println!(
        "cold restart: {} ({cold_restart_inv} invocations), served with {cold_serve_inv}",
        shahin_bench::secs(cold_restart_s)
    );
    println!(
        "hydrated restart: {} (0 invocations), served with {hyd_serve_inv} — \
         {}x faster to warm, bit-identical",
        shahin_bench::secs(hyd_restart_s),
        f2(restart_speedup)
    );

    let persist_json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"requests\": {persist_requests},\n  \"warm_rows\": {donor_warm_rows},\n  \"seed\": {seed},\n  \"snapshot_bytes\": {},\n  \"fingerprint\": \"{donor_fp:016x}\",\n  \"cold\": {{\"restart_s\": {cold_restart_s:.6}, \"restart_invocations\": {cold_restart_inv}, \"serve_invocations\": {cold_serve_inv}}},\n  \"hydrated\": {{\"restart_s\": {hyd_restart_s:.6}, \"restart_invocations\": {hyd_restart_inv}, \"serve_invocations\": {hyd_serve_inv}, \"bit_identical\": {bit_identical}}},\n  \"restart_speedup\": {restart_speedup:.3}\n}}\n",
        preset.name(),
        donor_bytes.len(),
    );
    write_artifact(&persist_out, &persist_json);
    println!("wrote {persist_out}");

    // ---- Tenancy arm: a multi-tenant cluster under a Zipf mix. ----
    let tenancy_out =
        std::env::var("SHAHIN_TENANCY_OUT").unwrap_or_else(|_| "BENCH_tenancy.json".into());
    let n_tenants = (env_u64("SHAHIN_TENANCY_TENANTS", 3) as usize).max(2);
    let tenancy_requests = (env_u64("SHAHIN_TENANCY_REQUESTS", requests as u64) as usize
        / concurrency)
        .max(1)
        * concurrency;
    let tenancy_warm_rows = env_u64("SHAHIN_TENANCY_WARM_ROWS", 48) as usize;
    let idle_ms = env_u64("SHAHIN_TENANCY_IDLE_MS", 3000);
    // Rows fingerprinted per tenant before eviction and after hydrated
    // re-admission — the bit-identity probe.
    const FP_ROWS: usize = 6;
    println!(
        "# Tenancy: {n_tenants} tenants, {tenancy_requests} Zipf-mixed requests, \
         {idle_ms} ms keepalive"
    );

    let snap_dir = std::env::temp_dir().join(format!("shahin_bench_tenancy_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    std::fs::create_dir_all(&snap_dir).expect("tenancy snapshot scratch dir");

    // Zipf(1) over tenant ranks, deterministic in (seed, i): tenant t
    // draws traffic proportional to 1/(t+1).
    let zipf_tenant = |i: usize| -> usize {
        let mut z = (seed ^ 0x7E4A_2026).wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        let h: f64 = (1..=n_tenants).map(|k| 1.0 / k as f64).sum();
        let mut acc = 0.0;
        for t in 0..n_tenants {
            acc += 1.0 / ((t + 1) as f64) / h;
            if u < acc {
                return t;
            }
        }
        n_tenants - 1
    };
    let schedule: Vec<usize> = (0..tenancy_requests).map(zipf_tenant).collect();
    let mut mix = vec![0usize; n_tenants];
    for &t in &schedule {
        mix[t] += 1;
    }

    // Each tenant gets its own model, context, and warm set (derived
    // from a per-tenant seed) plus a factory the lifecycle controller
    // re-materializes it with on every cold start.
    let obs = MetricsRegistry::new();
    let mut tenant_rows: Vec<usize> = Vec::with_capacity(n_tenants);
    let mut configs = Vec::with_capacity(n_tenants);
    for t in 0..n_tenants {
        let tseed = seed.wrapping_add(t as u64);
        let w = workload(preset, 0.2, tseed);
        let rows = tenancy_warm_rows.min(w.max_batch());
        let warm = w.batch(rows);
        let inner = w.clf.inner().clone();
        let ctx = w.ctx;
        let treg = MetricsRegistry::new();
        tenant_rows.push(rows);
        configs.push(shahin_tenancy::TenantConfig {
            name: format!("tenant{t}"),
            n_rows: rows,
            quota: None,
            snapshot_path: Some(snap_dir.join(format!("tenant{t}.shws"))),
            warm_from: None,
            factory: Box::new(move |bytes| {
                WarmEngine::prime_warm_or_cold(
                    BatchConfig::default(),
                    WarmExplainer::Lime(bench_lime()),
                    ctx.clone(),
                    // A fresh counting wrapper per materialization, so
                    // each engine's invocation count is its own.
                    shahin_model::CountingClassifier::new(inner.clone()),
                    warm.clone(),
                    tseed,
                    &treg,
                    bytes,
                )
            }),
        });
    }
    let cluster = Arc::new(shahin_tenancy::TenantRegistry::new(
        configs,
        0,
        shahin_tenancy::LifecyclePolicy {
            memory_budget_bytes: None,
            idle_evict: Some(Duration::from_millis(idle_ms)),
        },
        &obs,
    ));
    let handle = Server::start_cluster(
        cluster,
        ServeConfig {
            max_delay: Duration::from_millis(2),
            poll_interval: Duration::from_millis(10),
            monitor_interval: Duration::from_millis(50),
            ..Default::default()
        },
    )
    .expect("tenant cluster binds");
    let addr = handle.addr().to_string();

    /// One tenant-routed explain round trip; panics on error frames.
    fn tenant_explain(
        reader: &mut BufReader<TcpStream>,
        id: usize,
        tenant: usize,
        row: usize,
    ) -> Json {
        let frame =
            format!("{{\"id\": {id}, \"method\": \"explain\", \"row\": {row}, \"tenant\": \"tenant{tenant}\"}}\n");
        reader.get_mut().write_all(frame.as_bytes()).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = Json::parse(&line).expect("tenant explain frame parses");
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "tenant explain failed: {line}"
        );
        v
    }

    /// Folds the served weight bits into an FNV-1a fingerprint, so two
    /// servings can be compared bit-for-bit over the wire.
    fn eat_weights(fp: &mut u64, frame: &Json) {
        const PRIME: u64 = 0x1_0000_01b3;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                *fp ^= u64::from(b);
                *fp = fp.wrapping_mul(PRIME);
            }
        };
        for w in frame.get("weights").unwrap().as_arr().unwrap() {
            eat(w.as_f64().unwrap().to_bits());
        }
        eat(frame.get("intercept").unwrap().as_f64().unwrap().to_bits());
        eat(
            frame
                .get("local_prediction")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
        );
    }

    let connect = |addr: &str| -> BufReader<TcpStream> {
        let stream = TcpStream::connect(addr).expect("connect to tenant cluster");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        BufReader::new(stream)
    };
    let mut client = connect(&addr);

    // Phase 1 — cold starts: the first touch per tenant pays lazy
    // materialization (mining + priming, no snapshot on disk yet).
    let cold_ms: Vec<f64> = (0..n_tenants)
        .map(|t| {
            let t0 = Instant::now();
            tenant_explain(&mut client, t, t, 0);
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();

    // Phase 2 — fingerprint the first rows of every tenant while warm.
    let mut fp_before = 0xcbf2_9ce4_8422_2325u64;
    for (t, &rows) in tenant_rows.iter().enumerate() {
        for row in 0..FP_ROWS.min(rows) {
            let frame = tenant_explain(&mut client, 100 + row, t, row);
            eat_weights(&mut fp_before, &frame);
        }
    }

    // Phase 3 — keepalive: the Zipf-mixed closed-loop drive over warm
    // tenants (client c takes every `concurrency`-th schedule slot).
    let keepalive = {
        let t0 = Instant::now();
        let mut all: Vec<f64> = Vec::with_capacity(tenancy_requests);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|c| {
                    let (addr, schedule, tenant_rows) = (&addr, &schedule, &tenant_rows);
                    scope.spawn(move || {
                        let mut reader = connect(addr);
                        let mut latencies = Vec::new();
                        for (i, &t) in schedule
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| i % concurrency == c)
                        {
                            let row = (i * 104_729 + seed as usize) % tenant_rows[t];
                            let t0 = Instant::now();
                            tenant_explain(&mut reader, i, t, row);
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        }
                        latencies
                    })
                })
                .collect();
            for h in handles {
                all.extend(h.join().expect("tenancy client thread"));
            }
        });
        ArmStats {
            wall_s: t0.elapsed().as_secs_f64(),
            latencies_ms: all,
            store_hit_rate: 0.0,
            invocations_per_request: 0.0,
        }
    };
    println!(
        "keepalive: {:.1} req/s, mean {} ms, p95 {} ms (mix {mix:?})",
        keepalive.throughput_rps(),
        f2(keepalive.mean_ms()),
        f2(keepalive.percentile_ms(0.95))
    );

    // Phase 4 — eviction churn: every tenant idles past the keepalive;
    // the monitor's lifecycle sweep retires them all, writing at-evict
    // snapshots. Pings poll state without resetting the idle clock.
    let evict_t0 = Instant::now();
    loop {
        assert!(
            evict_t0.elapsed() < Duration::from_secs(120),
            "tenants never idled out"
        );
        let ping = admin_round_trip(&addr, "{\"id\": 1, \"method\": \"ping\"}");
        let all_evicted = ping
            .get("tenants")
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .all(|t| t.get("state").and_then(Json::as_str) == Some("evicted"))
            })
            .unwrap_or(false);
        if all_evicted {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let evict_wait_s = evict_t0.elapsed().as_secs_f64();

    // Phase 5 — hydrated re-admission: the next touch per tenant
    // cold-starts again, classifier-free from the at-evict snapshot, and
    // must serve the same bits as the first incarnation.
    let mut client = connect(&addr);
    let readmit_ms: Vec<f64> = (0..n_tenants)
        .map(|t| {
            let t0 = Instant::now();
            tenant_explain(&mut client, 200 + t, t, 0);
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let mut fp_after = 0xcbf2_9ce4_8422_2325u64;
    for (t, &rows) in tenant_rows.iter().enumerate() {
        for row in 0..FP_ROWS.min(rows) {
            let frame = tenant_explain(&mut client, 300 + row, t, row);
            eat_weights(&mut fp_after, &frame);
        }
    }
    let bit_identical = fp_after == fp_before;
    assert!(
        bit_identical,
        "re-admitted tenants diverged: {fp_before:016x} vs {fp_after:016x}"
    );

    handle.shutdown();
    handle.wait();
    let snap = obs.snapshot();
    let cold_starts = snap.counter(shahin::obs::names::TENANCY_COLD_STARTS);
    let evictions = snap.counter(shahin::obs::names::TENANCY_EVICTIONS);
    let hydrations = snap.counter(shahin::obs::names::TENANCY_HYDRATIONS);
    assert!(
        hydrations >= n_tenants as u64,
        "every re-admission must hydrate from its at-evict snapshot"
    );
    let cold_start_ms = median(&cold_ms);
    let readmit_med_ms = median(&readmit_ms);
    let hydrated_speedup = cold_start_ms / readmit_med_ms.max(1e-9);
    println!(
        "cold start {} ms vs hydrated re-admission {} ms ({}x) — \
         {cold_starts} cold starts, {evictions} evictions, {hydrations} hydrations, \
         idled out in {}",
        f2(cold_start_ms),
        f2(readmit_med_ms),
        f2(hydrated_speedup),
        shahin_bench::secs(evict_wait_s)
    );

    let mix_json: Vec<String> = mix.iter().map(|c| c.to_string()).collect();
    let tenancy_json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"tenants\": {n_tenants},\n  \"requests\": {tenancy_requests},\n  \"warm_rows\": {tenancy_warm_rows},\n  \"seed\": {seed},\n  \"idle_ms\": {idle_ms},\n  \"mix\": [{}],\n  \"cold_start_ms\": {cold_start_ms:.4},\n  \"keepalive\": {},\n  \"readmit_ms\": {readmit_med_ms:.4},\n  \"hydrated_speedup\": {hydrated_speedup:.3},\n  \"evict_wait_s\": {evict_wait_s:.3},\n  \"cold_starts\": {cold_starts},\n  \"evictions\": {evictions},\n  \"hydrations\": {hydrations},\n  \"fingerprint\": \"{fp_before:016x}\",\n  \"bit_identical\": {bit_identical}\n}}\n",
        preset.name(),
        mix_json.join(", "),
        keepalive.to_json()
    );
    write_artifact(&tenancy_out, &tenancy_json);
    println!("wrote {tenancy_out}");
    let _ = std::fs::remove_dir_all(&snap_dir);
}
