//! Figure 4: speedup ratio of Shahin-Streaming over the sequential
//! baseline for LIME, Anchor, and SHAP across all five datasets, as the
//! stream length grows. The paper's observations to check: streaming
//! starts slower (~25% of batch-mode speedup) and closes the gap (>60%)
//! for longer streams.

use shahin::metrics::{speedup_invocations, speedup_wall};
use shahin::{run, ExplainerKind, Method};
use shahin_bench::{base_seed, bench_anchor, bench_lime, bench_shap, f2, row, scaled, workload};
use shahin_tabular::DatasetPreset;

fn main() {
    let seed = base_seed();
    let batch_sizes: Vec<usize> = [10, 100, 1000, 2000].iter().map(|&n| scaled(n)).collect();

    println!("# Figure 4: Speedup Ratio of Shahin-Streaming across datasets");
    println!(
        "{}",
        row(&[
            "dataset".into(),
            "explainer".into(),
            "batch".into(),
            "speedup(wall)".into(),
            "speedup(invocations)".into(),
            "vs-batch-mode".into(),
        ])
    );

    for preset in DatasetPreset::all() {
        let w = workload(preset, 1.0, seed);
        for kind in [
            ExplainerKind::Lime(bench_lime()),
            ExplainerKind::Anchor(bench_anchor()),
            ExplainerKind::Shap(bench_shap()),
        ] {
            for &n in &batch_sizes {
                let batch = w.batch(n);
                let seq = run(&Method::Sequential, &kind, &w.ctx, &w.clf, &batch, seed);
                let bt = run(
                    &Method::Batch(Default::default()),
                    &kind,
                    &w.ctx,
                    &w.clf,
                    &batch,
                    seed,
                );
                let st = run(
                    &Method::Streaming(Default::default()),
                    &kind,
                    &w.ctx,
                    &w.clf,
                    &batch,
                    seed,
                );
                let s_inv = speedup_invocations(&seq.metrics, &st.metrics);
                let b_inv = speedup_invocations(&seq.metrics, &bt.metrics);
                println!(
                    "{}",
                    row(&[
                        w.name.into(),
                        kind.name().into(),
                        batch.n_rows().to_string(),
                        f2(speedup_wall(&seq.metrics, &st.metrics)),
                        f2(s_inv),
                        format!("{:.0}%", 100.0 * s_inv / b_inv.max(1e-9)),
                    ])
                );
            }
        }
    }
}
