//! Figure 6: impact of the number of perturbations materialized per
//! frequent itemset (τ) on Shahin-Batch's speedup, for all three
//! explainers on Census-Income. The paper: even τ = 10 gives ~5× for LIME;
//! beyond τ = 100 there is no additional benefit.

use shahin::metrics::{speedup_invocations, speedup_wall};
use shahin::{run, BatchConfig, ExplainerKind, Method};
use shahin_bench::{base_seed, bench_anchor, bench_lime, bench_shap, f2, row, scaled, workload};
use shahin_tabular::DatasetPreset;

fn main() {
    let seed = base_seed();
    let batch = scaled(1000);
    let taus = [1usize, 10, 100, 1000];
    let w = workload(DatasetPreset::CensusIncome, 1.0, seed);
    let batch = w.batch(batch);

    println!("# Figure 6: Impact of #Perturbations per itemset (τ), Census-Income");
    println!(
        "{}",
        row(&[
            "explainer".into(),
            "tau".into(),
            "speedup(wall)".into(),
            "speedup(invocations)".into(),
        ])
    );

    for kind in [
        ExplainerKind::Lime(bench_lime()),
        ExplainerKind::Anchor(bench_anchor()),
        ExplainerKind::Shap(bench_shap()),
    ] {
        let seq = run(&Method::Sequential, &kind, &w.ctx, &w.clf, &batch, seed);
        for &tau in &taus {
            let cfg = BatchConfig {
                tau,
                auto_tau: false,
                ..Default::default()
            };
            let r = run(&Method::Batch(cfg), &kind, &w.ctx, &w.clf, &batch, seed);
            println!(
                "{}",
                row(&[
                    kind.name().into(),
                    tau.to_string(),
                    f2(speedup_wall(&seq.metrics, &r.metrics)),
                    f2(speedup_invocations(&seq.metrics, &r.metrics)),
                ])
            );
        }
    }
}
