//! Figure 7: impact of the perturbation-cache size on Shahin-Batch's
//! speedup, for all three explainers on Census-Income.
//!
//! The paper sweeps 16 MB → 1024 MB with performance peaking around
//! 128 MB; our store is proportionally smaller (reduced τ and sample
//! counts), so the sweep covers 16 KB → 4 MB — the *shape* to reproduce is
//! the saturation: small caches hurt, and beyond a threshold extra space
//! buys nothing.

use shahin::metrics::{speedup_invocations, speedup_wall};
use shahin::{run, BatchConfig, ExplainerKind, Method};
use shahin_bench::{base_seed, bench_anchor, bench_lime, bench_shap, f2, row, scaled, workload};
use shahin_tabular::DatasetPreset;

fn main() {
    let seed = base_seed();
    let batch = scaled(1000);
    let budgets: [(usize, &str); 5] = [
        (16 << 10, "16KB"),
        (64 << 10, "64KB"),
        (256 << 10, "256KB"),
        (1 << 20, "1MB"),
        (4 << 20, "4MB"),
    ];
    let w = workload(DatasetPreset::CensusIncome, 1.0, seed);
    let batch = w.batch(batch);

    println!("# Figure 7: Impact of Cache Size, Census-Income");
    println!(
        "{}",
        row(&[
            "explainer".into(),
            "cache".into(),
            "speedup(wall)".into(),
            "speedup(invocations)".into(),
            "store peak bytes".into(),
        ])
    );

    for kind in [
        ExplainerKind::Lime(bench_lime()),
        ExplainerKind::Anchor(bench_anchor()),
        ExplainerKind::Shap(bench_shap()),
    ] {
        let seq = run(&Method::Sequential, &kind, &w.ctx, &w.clf, &batch, seed);
        for &(budget, label) in &budgets {
            let cfg = BatchConfig {
                cache_budget_bytes: budget,
                ..Default::default()
            };
            let r = run(&Method::Batch(cfg), &kind, &w.ctx, &w.clf, &batch, seed);
            println!(
                "{}",
                row(&[
                    kind.name().into(),
                    label.into(),
                    f2(speedup_wall(&seq.metrics, &r.metrics)),
                    f2(speedup_invocations(&seq.metrics, &r.metrics)),
                    r.metrics.store_bytes.to_string(),
                ])
            );
        }
    }
}
