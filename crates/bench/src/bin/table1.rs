//! Table 1: dataset characteristics and average per-tuple explanation time
//! (batch of 1000) for the sequential baseline, Shahin-Batch, and
//! Shahin-Streaming across LIME, Anchor, and SHAP.

use shahin::{run, ExplainerKind, Method};
use shahin_bench::{
    base_seed, bench_anchor, bench_lime, bench_shap, f2, row, scaled, secs, workload,
};
use shahin_tabular::DatasetPreset;

fn main() {
    let batch_size = scaled(1000);
    let seed = base_seed();
    println!("# Table 1: Dataset Characteristics and Performance of Shahin");
    println!(
        "# batch = {batch_size}; cells are per-tuple seconds: sequential, \
         Shahin-Batch, Shahin-Streaming (and the same for invocations/tuple)"
    );
    println!(
        "{}",
        row(&[
            "Dataset".into(),
            "#Tuples".into(),
            "#CatA".into(),
            "#NumA".into(),
            "#MaxDC".into(),
            "LIME (s)".into(),
            "Anchor (s)".into(),
            "SHAP (s)".into(),
            "LIME (inv)".into(),
            "Anchor (inv)".into(),
            "SHAP (inv)".into(),
        ])
    );

    for preset in DatasetPreset::all() {
        let w = workload(preset, 1.0, seed);
        let batch = w.batch(batch_size);
        let spec = preset.spec(1.0);
        let schema = spec.schema();
        let n_cat = schema.categorical_indices().len();
        let n_num = schema.len() - n_cat;

        let mut time_cells = Vec::new();
        let mut inv_cells = Vec::new();
        for kind in [
            ExplainerKind::Lime(bench_lime()),
            ExplainerKind::Anchor(bench_anchor()),
            ExplainerKind::Shap(bench_shap()),
        ] {
            let mut times = Vec::new();
            let mut invs = Vec::new();
            for method in [
                Method::Sequential,
                Method::Batch(Default::default()),
                Method::Streaming(Default::default()),
            ] {
                let r = run(&method, &kind, &w.ctx, &w.clf, &batch, seed);
                times.push(format!("{:.3}", r.metrics.per_tuple_secs()));
                invs.push(format!("{:.0}", r.metrics.invocations_per_tuple()));
                eprintln!(
                    "  [{}] {} {}: {} / tuple, {} inv/tuple",
                    w.name,
                    kind.name(),
                    method.name(),
                    secs(r.metrics.per_tuple_secs()),
                    f2(r.metrics.invocations_per_tuple()),
                );
            }
            time_cells.push(times.join(", "));
            inv_cells.push(invs.join(", "));
        }

        println!(
            "{}",
            row(&[
                w.name.to_string(),
                spec.n_rows.to_string(),
                n_cat.to_string(),
                n_num.to_string(),
                schema.max_domain_cardinality().to_string(),
                time_cells[0].clone(),
                time_cells[1].clone(),
                time_cells[2].clone(),
                inv_cells[0].clone(),
                inv_cells[1].clone(),
                inv_cells[2].clone(),
            ])
        );
    }
}
