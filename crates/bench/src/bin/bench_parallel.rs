//! Parallel-driver benchmark: sequential Shahin-Batch vs the multi-threaded
//! drivers (`Method::BatchParallel`) at 2/4/8 worker threads, for each
//! explainer, on Census-Income. Emits `BENCH_parallel.json`.
//!
//! The classifier is wrapped in [`LatencyCost`] (per-invocation *sleep*)
//! rather than the busy-wait `SimulatedCost` the figure binaries use: a
//! sleeping invocation models a round-trip to a model server, and sleeps
//! from different worker threads overlap even when the bench machine has
//! fewer cores than worker threads — which is exactly the deployment the
//! multi-core pipeline targets.
//!
//! Environment knobs (on top of the shared `SHAHIN_SEED`):
//!
//! * `SHAHIN_PAR_BATCH` — tuples per batch (default 5000),
//! * `SHAHIN_PAR_LATENCY_US` — sleep microseconds per classifier
//!   invocation (default 100, a model-server round trip),
//! * `SHAHIN_PAR_THREADS` — comma-separated thread counts (default 2,4,8),
//! * `SHAHIN_PAR_OUT` — output path (default BENCH_parallel.json),
//! * `SHAHIN_PAR_METRICS_OUT` — if set, record spans/counters/latency
//!   histograms across the whole sweep and write the snapshot there as
//!   JSON (recording stays disabled otherwise).

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::{run_with_obs, BatchConfig, ExplainerKind, Method, MetricsRegistry, RunReport};
use shahin_bench::{
    base_seed, bench_anchor, bench_lime, bench_shap, env_u64, f2, secs, write_artifact,
};
use shahin_explain::ExplainContext;
use shahin_model::{CountingClassifier, ForestParams, LatencyCost, RandomForest, TracedClassifier};
use shahin_tabular::{train_test_split, DatasetPreset};

struct Measurement {
    wall_s: f64,
    invocations: u64,
}

fn measure(
    method: &Method,
    kind: &ExplainerKind,
    ctx: &ExplainContext,
    clf: &CountingClassifier<TracedClassifier<LatencyCost<RandomForest>>>,
    batch: &shahin_tabular::Dataset,
    seed: u64,
    obs: &MetricsRegistry,
) -> (Measurement, RunReport) {
    clf.reset();
    let start = Instant::now();
    let report = run_with_obs(method, kind, ctx, clf, batch, seed, obs);
    let wall_s = start.elapsed().as_secs_f64();
    (
        Measurement {
            wall_s,
            invocations: clf.invocations(),
        },
        report,
    )
}

fn json_measurement(m: &Measurement) -> String {
    format!(
        "{{\"wall_s\": {:.6}, \"invocations\": {}}}",
        m.wall_s, m.invocations
    )
}

fn main() {
    let seed = base_seed();
    let batch_n = env_u64("SHAHIN_PAR_BATCH", 5000) as usize;
    let latency = Duration::from_micros(env_u64("SHAHIN_PAR_LATENCY_US", 100));
    let threads: Vec<usize> = std::env::var("SHAHIN_PAR_THREADS")
        .unwrap_or_else(|_| "2,4,8".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let out_path = std::env::var("SHAHIN_PAR_OUT").unwrap_or_else(|_| "BENCH_parallel.json".into());
    let metrics_out = std::env::var("SHAHIN_PAR_METRICS_OUT").ok();
    let obs = if metrics_out.is_some() {
        MetricsRegistry::new()
    } else {
        MetricsRegistry::disabled()
    };

    let preset = DatasetPreset::CensusIncome;
    let (data, labels) = preset.spec(1.0).generate(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams::default(),
        &mut rng,
    );
    let clf = CountingClassifier::new(TracedClassifier::new(
        LatencyCost::new(forest, latency),
        &obs,
    ));
    let ctx = ExplainContext::fit(&split.train, 1000, &mut rng);
    let batch_n = batch_n.min(split.test.n_rows());
    let batch = split.test.select(&(0..batch_n).collect::<Vec<_>>());

    println!(
        "# Parallel drivers: {} tuples of {}, {}µs classifier latency",
        batch_n,
        preset.name(),
        latency.as_micros()
    );

    let sequential = Method::Batch(BatchConfig {
        n_threads: Some(1),
        ..Default::default()
    });
    let mut blocks: Vec<String> = Vec::new();
    for kind in [
        ExplainerKind::Lime(bench_lime()),
        ExplainerKind::Shap(bench_shap()),
        ExplainerKind::Anchor(bench_anchor()),
    ] {
        let (seq, _) = measure(&sequential, &kind, &ctx, &clf, &batch, seed, &obs);
        println!(
            "{}: sequential {} ({} invocations)",
            kind.name(),
            secs(seq.wall_s),
            seq.invocations
        );
        let mut thread_entries: Vec<String> = Vec::new();
        for &t in &threads {
            let method = Method::BatchParallel(BatchConfig {
                n_threads: Some(t),
                ..Default::default()
            });
            let (par, _) = measure(&method, &kind, &ctx, &clf, &batch, seed, &obs);
            println!(
                "{}: {} threads {} ({} invocations, speedup {}x)",
                kind.name(),
                t,
                secs(par.wall_s),
                par.invocations,
                f2(seq.wall_s / par.wall_s)
            );
            thread_entries.push(format!(
                "\"{}\": {{\"wall_s\": {:.6}, \"invocations\": {}, \"speedup\": {:.3}}}",
                t,
                par.wall_s,
                par.invocations,
                seq.wall_s / par.wall_s
            ));
        }
        blocks.push(format!(
            "    \"{}\": {{\n      \"sequential\": {},\n      \"threads\": {{{}}}\n    }}",
            kind.name(),
            json_measurement(&seq),
            thread_entries.join(", ")
        ));
    }

    let json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"batch\": {},\n  \"latency_us\": {},\n  \"seed\": {},\n  \"explainers\": {{\n{}\n  }}\n}}\n",
        preset.name(),
        batch_n,
        latency.as_micros(),
        seed,
        blocks.join(",\n")
    );
    write_artifact(&out_path, &json);
    println!("wrote {out_path}");

    if let Some(path) = metrics_out {
        write_artifact(&path, &obs.snapshot().to_json());
        println!("metrics written to {path}");
    }
}
