//! Observability overhead benchmark: the same Shahin-Batch LIME workload
//! run against a **disabled** registry (every handle a no-op behind one
//! branch) and against an **enabled** one recording all spans, counters
//! and classifier latency histograms. Emits `BENCH_obs.json` with the
//! median walls and the relative overhead, which must stay under the 3%
//! budget instrumentation is allowed to cost.
//!
//! The classifier is the raw Random Forest — no simulated latency — so
//! the measured run is bookkeeping-dense and the overhead bound is
//! conservative: against a model-server round trip the relative cost only
//! shrinks.
//!
//! Environment knobs (on top of the shared `SHAHIN_SEED`):
//!
//! * `SHAHIN_OBS_BATCH` — tuples per batch (default 400),
//! * `SHAHIN_OBS_REPS` — repetitions per arm (default 5, median reported),
//! * `SHAHIN_OBS_OUT` — output path (default BENCH_obs.json).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::{run_with_obs, ExplainerKind, Method, MetricsRegistry};
use shahin_bench::{base_seed, bench_lime, env_u64, secs};
use shahin_explain::ExplainContext;
use shahin_model::{CountingClassifier, ForestParams, RandomForest, TracedClassifier};
use shahin_tabular::{train_test_split, Dataset, DatasetPreset};

const BUDGET_PCT: f64 = 3.0;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn run_arm(
    registry: &MetricsRegistry,
    ctx: &ExplainContext,
    forest: &RandomForest,
    batch: &Dataset,
    seed: u64,
) -> f64 {
    let clf = CountingClassifier::new(TracedClassifier::new(forest.clone(), registry));
    let kind = ExplainerKind::Lime(bench_lime());
    let start = Instant::now();
    run_with_obs(
        &Method::Batch(Default::default()),
        &kind,
        ctx,
        &clf,
        batch,
        seed,
        registry,
    );
    start.elapsed().as_secs_f64()
}

fn main() {
    let seed = base_seed();
    let batch_n = env_u64("SHAHIN_OBS_BATCH", 400) as usize;
    let reps = env_u64("SHAHIN_OBS_REPS", 5) as usize;
    let out_path = std::env::var("SHAHIN_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".into());

    let preset = DatasetPreset::CensusIncome;
    let (data, labels) = preset.spec(0.3).generate(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams::default(),
        &mut rng,
    );
    let ctx = ExplainContext::fit(&split.train, 1000, &mut rng);
    let batch_n = batch_n.min(split.test.n_rows());
    let batch = split.test.select(&(0..batch_n).collect::<Vec<_>>());

    println!(
        "# Observability overhead: {} tuples of {}, LIME, {} reps per arm",
        batch_n,
        preset.name(),
        reps
    );

    // Warm-up (page in code and data, stabilize allocator) then interleave
    // the arms so clock drift hits both equally.
    run_arm(&MetricsRegistry::disabled(), &ctx, &forest, &batch, seed);
    let mut noop_samples = Vec::with_capacity(reps);
    let mut instr_samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        noop_samples.push(run_arm(
            &MetricsRegistry::disabled(),
            &ctx,
            &forest,
            &batch,
            seed,
        ));
        // A fresh registry per rep: steady-state recording cost, not
        // accumulation across reps.
        instr_samples.push(run_arm(
            &MetricsRegistry::new(),
            &ctx,
            &forest,
            &batch,
            seed,
        ));
        println!(
            "rep {}: noop {}, instrumented {}",
            rep + 1,
            secs(noop_samples[rep]),
            secs(instr_samples[rep])
        );
    }

    let noop_s = median(&mut noop_samples);
    let instrumented_s = median(&mut instr_samples);
    let overhead_pct = 100.0 * (instrumented_s - noop_s) / noop_s;
    let within_budget = overhead_pct < BUDGET_PCT;
    println!(
        "median: noop {}, instrumented {} → overhead {:.2}% (budget {BUDGET_PCT}%)",
        secs(noop_s),
        secs(instrumented_s),
        overhead_pct
    );

    let json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"explainer\": \"LIME\",\n  \"batch\": {},\n  \"reps\": {},\n  \"seed\": {},\n  \"noop_s\": {:.6},\n  \"instrumented_s\": {:.6},\n  \"overhead_pct\": {:.3},\n  \"budget_pct\": {:.1},\n  \"within_budget\": {}\n}}\n",
        preset.name(),
        batch_n,
        reps,
        seed,
        noop_s,
        instrumented_s,
        overhead_pct,
        BUDGET_PCT,
        within_budget
    );
    std::fs::write(&out_path, &json).expect("write BENCH_obs.json");
    println!("wrote {out_path}");
}
