//! Observability overhead benchmark: the same Shahin-Batch LIME workload
//! run against a **disabled** registry (every handle a no-op behind one
//! branch), against an **enabled** one recording all spans, counters and
//! classifier latency histograms, and against an enabled one with the
//! event-timeline and provenance sinks attached (every span additionally
//! pushed as a trace event, every tuple's lineage recorded). Emits
//! `BENCH_obs.json` with the best-of-N walls and the relative overheads,
//! all of which must stay under the 3% budget instrumentation is allowed
//! to cost. Best-of-N (not median): each arm's minimum is its noise floor,
//! and comparing floors cancels scheduler interference that a median still
//! lets through on runs this short.
//!
//! The classifier is the raw Random Forest — no simulated latency — so
//! the measured run is bookkeeping-dense and the overhead bound is
//! conservative: against a model-server round trip the relative cost only
//! shrinks.
//!
//! Environment knobs (on top of the shared `SHAHIN_SEED`):
//!
//! * `SHAHIN_OBS_BATCH` — tuples per batch (default 400),
//! * `SHAHIN_OBS_REPS` — repetitions per arm (default 5, best-of-N reported),
//! * `SHAHIN_OBS_OUT` — output path (default BENCH_obs.json).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use std::sync::Arc;

use shahin::{run_with_obs, EventSink, ExplainerKind, Method, MetricsRegistry, ProvenanceSink};
use shahin_bench::{base_seed, bench_lime, env_u64, secs, write_artifact};
use shahin_explain::ExplainContext;
use shahin_model::{CountingClassifier, ForestParams, RandomForest, TracedClassifier};
use shahin_tabular::{train_test_split, Dataset, DatasetPreset};

const BUDGET_PCT: f64 = 3.0;

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn run_arm(
    registry: &MetricsRegistry,
    ctx: &ExplainContext,
    forest: &RandomForest,
    batch: &Dataset,
    seed: u64,
) -> f64 {
    let clf = CountingClassifier::new(TracedClassifier::new(forest.clone(), registry));
    let kind = ExplainerKind::Lime(bench_lime());
    let start = Instant::now();
    run_with_obs(
        &Method::Batch(Default::default()),
        &kind,
        ctx,
        &clf,
        batch,
        seed,
        registry,
    );
    start.elapsed().as_secs_f64()
}

fn main() {
    let seed = base_seed();
    let batch_n = env_u64("SHAHIN_OBS_BATCH", 400) as usize;
    let reps = env_u64("SHAHIN_OBS_REPS", 5) as usize;
    let out_path = std::env::var("SHAHIN_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".into());

    let preset = DatasetPreset::CensusIncome;
    let (data, labels) = preset.spec(0.3).generate(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams::default(),
        &mut rng,
    );
    let ctx = ExplainContext::fit(&split.train, 1000, &mut rng);
    let batch_n = batch_n.min(split.test.n_rows());
    let batch = split.test.select(&(0..batch_n).collect::<Vec<_>>());

    println!(
        "# Observability overhead: {} tuples of {}, LIME, {} reps per arm",
        batch_n,
        preset.name(),
        reps
    );

    // Warm-up (page in code and data, stabilize allocator) then interleave
    // the arms so clock drift hits all of them equally.
    run_arm(&MetricsRegistry::disabled(), &ctx, &forest, &batch, seed);
    let mut noop_samples = Vec::with_capacity(reps);
    let mut instr_samples = Vec::with_capacity(reps);
    let mut traced_samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        // Rotate the arm order each rep: when machine state drifts within
        // a rep (frequency recovery, cache pressure from a neighbour),
        // a fixed order would systematically penalize the later arms and
        // best-of-N could not cancel it. With rotation every arm samples
        // every position, so the per-arm minimum compares like with like.
        for slot in 0..3 {
            match (rep + slot) % 3 {
                0 => noop_samples.push(run_arm(
                    &MetricsRegistry::disabled(),
                    &ctx,
                    &forest,
                    &batch,
                    seed,
                )),
                // A fresh registry per rep: steady-state recording cost,
                // not accumulation across reps.
                1 => instr_samples.push(run_arm(
                    &MetricsRegistry::new(),
                    &ctx,
                    &forest,
                    &batch,
                    seed,
                )),
                // Full collection — every span also lands in the event
                // ring buffer, every tuple emits a provenance record.
                _ => {
                    let traced = MetricsRegistry::new();
                    traced.attach_event_sink(Arc::new(EventSink::new()));
                    traced.attach_provenance_sink(Arc::new(ProvenanceSink::new()));
                    traced_samples.push(run_arm(&traced, &ctx, &forest, &batch, seed));
                }
            }
        }
        println!(
            "rep {}: noop {}, instrumented {}, traced {}",
            rep + 1,
            secs(noop_samples[rep]),
            secs(instr_samples[rep]),
            secs(traced_samples[rep])
        );
    }

    let noop_s = best(&noop_samples);
    let instrumented_s = best(&instr_samples);
    let traced_s = best(&traced_samples);
    let overhead_pct = 100.0 * (instrumented_s - noop_s) / noop_s;
    let traced_overhead_pct = 100.0 * (traced_s - noop_s) / noop_s;
    let within_budget = overhead_pct < BUDGET_PCT && traced_overhead_pct < BUDGET_PCT;
    println!(
        "best-of-{reps}: noop {}, instrumented {} → overhead {:.2}%, traced {} → {:.2}% (budget {BUDGET_PCT}%)",
        secs(noop_s),
        secs(instrumented_s),
        overhead_pct,
        secs(traced_s),
        traced_overhead_pct
    );

    let json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"explainer\": \"LIME\",\n  \"batch\": {},\n  \"reps\": {},\n  \"seed\": {},\n  \"noop_s\": {:.6},\n  \"instrumented_s\": {:.6},\n  \"traced_s\": {:.6},\n  \"overhead_pct\": {:.3},\n  \"traced_overhead_pct\": {:.3},\n  \"budget_pct\": {:.1},\n  \"within_budget\": {}\n}}\n",
        preset.name(),
        batch_n,
        reps,
        seed,
        noop_s,
        instrumented_s,
        traced_s,
        overhead_pct,
        traced_overhead_pct,
        BUDGET_PCT,
        within_budget
    );
    write_artifact(&out_path, &json);
    println!("wrote {out_path}");
}
