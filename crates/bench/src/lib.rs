//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper.
//!
//! Each binary (`table1`, `fig2` … `fig7`, `quality`) sets up the same kind
//! of workload the paper measures: a synthetic dataset with a preset's
//! shape, a Random Forest trained on a 1/3 split, and explainers run over
//! batches drawn from the remaining 2/3. The classifier is wrapped in
//! [`SimulatedCost`] (emulating the per-call latency of the paper's Python
//! models — see DESIGN.md) and [`CountingClassifier`] (the primary,
//! machine-independent metric).
//!
//! Environment knobs:
//!
//! * `SHAHIN_SCALE` — multiplies batch sizes (default 1.0; use 10 to
//!   approach the paper's 50K sweeps),
//! * `SHAHIN_COST_US` — busy-wait microseconds per classifier invocation
//!   (default 10),
//! * `SHAHIN_SEED` — base RNG seed (default 42).

pub mod json;

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin_explain::{
    AnchorExplainer, AnchorParams, ExplainContext, KernelShapExplainer, LimeExplainer, LimeParams,
    ShapParams,
};
use shahin_model::{CountingClassifier, ForestParams, RandomForest, SimulatedCost};
use shahin_tabular::{train_test_split, Dataset, DatasetPreset};

/// The instrumented classifier type every experiment uses.
pub type BenchClassifier = CountingClassifier<SimulatedCost<RandomForest>>;

/// A fully prepared workload.
pub struct Workload {
    /// Dataset name (paper spelling).
    pub name: &'static str,
    /// The preset it came from.
    pub preset: DatasetPreset,
    /// Explanation context fitted on the training split.
    pub ctx: ExplainContext,
    /// Instrumented Random Forest.
    pub clf: BenchClassifier,
    /// Held-out tuples available for batching.
    pub test: Dataset,
}

impl Workload {
    /// The first `n` held-out tuples as a batch (deterministic).
    pub fn batch(&self, n: usize) -> Dataset {
        let n = n.min(self.test.n_rows());
        let rows: Vec<usize> = (0..n).collect();
        self.test.select(&rows)
    }

    /// Largest batch this workload can serve.
    pub fn max_batch(&self) -> usize {
        self.test.n_rows()
    }
}

/// Reads a float environment knob.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an integer environment knob.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Base seed for all experiments.
pub fn base_seed() -> u64 {
    env_u64("SHAHIN_SEED", 42)
}

/// Per-invocation simulated classifier cost.
pub fn classifier_cost() -> Duration {
    Duration::from_micros(env_u64("SHAHIN_COST_US", 10))
}

/// Batch-size multiplier.
pub fn scale() -> f64 {
    env_f64("SHAHIN_SCALE", 1.0)
}

/// Scales a batch size by `SHAHIN_SCALE`.
pub fn scaled(n: usize) -> usize {
    ((n as f64) * scale()).round().max(2.0) as usize
}

/// Prepares a workload: generate the synthetic dataset at `data_scale`,
/// split 1/3 train : 2/3 explain (paper §4.1), train the forest, fit the
/// context.
pub fn workload(preset: DatasetPreset, data_scale: f64, seed: u64) -> Workload {
    let spec = preset.spec(data_scale);
    let (data, labels) = spec.generate(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams::default(),
        &mut rng,
    );
    let clf = CountingClassifier::new(SimulatedCost::new(forest, classifier_cost()));
    let ctx = ExplainContext::fit(&split.train, 1000, &mut rng);
    Workload {
        name: preset.name(),
        preset,
        ctx,
        clf,
        test: split.test,
    }
}

/// LIME with a reduced sample count relative to the Python default (5000)
/// so the full sweep fits one machine; the perturb/fit ratio is preserved.
pub fn bench_lime() -> LimeExplainer {
    LimeExplainer::new(LimeParams {
        n_samples: 300,
        ..Default::default()
    })
}

/// Anchor with the paper's `ε = 0.1, δ = 0.05` defaults.
pub fn bench_anchor() -> AnchorExplainer {
    AnchorExplainer::new(AnchorParams::default())
}

/// KernelSHAP with a reduced coalition budget.
pub fn bench_shap() -> KernelShapExplainer {
    KernelShapExplainer::new(ShapParams {
        n_samples: 128,
        ..Default::default()
    })
}

/// FNV-1a over the bit-exact content of every explanation: any drift in
/// weights, rules, precision or coverage — from a data layout, a restart,
/// or a snapshot hydration — changes the fingerprint.
pub fn explanation_fingerprint(explanations: &[shahin::Explanation]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for e in explanations {
        match e {
            shahin::Explanation::Weights(w) => {
                eat(b"W");
                for &v in &w.weights {
                    eat(&v.to_bits().to_le_bytes());
                }
                eat(&w.intercept.to_bits().to_le_bytes());
                eat(&w.local_prediction.to_bits().to_le_bytes());
            }
            shahin::Explanation::Rule(r) => {
                eat(b"R");
                for item in r.rule.items() {
                    eat(&item.attr.to_le_bytes());
                    eat(&item.code.to_le_bytes());
                }
                eat(&r.precision.to_bits().to_le_bytes());
                eat(&r.coverage.to_bits().to_le_bytes());
                eat(&[r.anchored_class]);
            }
        }
    }
    h
}

/// Writes a benchmark artifact atomically (temp file + fsync + rename),
/// creating any missing parent directories first (so
/// `SHAHIN_*_OUT=artifacts/ci/BENCH_x.json` works without a manual
/// mkdir) — a CI reader polling the path never sees a half-written
/// JSON. Panics with the path and cause on failure — an unwritable
/// artifact is fatal to a bench run.
pub fn write_artifact(path: &str, contents: &str) {
    shahin_obs::write_atomic(std::path::Path::new(path), contents.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write artifact '{path}': {e}"));
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats seconds with adaptive precision.
pub fn secs(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:.2}s")
    } else if x >= 1e-3 {
        format!("{:.2}ms", x * 1e3)
    } else {
        format!("{:.0}µs", x * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_and_batches() {
        let w = workload(DatasetPreset::Recidivism, 0.02, 7);
        assert!(w.max_batch() > 50);
        let b = w.batch(10);
        assert_eq!(b.n_rows(), 10);
        assert_eq!(b.n_attrs(), 19);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(0.0025), "2.50ms");
        assert_eq!(secs(2.5e-5), "25µs");
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }

    #[test]
    fn write_artifact_creates_missing_parent_directories() {
        let dir = std::env::temp_dir().join(format!("shahin_artifact_{}", std::process::id()));
        let path = dir.join("nested/deep/BENCH_x.json");
        let path_str = path.to_str().unwrap();
        write_artifact(path_str, "{}\n");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_f64("SHAHIN_NO_SUCH_VAR", 1.5), 1.5);
        assert_eq!(env_u64("SHAHIN_NO_SUCH_VAR", 9), 9);
    }
}
