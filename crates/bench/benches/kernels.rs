//! Criterion microbenchmarks for Shahin's hot kernels: mining, index
//! lookup, perturbation generation, store retrieval, and the surrogate
//! solvers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use shahin::{MatchEngine, PerturbationStore};
use shahin_explain::{perturb_codes, ExplainContext};
use shahin_fim::{apriori, AprioriParams, Itemset, ItemsetIndex, MatchScratch};
use shahin_linalg::{constrained_wls, ridge, Matrix};
use shahin_model::{Classifier, ForestLayout, ForestParams, MajorityClass, RandomForest};
use shahin_tabular::{DatasetPreset, DiscreteTable};

fn synth_table(n_rows: usize, n_attrs: usize, seed: u64) -> DiscreteTable {
    let mut rng = StdRng::seed_from_u64(seed);
    DiscreteTable::new(
        (0..n_attrs)
            .map(|_| {
                (0..n_rows)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            0
                        } else {
                            rng.gen_range(0..8u32)
                        }
                    })
                    .collect()
            })
            .collect(),
    )
}

fn bench_apriori(c: &mut Criterion) {
    let table = synth_table(1000, 30, 0);
    let params = AprioriParams {
        min_support: 0.2,
        max_len: 3,
        max_itemsets: 200,
    };
    c.bench_function("fim/apriori_1000x30", |b| {
        b.iter(|| apriori(&table, &params))
    });
}

fn bench_index(c: &mut Criterion) {
    let table = synth_table(1000, 30, 1);
    let mined = apriori(
        &table,
        &AprioriParams {
            min_support: 0.2,
            max_len: 3,
            max_itemsets: 200,
        },
    );
    let sets: Vec<Itemset> = mined.frequent.into_iter().map(|(s, _)| s).collect();
    let index = ItemsetIndex::new(&sets);
    let row = table.row(0);
    let mut scratch = Vec::new();
    c.bench_function("fim/index_contained_in", |b| {
        b.iter(|| index.contained_in_with(&row, &mut scratch))
    });
}

fn bench_perturbation(c: &mut Criterion) {
    let (data, _) = DatasetPreset::CensusIncome.spec(0.05).generate(2);
    let mut rng = StdRng::seed_from_u64(3);
    let ctx = ExplainContext::fit(&data, 500, &mut rng);
    let empty = Itemset::new(vec![]);
    c.bench_function("perturb/codes_42attrs", |b| {
        b.iter(|| perturb_codes(&ctx, &empty, &mut rng))
    });
    let codes = perturb_codes(&ctx, &empty, &mut rng);
    c.bench_function("perturb/undiscretize_instance", |b| {
        b.iter(|| ctx.discretizer().undiscretize_instance(&codes, &mut rng))
    });
}

fn bench_store(c: &mut Criterion) {
    let (data, _) = DatasetPreset::CensusIncome.spec(0.05).generate(4);
    let mut rng = StdRng::seed_from_u64(5);
    let ctx = ExplainContext::fit(&data, 500, &mut rng);
    let table = ctx.discretizer().encode_dataset(&data);
    let mined = apriori(
        &table,
        &AprioriParams {
            min_support: 0.15,
            max_len: 3,
            max_itemsets: 200,
        },
    );
    let sets: Vec<Itemset> = mined.frequent.into_iter().map(|(s, _)| s).collect();
    let clf = MajorityClass::fit(&[1, 0]);
    let mut store = PerturbationStore::new(sets, usize::MAX);
    store.materialize(&ctx, &clf, 20, &mut rng);
    let row = table.row(0);
    let mut scratch = MatchScratch::new();
    c.bench_function("store/matching", |b| {
        b.iter(|| store.matching(&row, &mut scratch))
    });
    store.set_match_engine(MatchEngine::Postings);
    c.bench_function("store/matching_postings", |b| {
        b.iter(|| store.matching(&row, &mut scratch))
    });
}

fn bench_solvers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let (n, m) = (300, 42);
    let x = Matrix::from_rows(
        n,
        m,
        (0..n * m).map(|_| f64::from(rng.gen_bool(0.5))).collect(),
    );
    let y: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
    let w: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1.0)).collect();
    c.bench_function("solve/ridge_300x42", |b| b.iter(|| ridge(&x, &y, &w, 1.0)));
    c.bench_function("solve/constrained_wls_300x42", |b| {
        b.iter(|| constrained_wls(&x, &y, &w, 0.4, 0.9))
    });
}

fn bench_forest(c: &mut Criterion) {
    let (data, labels) = DatasetPreset::CensusIncome.spec(0.05).generate(7);
    let mut rng = StdRng::seed_from_u64(8);
    let forest = RandomForest::fit(&data, &labels, &ForestParams::default(), &mut rng);
    let inst = data.instance(0);
    c.bench_function("model/rf_predict", |b| {
        b.iter(|| forest.predict_proba(&inst))
    });
    // The same forest under both layouts, single row and a small batch:
    // the flat CSR arena vs the nested per-tree `Vec<Node>` arenas.
    let nested = forest.clone().with_layout(ForestLayout::Nested);
    c.bench_function("model/rf_predict_nested", |b| {
        b.iter(|| nested.predict_proba(&inst))
    });
    let rows: Vec<Vec<_>> = (0..100.min(data.n_rows()))
        .map(|r| data.instance(r))
        .collect();
    c.bench_function("model/rf_batch100_flat_layout", |b| {
        b.iter(|| forest.predict_batch_with(&rows, 1))
    });
    c.bench_function("model/rf_batch100_nested_layout", |b| {
        b.iter(|| nested.predict_batch_with(&rows, 1))
    });
    c.bench_function("model/rf_train_25trees", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(9),
            |mut r| RandomForest::fit(&data, &labels, &ForestParams::default(), &mut r),
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_apriori, bench_index, bench_perturbation, bench_store,
              bench_solvers, bench_forest
}
criterion_main!(benches);
