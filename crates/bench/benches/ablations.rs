//! Ablation benchmarks for the design choices DESIGN.md calls out. Each
//! ablation compares a full Shahin run against the same run with one
//! optimization disabled, on a small Census-Income batch with a cost-free
//! classifier (so the timings measure algorithmic work; the invocation
//! savings themselves are asserted in the test suite and reported by the
//! figure binaries).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::{run, ExplainerKind, Greedy, Method, StreamingConfig};
use shahin_explain::{
    AnchorExplainer, ExplainContext, KernelShapExplainer, LimeExplainer, LimeParams, ShapParams,
};
use shahin_model::{CountingClassifier, ForestParams, RandomForest};
use shahin_tabular::{train_test_split, Dataset, DatasetPreset};

struct Setup {
    ctx: ExplainContext,
    clf: CountingClassifier<RandomForest>,
    batch: Dataset,
}

fn setup() -> Setup {
    let (data, labels) = DatasetPreset::CensusIncome.spec(0.05).generate(1);
    let mut rng = StdRng::seed_from_u64(2);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let clf = CountingClassifier::new(RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams::default(),
        &mut rng,
    ));
    let ctx = ExplainContext::fit(&split.train, 500, &mut rng);
    let rows: Vec<usize> = (0..120.min(split.test.n_rows())).collect();
    Setup {
        ctx,
        clf,
        batch: split.test.select(&rows),
    }
}

fn lime_kind() -> ExplainerKind {
    ExplainerKind::Lime(LimeExplainer::new(LimeParams {
        n_samples: 150,
        ..Default::default()
    }))
}

/// Ablation 1: FIM-planned materialization (Shahin) vs unplanned LRU reuse
/// (Greedy) vs none (Sequential).
fn ablation_fim(c: &mut Criterion) {
    let s = setup();
    let kind = lime_kind();
    let mut g = c.benchmark_group("ablation/fim_materialization");
    g.bench_function("shahin_batch", |b| {
        b.iter(|| {
            run(
                &Method::Batch(Default::default()),
                &kind,
                &s.ctx,
                &s.clf,
                &s.batch,
                3,
            )
        })
    });
    g.bench_function("greedy_lru", |b| {
        b.iter(|| {
            run(
                &Method::Greedy(Greedy::default_budget(&s.batch)),
                &kind,
                &s.ctx,
                &s.clf,
                &s.batch,
                3,
            )
        })
    });
    g.bench_function("sequential", |b| {
        b.iter(|| run(&Method::Sequential, &kind, &s.ctx, &s.clf, &s.batch, 3))
    });
    g.finish();
}

/// Ablation 2: Anchor invariant caches — full Shahin (precision cache +
/// bootstrap + coverage memo) vs the exact-rule-count-only Greedy sampler
/// vs none.
fn ablation_anchor_caches(c: &mut Criterion) {
    let s = setup();
    let kind = ExplainerKind::Anchor(AnchorExplainer::default());
    let small: Vec<usize> = (0..40).collect();
    let batch = s.batch.select(&small);
    let mut g = c.benchmark_group("ablation/anchor_caches");
    g.bench_function("shahin_full", |b| {
        b.iter(|| {
            run(
                &Method::Batch(Default::default()),
                &kind,
                &s.ctx,
                &s.clf,
                &batch,
                5,
            )
        })
    });
    g.bench_function("counts_only", |b| {
        b.iter(|| {
            run(
                &Method::Greedy(usize::MAX),
                &kind,
                &s.ctx,
                &s.clf,
                &batch,
                5,
            )
        })
    });
    g.bench_function("no_cache", |b| {
        b.iter(|| run(&Method::Sequential, &kind, &s.ctx, &s.clf, &batch, 5))
    });
    g.finish();
}

/// Ablation 3: SHAP kernel-proportional coalition-size sampling (Eq. 1)
/// vs uniform sizes with kernel regression weights.
fn ablation_shap_kernel(c: &mut Criterion) {
    let s = setup();
    let small: Vec<usize> = (0..60).collect();
    let batch = s.batch.select(&small);
    let kernel = ExplainerKind::Shap(KernelShapExplainer::new(ShapParams {
        n_samples: 96,
        uniform_sizes: false,
    }));
    let uniform = ExplainerKind::Shap(KernelShapExplainer::new(ShapParams {
        n_samples: 96,
        uniform_sizes: true,
    }));
    let mut g = c.benchmark_group("ablation/shap_size_sampling");
    g.bench_function("kernel_proportional", |b| {
        b.iter(|| {
            run(
                &Method::Batch(Default::default()),
                &kernel,
                &s.ctx,
                &s.clf,
                &batch,
                7,
            )
        })
    });
    g.bench_function("uniform_sizes", |b| {
        b.iter(|| {
            run(
                &Method::Batch(Default::default()),
                &uniform,
                &s.ctx,
                &s.clf,
                &batch,
                7,
            )
        })
    });
    g.finish();
}

/// Ablation 4: streaming negative-border maintenance on/off.
fn ablation_negative_border(c: &mut Criterion) {
    let s = setup();
    let kind = lime_kind();
    let on = StreamingConfig {
        refresh_every: 30,
        track_negative_border: true,
        ..Default::default()
    };
    let off = StreamingConfig {
        refresh_every: 30,
        track_negative_border: false,
        ..Default::default()
    };
    let mut g = c.benchmark_group("ablation/negative_border");
    g.bench_function("tracked", |b| {
        b.iter(|| {
            run(
                &Method::Streaming(on.clone()),
                &kind,
                &s.ctx,
                &s.clf,
                &s.batch,
                9,
            )
        })
    });
    g.bench_function("untracked", |b| {
        b.iter(|| {
            run(
                &Method::Streaming(off.clone()),
                &kind,
                &s.ctx,
                &s.clf,
                &s.batch,
                9,
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    targets = ablation_fim, ablation_anchor_caches, ablation_shap_kernel,
              ablation_negative_border
}
criterion_main!(benches);
