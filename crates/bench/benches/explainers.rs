//! Criterion benchmarks of single-prediction explanation cost, with and
//! without reuse. The classifier here is cost-free, so these measure the
//! explainers' own overhead (sampling, kernels, solvers) — the part of
//! Shahin's runtime that is *not* classifier invocations.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin_explain::{
    labeled_perturbation, AnchorExplainer, ExplainContext, KernelShapExplainer, LabeledSample,
    LimeExplainer, LimeParams, ShapParams,
};
use shahin_fim::Itemset;
use shahin_model::{ForestParams, RandomForest};
use shahin_tabular::{train_test_split, DatasetPreset, Instance};

struct Setup {
    ctx: ExplainContext,
    clf: RandomForest,
    instance: Instance,
    reusable: Vec<LabeledSample>,
}

fn setup() -> Setup {
    let (data, labels) = DatasetPreset::CensusIncome.spec(0.05).generate(1);
    let mut rng = StdRng::seed_from_u64(2);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let clf = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams::default(),
        &mut rng,
    );
    let ctx = ExplainContext::fit(&split.train, 500, &mut rng);
    let instance = split.test.instance(0);
    let empty = Itemset::new(vec![]);
    let reusable: Vec<LabeledSample> = (0..300)
        .map(|_| labeled_perturbation(&ctx, &clf, &empty, &mut rng))
        .collect();
    Setup {
        ctx,
        clf,
        instance,
        reusable,
    }
}

fn bench_lime(c: &mut Criterion) {
    let s = setup();
    let lime = LimeExplainer::new(LimeParams {
        n_samples: 300,
        ..Default::default()
    });
    c.bench_function("explain/lime_fresh_300", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| lime.explain(&s.ctx, &s.clf, &s.instance, &mut rng))
    });
    c.bench_function("explain/lime_full_reuse_300", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            lime.explain_with_reused(&s.ctx, &s.clf, &s.instance, s.reusable.iter(), &mut rng)
        })
    });
}

fn bench_shap(c: &mut Criterion) {
    let s = setup();
    let shap = KernelShapExplainer::new(ShapParams {
        n_samples: 128,
        ..Default::default()
    });
    c.bench_function("explain/shap_fresh_128", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| shap.explain(&s.ctx, &s.clf, &s.instance, 0.5, &mut rng))
    });
}

fn bench_anchor(c: &mut Criterion) {
    let s = setup();
    let anchor = AnchorExplainer::default();
    c.bench_function("explain/anchor_fresh", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| anchor.explain(&s.ctx, &s.clf, &s.instance, &mut rng))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_lime, bench_shap, bench_anchor
}
criterion_main!(benches);
